#![forbid(unsafe_code)]

//! Offline stand-in for the `criterion` crate (0.8 API subset).
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `criterion` dev-dependency is replaced by this vendored shim (see
//! the workspace `Cargo.toml`). It implements the measurement surface the
//! `heteroprio-bench` targets use — `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput and
//! per-group sample sizes, and `Bencher::iter` — with a straightforward
//! wall-clock harness: each benchmark is calibrated to a minimum sample
//! duration, timed for `sample_size` samples, and reported as
//! `[min median max]` per iteration. No statistical analysis, plots, or
//! baseline comparison; numbers are honest but coarser than real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum wall-clock time per sample once calibrated.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Measurement harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (consuming, matching
    /// the real `Criterion::sample_size` used in `config = …` position).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, throughput: None }
    }
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifier for a benchmark, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    smoke: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            // `--test` smoke mode (mirroring real criterion): run the body
            // once to prove it works, skip calibration and timing.
            std::hint::black_box(f());
            return;
        }
        // Calibrate: double the batch size until one batch takes at least
        // TARGET_SAMPLE (so per-sample timing noise is bounded).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut b = Bencher { sample_size, samples_ns: Vec::new(), smoke };
    f(&mut b);
    if smoke {
        println!("{label:<40} ok (--test smoke mode, no measurement)");
        return;
    }
    if b.samples_ns.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let min = b.samples_ns[0];
    let max = *b.samples_ns.last().unwrap();
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let mut line =
        format!("{label:<40} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!("  thrpt: {:.3e} {unit}", count / (median * 1e-9)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
