#![forbid(unsafe_code)]

//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this vendored shim (see the
//! workspace `Cargo.toml`). It implements exactly the surface the workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `random_range` (over integer and float ranges) and `random_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically solid
//! for simulation workloads and fully deterministic per seed. Streams are
//! *not* bit-compatible with the real `rand::rngs::StdRng` (ChaCha12); the
//! workspace only relies on per-seed reproducibility, never on specific
//! values.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range, like the
    /// real `rand`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform draw from [0, 1) with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (not the real StdRng's ChaCha12; see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint/restore of simulations
        /// that must resume their random stream mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        /// The restored generator continues the exact same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&y));
            let z = rng.random_range(5u8..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.random_range(0u64..1 << 40);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..u64::MAX), b.random_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits={hits}");
    }
}
