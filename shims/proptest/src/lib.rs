#![forbid(unsafe_code)]

//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `proptest` dev-dependency is replaced by this vendored shim (see
//! the workspace `Cargo.toml`). It supports the surface the test suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`Strategy`] implemented for numeric ranges and tuples, plus
//!   [`Strategy::prop_map`] and [`collection::vec`](prop::collection::vec),
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike the real proptest there is no shrinking: a failing case panics with
//! the case index and seed so it can be replayed, but is not minimised.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-(test, case) random source handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test gets an independent, reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5DEECE66D)))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng.rng(), self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng.rng(), self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Element-count specification for [`prop::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// `prop::…` namespace mirroring the paths the real prelude exposes.
pub mod prop {
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// A strategy for `Vec`s of `elem` with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = (self.size.lo..=self.size.hi).generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The test-defining macro. Each `#[test] fn name(arg in strategy, …) { … }`
/// item becomes a plain `#[test]` that runs the body for `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg =$crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}
