//! Incremental aggregation of an event stream into scheduler metrics.

use crate::SchedEvent;

/// Accumulated time accounting for one worker.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Time spent executing tasks that ran to completion.
    pub busy: f64,
    /// Time spent with no task assigned (closed out at the makespan by
    /// [`TraceSummary::finish`]).
    pub idle: f64,
    /// Time spent on runs that a spoliation later threw away.
    pub aborted: f64,
    /// Time spent down after a failure (closed at recovery, or at the
    /// horizon for permanent failures).
    pub downtime: f64,
    /// Tasks this worker completed.
    pub completed: usize,
    /// Runs aborted on this worker (it was the spoliation victim).
    pub spoliated: usize,
    /// Task attempts that failed on this worker.
    pub failed: usize,
    run_open: Option<f64>,
    idle_open: Option<f64>,
    down_open: Option<f64>,
}

/// Metrics derived from a [`SchedEvent`] stream: per-worker busy/idle/
/// aborted time, spoliation wasted work, time to first idle, and (when
/// enabled) a ready-queue depth timeline.
///
/// Feed events in causal order via [`record`](TraceSummary::record) — the
/// instrumented schedulers already emit them that way; reconstructed lists
/// should go through [`sort_causal`](crate::sort_causal) first — then call
/// [`finish`](TraceSummary::finish) once.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    pub workers: Vec<WorkerStats>,
    /// Number of spoliations (aborted runs).
    pub spoliation_count: usize,
    /// Total in-progress time destroyed by spoliations.
    pub wasted_work: f64,
    /// Earliest instant any worker asked for work and got none.
    pub first_idle: Option<f64>,
    /// Total tasks completed.
    pub tasks_completed: usize,
    /// Pops from the front (GPU side) of the sorted ready queue.
    pub queue_pops_front: usize,
    /// Pops from the back (CPU side) of the sorted ready queue.
    pub queue_pops_back: usize,
    /// Task attempts that failed (each may be retried or abandoned).
    pub task_failures: usize,
    /// Retries scheduled after task failures.
    pub retries: usize,
    /// Total in-progress time destroyed by task and worker failures
    /// (spoliation waste is tracked separately in `wasted_work`).
    pub lost_work: f64,
    /// Worker failures observed (permanent and transient).
    pub worker_failures: usize,
    /// Worker recoveries observed.
    pub worker_recoveries: usize,
    /// Ready-queue depth after each change, as `(time, depth)` steps.
    /// Empty unless built by [`with_timeline`](TraceSummary::with_timeline)
    /// or [`from_events`](TraceSummary::from_events).
    pub ready_depth: Vec<(f64, usize)>,
    events_recorded: usize,
    makespan: f64,
    timeline: bool,
    ready: Vec<bool>,
    depth: usize,
    finished: bool,
}

impl TraceSummary {
    /// Scalar accounting only (the hot path used inside the schedulers).
    pub fn new(workers: usize) -> Self {
        TraceSummary {
            workers: vec![WorkerStats::default(); workers],
            spoliation_count: 0,
            wasted_work: 0.0,
            first_idle: None,
            tasks_completed: 0,
            queue_pops_front: 0,
            queue_pops_back: 0,
            task_failures: 0,
            retries: 0,
            lost_work: 0.0,
            worker_failures: 0,
            worker_recoveries: 0,
            ready_depth: Vec::new(),
            events_recorded: 0,
            makespan: 0.0,
            timeline: false,
            ready: Vec::new(),
            depth: 0,
            finished: false,
        }
    }

    /// Like [`new`](TraceSummary::new), additionally recording the
    /// ready-queue depth timeline.
    pub fn with_timeline(workers: usize) -> Self {
        let mut s = TraceSummary::new(workers);
        s.timeline = true;
        s
    }

    /// Aggregate a complete event list (causal order expected; see
    /// [`sort_causal`](crate::sort_causal)). Timeline recording is on.
    pub fn from_events(workers: usize, events: &[SchedEvent]) -> Self {
        let mut s = TraceSummary::with_timeline(workers);
        for e in events {
            s.record(e);
        }
        s.finish();
        s
    }

    fn worker(&mut self, w: u32) -> &mut WorkerStats {
        let w = w as usize;
        if w >= self.workers.len() {
            self.workers.resize(w + 1, WorkerStats::default());
        }
        &mut self.workers[w]
    }

    fn ready_flag(&mut self, task: u32) -> &mut bool {
        let t = task as usize;
        if t >= self.ready.len() {
            self.ready.resize(t + 1, false);
        }
        &mut self.ready[t]
    }

    fn push_depth(&mut self, time: f64) {
        let depth = self.depth;
        self.ready_depth.push((time, depth));
    }

    /// Fold one event into the aggregate.
    pub fn record(&mut self, event: &SchedEvent) {
        debug_assert!(!self.finished, "record() after finish()");
        self.events_recorded += 1;
        let time = event.time();
        if time > self.makespan {
            self.makespan = time;
        }
        match *event {
            SchedEvent::TaskReady { time, task } => {
                if self.timeline {
                    *self.ready_flag(task) = true;
                    self.depth += 1;
                    self.push_depth(time);
                }
            }
            SchedEvent::TaskStart { time, task, worker, .. } => {
                if self.timeline && *self.ready_flag(task) {
                    *self.ready_flag(task) = false;
                    self.depth -= 1;
                    self.push_depth(time);
                }
                let w = self.worker(worker);
                // Defensive: a reconstructed stream may omit the idle-end.
                if let Some(since) = w.idle_open.take() {
                    w.idle += time - since;
                }
                w.run_open = Some(time);
            }
            SchedEvent::TaskComplete { time, worker, .. } => {
                let w = self.worker(worker);
                if let Some(start) = w.run_open.take() {
                    w.busy += time - start;
                }
                w.completed += 1;
                self.tasks_completed += 1;
            }
            SchedEvent::Spoliation { time, victim, wasted_work, .. } => {
                let w = self.worker(victim);
                if let Some(start) = w.run_open.take() {
                    w.aborted += time - start;
                } else {
                    w.aborted += wasted_work;
                }
                w.spoliated += 1;
                self.spoliation_count =
                    self.spoliation_count.checked_add(1).expect("spoliation tally");
                self.wasted_work += wasted_work;
            }
            SchedEvent::WorkerIdleBegin { time, worker } => {
                let w = self.worker(worker);
                if w.idle_open.is_none() {
                    w.idle_open = Some(time);
                }
                self.first_idle = Some(self.first_idle.map_or(time, |t| t.min(time)));
            }
            SchedEvent::WorkerIdleEnd { time, worker } => {
                let w = self.worker(worker);
                if let Some(since) = w.idle_open.take() {
                    w.idle += time - since;
                }
            }
            SchedEvent::QueuePop { end, .. } => match end {
                crate::QueueEnd::Front => self.queue_pops_front += 1,
                crate::QueueEnd::Back => self.queue_pops_back += 1,
            },
            SchedEvent::PolicyDecision { .. } => {}
            SchedEvent::TaskFailed { time, task, worker, lost_work, .. } => {
                if self.timeline && *self.ready_flag(task) {
                    // Defensive: live streams clear the flag at TaskStart.
                    *self.ready_flag(task) = false;
                    self.depth -= 1;
                    self.push_depth(time);
                }
                let w = self.worker(worker);
                if let Some(start) = w.run_open.take() {
                    w.aborted += time - start;
                } else {
                    w.aborted += lost_work;
                }
                w.failed += 1;
                self.task_failures += 1;
                self.lost_work += lost_work;
            }
            SchedEvent::TaskRetry { .. } => {
                self.retries = self.retries.checked_add(1).expect("retry tally");
            }
            SchedEvent::WorkerDown { time, worker, lost_task, .. } => {
                let w = self.worker(worker);
                let mut lost = 0.0;
                if let Some(start) = w.run_open.take() {
                    debug_assert!(lost_task.is_some());
                    w.aborted += time - start;
                    lost = time - start;
                }
                if let Some(since) = w.idle_open.take() {
                    w.idle += time - since;
                }
                if w.down_open.is_none() {
                    w.down_open = Some(time);
                }
                self.lost_work += lost;
                self.worker_failures += 1;
            }
            SchedEvent::WorkerUp { time, worker } => {
                let w = self.worker(worker);
                if let Some(since) = w.down_open.take() {
                    w.downtime += time - since;
                }
                self.worker_recoveries += 1;
            }
        }
    }

    /// Close every open idle interval at the makespan. Call exactly once,
    /// after the last event. (Idempotent: further calls are no-ops.)
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let horizon = self.makespan;
        for w in &mut self.workers {
            if let Some(since) = w.idle_open.take() {
                w.idle += horizon - since;
            }
            if let Some(since) = w.down_open.take() {
                w.downtime += horizon - since;
            }
        }
    }

    /// Largest event timestamp seen — for a complete trace, the makespan.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Events folded in so far.
    pub fn events_recorded(&self) -> usize {
        self.events_recorded
    }

    /// Peak ready-queue depth (0 if the timeline was not recorded).
    pub fn max_ready_depth(&self) -> usize {
        self.ready_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Sum of `busy` over the given worker ids.
    pub fn busy_over<I: IntoIterator<Item = usize>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|w| self.workers[w].busy).sum()
    }

    /// Sum of `idle + aborted` over the given worker ids. Aborted time
    /// counts as idle for the paper's accounting (the work was destroyed).
    pub fn idle_over<I: IntoIterator<Item = usize>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|w| self.workers[w].idle + self.workers[w].aborted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedEvent as E;

    #[test]
    fn two_worker_accounting() {
        // W0 runs T0 [0,4]; W1 runs T1 [0,1], idles [1,4].
        let events = [
            E::TaskReady { time: 0.0, task: 0 },
            E::TaskReady { time: 0.0, task: 1 },
            E::TaskStart { time: 0.0, task: 0, worker: 0, expected_end: 4.0 },
            E::TaskStart { time: 0.0, task: 1, worker: 1, expected_end: 1.0 },
            E::TaskComplete { time: 1.0, task: 1, worker: 1 },
            E::WorkerIdleBegin { time: 1.0, worker: 1 },
            E::TaskComplete { time: 4.0, task: 0, worker: 0 },
            E::WorkerIdleBegin { time: 4.0, worker: 0 },
        ];
        let s = TraceSummary::from_events(2, &events);
        assert_eq!(s.makespan(), 4.0);
        assert_eq!(s.workers[0].busy, 4.0);
        assert_eq!(s.workers[0].idle, 0.0);
        assert_eq!(s.workers[1].busy, 1.0);
        assert_eq!(s.workers[1].idle, 3.0);
        assert_eq!(s.first_idle, Some(1.0));
        assert_eq!(s.tasks_completed, 2);
        assert_eq!(s.max_ready_depth(), 2);
    }

    #[test]
    fn spoliation_accounting() {
        // W0 starts T0 at 0, W1 spoliates it at 2 and finishes at 3.
        let events = [
            E::TaskReady { time: 0.0, task: 0 },
            E::TaskStart { time: 0.0, task: 0, worker: 0, expected_end: 10.0 },
            E::WorkerIdleBegin { time: 0.0, worker: 1 },
            E::Spoliation { time: 2.0, task: 0, victim: 0, thief: 1, wasted_work: 2.0 },
            E::WorkerIdleEnd { time: 2.0, worker: 1 },
            E::TaskStart { time: 2.0, task: 0, worker: 1, expected_end: 3.0 },
            E::WorkerIdleBegin { time: 2.0, worker: 0 },
            E::TaskComplete { time: 3.0, task: 0, worker: 1 },
        ];
        let s = TraceSummary::from_events(2, &events);
        assert_eq!(s.spoliation_count, 1);
        assert_eq!(s.wasted_work, 2.0);
        assert_eq!(s.workers[0].aborted, 2.0);
        assert_eq!(s.workers[0].busy, 0.0);
        assert_eq!(s.workers[0].idle, 1.0);
        assert_eq!(s.workers[1].busy, 1.0);
        assert_eq!(s.workers[1].idle, 2.0);
        // Conservation: busy + idle + aborted == makespan for every worker.
        for w in &s.workers {
            assert!((w.busy + w.idle + w.aborted - s.makespan()).abs() < 1e-12);
        }
        assert_eq!(s.first_idle, Some(0.0));
    }

    #[test]
    fn fault_accounting() {
        // W0 starts T0 at 0, T0 fails at 2 (retry at 3), W0 reruns it
        // [3,5]. W1 starts T1 at 0 and dies at 1 taking it down; T1 is
        // re-announced and W0 runs it [5,6]. W1 recovers at 4 and idles
        // until the horizon.
        let events = [
            E::TaskReady { time: 0.0, task: 0 },
            E::TaskReady { time: 0.0, task: 1 },
            E::TaskStart { time: 0.0, task: 0, worker: 0, expected_end: 2.0 },
            E::TaskStart { time: 0.0, task: 1, worker: 1, expected_end: 4.0 },
            E::TaskFailed { time: 2.0, task: 0, worker: 0, lost_work: 2.0, attempt: 1 },
            E::TaskRetry { time: 2.0, task: 0, attempt: 1, delay: 1.0 },
            E::WorkerIdleBegin { time: 2.0, worker: 0 },
            E::WorkerDown { time: 1.0, worker: 1, lost_task: Some(1), permanent: false },
            E::TaskReady { time: 1.0, task: 1 },
            E::TaskReady { time: 3.0, task: 0 },
            E::WorkerIdleEnd { time: 3.0, worker: 0 },
            E::TaskStart { time: 3.0, task: 0, worker: 0, expected_end: 5.0 },
            E::WorkerUp { time: 4.0, worker: 1 },
            E::WorkerIdleBegin { time: 4.0, worker: 1 },
            E::TaskComplete { time: 5.0, task: 0, worker: 0 },
            E::TaskStart { time: 5.0, task: 1, worker: 0, expected_end: 6.0 },
            E::TaskComplete { time: 6.0, task: 1, worker: 0 },
        ];
        let mut sorted = events.to_vec();
        crate::sort_causal(&mut sorted);
        let s = TraceSummary::from_events(2, &sorted);
        assert_eq!(s.task_failures, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.worker_failures, 1);
        assert_eq!(s.worker_recoveries, 1);
        assert!((s.lost_work - 3.0).abs() < 1e-12, "2 from T0 + 1 from W1");
        assert_eq!(s.workers[0].failed, 1);
        assert!((s.workers[0].aborted - 2.0).abs() < 1e-12);
        assert!((s.workers[1].downtime - 3.0).abs() < 1e-12);
        // Conservation: busy + idle + aborted + downtime == makespan.
        for w in &s.workers {
            assert!((w.busy + w.idle + w.aborted + w.downtime - s.makespan()).abs() < 1e-12);
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut s = TraceSummary::new(1);
        s.record(&E::TaskStart { time: 0.0, task: 0, worker: 0, expected_end: 1.0 });
        s.record(&E::TaskComplete { time: 1.0, task: 0, worker: 0 });
        s.record(&E::WorkerIdleBegin { time: 1.0, worker: 0 });
        s.record(&E::TaskComplete { time: 5.0, task: 1, worker: 9 }); // grows workers
        s.finish();
        s.finish();
        assert_eq!(s.workers[0].idle, 4.0);
        assert_eq!(s.workers.len(), 10);
    }
}
