//! Structured tracing for the HeteroPrio schedulers and simulator.
//!
//! The paper's experimental argument (Figs. 6–9) rests on *transient*
//! behaviour — where idle time accrues, how much work spoliation throws
//! away, how deep the ready queue runs — which a finished `Schedule`
//! cannot reconstruct. This crate is the observability substrate: the
//! schedulers emit a typed stream of [`SchedEvent`]s into a [`TraceSink`],
//! and everything else (per-worker accounting, Chrome-trace and JSONL
//! exports, sparkline timelines) is derived from that stream.
//!
//! Design constraints:
//!
//! * **Dependency-free and id-based.** `heteroprio-core` depends on this
//!   crate, not the other way round, so events carry raw `u32` task/worker
//!   ids and `f64` times instead of core's newtypes.
//! * **Zero cost when disabled.** [`NullSink::emit`] is an empty inlined
//!   body; the instrumented hot loops are generic over the sink so the
//!   compiler erases the tracing entirely (the `scheduler_cost` bench
//!   guards this).
//!
//! The event stream doubles as the durability substrate: the [`journal`]
//! module persists it as CRC-framed records ([`FileJournal`]) so a crashed
//! run can be recovered and resumed deterministically (see
//! `heteroprio_core::kernel::resume`).
//!
//! `Schedule` above refers to `heteroprio_core::Schedule`.

#![forbid(unsafe_code)]

mod chrome;
mod event;
pub mod journal;
pub mod json;
mod jsonl;
mod sink;
mod summary;

pub use chrome::{chrome_trace, ChromeTraceOptions};
pub use event::{sort_causal, Decision, QueueEnd, SchedEvent};
pub use journal::{
    DamageKind, FileJournal, Journal, JournalDamage, JournalError, JournalSink, MemJournal,
    SyncPolicy,
};
pub use jsonl::{event_line, jsonl, parse_event_line, parse_jsonl, JsonlError};
pub use sink::{NullSink, TeeSink, TraceSink, VecSink};
pub use summary::{TraceSummary, WorkerStats};
