//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format understood by Perfetto
//! (<https://ui.perfetto.dev>) and chrome://tracing: one track (`tid`) per
//! worker, one complete (`"ph":"X"`) slice per task run — category
//! `"aborted"` for the spoliated portion of a run — and one instant
//! (`"ph":"i"`) marker per spoliation on the victim's track.
//!
//! Simulated time is unitless; the exporter maps 1 simulated time unit to
//! 1 ms (Chrome `ts`/`dur` are in µs), which puts the paper's Table-1
//! millisecond kernel timings on a natural scale.

use crate::json::escape;
use crate::SchedEvent;

/// Naming for tracks and slices. Ids beyond the provided names fall back
/// to `worker N` / `TN`.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceOptions {
    /// Track name per worker id (e.g. `CPU 0`, `GPU 1`).
    pub worker_names: Vec<String>,
    /// Slice name per task id (e.g. DAG node labels like `potrf[2]`).
    pub task_names: Vec<String>,
}

impl ChromeTraceOptions {
    fn worker_name(&self, w: u32) -> String {
        self.worker_names.get(w as usize).cloned().unwrap_or_else(|| format!("worker {w}"))
    }

    fn task_name(&self, t: u32) -> String {
        self.task_names.get(t as usize).cloned().unwrap_or_else(|| format!("T{t}"))
    }
}

const US_PER_UNIT: f64 = 1000.0; // 1 simulated unit = 1 ms = 1000 µs

/// Render an event stream as a Chrome trace JSON document.
pub fn chrome_trace(events: &[SchedEvent], opts: &ChromeTraceOptions) -> String {
    let mut workers: Vec<u32> = events
        .iter()
        .filter_map(|e| match *e {
            SchedEvent::TaskStart { worker, .. }
            | SchedEvent::TaskComplete { worker, .. }
            | SchedEvent::WorkerIdleBegin { worker, .. }
            | SchedEvent::WorkerIdleEnd { worker, .. }
            | SchedEvent::WorkerDown { worker, .. }
            | SchedEvent::WorkerUp { worker, .. }
            | SchedEvent::TaskFailed { worker, .. } => Some(worker),
            SchedEvent::Spoliation { victim, .. } => Some(victim),
            _ => None,
        })
        .collect();
    workers.extend(0..opts.worker_names.len() as u32);
    workers.sort_unstable();
    workers.dedup();

    let mut entries: Vec<String> = Vec::new();
    for &w in &workers {
        entries.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{w},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            escape(&opts.worker_name(w))
        ));
        entries.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{w},"name":"thread_sort_index","args":{{"sort_index":{w}}}}}"#
        ));
    }

    // Open run per worker: (task, start time).
    let max_worker = workers.last().map_or(0, |&w| w as usize + 1);
    let mut open: Vec<Option<(u32, f64)>> = vec![None; max_worker];
    for e in events {
        match *e {
            SchedEvent::TaskStart { time, task, worker, .. } => {
                open[worker as usize] = Some((task, time));
            }
            SchedEvent::TaskComplete { time, task, worker } => {
                if let Some((t, start)) = open[worker as usize].take() {
                    debug_assert_eq!(t, task);
                    entries.push(complete_slice(
                        &opts.task_name(task),
                        worker,
                        start,
                        time,
                        "task",
                        task,
                    ));
                }
            }
            SchedEvent::Spoliation { time, task, victim, thief, wasted_work } => {
                if let Some((t, start)) = open[victim as usize].take() {
                    debug_assert_eq!(t, task);
                    entries.push(complete_slice(
                        &format!("{} (aborted)", opts.task_name(task)),
                        victim,
                        start,
                        time,
                        "aborted",
                        task,
                    ));
                }
                entries.push(format!(
                    concat!(
                        r#"{{"ph":"i","pid":1,"tid":{victim},"ts":{ts},"s":"t","#,
                        r#""name":"spoliation {task}","cat":"spoliation","#,
                        r#""args":{{"task":{id},"victim":{victim},"thief":{thief},"wasted_work":{waste}}}}}"#
                    ),
                    victim = victim,
                    ts = time * US_PER_UNIT,
                    task = escape(&opts.task_name(task)),
                    id = task,
                    thief = thief,
                    waste = wasted_work,
                ));
            }
            SchedEvent::TaskFailed { time, task, worker, lost_work, attempt } => {
                if let Some((t, start)) = open[worker as usize].take() {
                    debug_assert_eq!(t, task);
                    entries.push(complete_slice(
                        &format!("{} (failed)", opts.task_name(task)),
                        worker,
                        start,
                        time,
                        "failed",
                        task,
                    ));
                }
                entries.push(format!(
                    concat!(
                        r#"{{"ph":"i","pid":1,"tid":{worker},"ts":{ts},"s":"t","#,
                        r#""name":"failure {task}","cat":"task_failed","#,
                        r#""args":{{"task":{id},"lost_work":{lost},"attempt":{attempt}}}}}"#
                    ),
                    worker = worker,
                    ts = time * US_PER_UNIT,
                    task = escape(&opts.task_name(task)),
                    id = task,
                    lost = lost_work,
                    attempt = attempt,
                ));
            }
            SchedEvent::WorkerDown { time, worker, lost_task, permanent } => {
                if let Some((t, start)) = open[worker as usize].take() {
                    debug_assert_eq!(Some(t), lost_task);
                    entries.push(complete_slice(
                        &format!("{} (lost)", opts.task_name(t)),
                        worker,
                        start,
                        time,
                        "lost",
                        t,
                    ));
                }
                entries.push(format!(
                    concat!(
                        r#"{{"ph":"i","pid":1,"tid":{worker},"ts":{ts},"s":"t","#,
                        r#""name":"worker down","cat":"worker_down","#,
                        r#""args":{{"permanent":{permanent}}}}}"#
                    ),
                    worker = worker,
                    ts = time * US_PER_UNIT,
                    permanent = permanent,
                ));
            }
            SchedEvent::WorkerUp { time, worker } => {
                entries.push(format!(
                    concat!(
                        r#"{{"ph":"i","pid":1,"tid":{worker},"ts":{ts},"s":"t","#,
                        r#""name":"worker up","cat":"worker_up","args":{{}}}}"#
                    ),
                    worker = worker,
                    ts = time * US_PER_UNIT,
                ));
            }
            _ => {}
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn complete_slice(name: &str, worker: u32, start: f64, end: f64, cat: &str, task: u32) -> String {
    format!(
        concat!(
            r#"{{"ph":"X","pid":1,"tid":{tid},"ts":{ts},"dur":{dur},"#,
            r#""name":"{name}","cat":"{cat}","args":{{"task":{task}}}}}"#
        ),
        tid = worker,
        ts = start * US_PER_UNIT,
        dur = (end - start) * US_PER_UNIT,
        name = escape(name),
        cat = cat,
        task = task,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn exports_valid_json_with_expected_shapes() {
        let events = [
            SchedEvent::TaskStart { time: 0.0, task: 0, worker: 0, expected_end: 2.0 },
            SchedEvent::Spoliation { time: 1.0, task: 0, victim: 0, thief: 1, wasted_work: 1.0 },
            SchedEvent::TaskStart { time: 1.0, task: 0, worker: 1, expected_end: 1.5 },
            SchedEvent::TaskComplete { time: 1.5, task: 0, worker: 1 },
        ];
        let opts = ChromeTraceOptions {
            worker_names: vec!["CPU 0".into(), "GPU \"zero\"".into()],
            task_names: vec!["potrf[0]".into()],
        };
        let doc = chrome_trace(&events, &opts);
        let v = json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |tag: &str| {
            evs.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(tag)).count()
        };
        assert_eq!(ph("X"), 2, "one aborted + one completed slice");
        assert_eq!(ph("i"), 1, "one spoliation instant");
        assert_eq!(ph("M"), 4, "name + sort_index per worker");
        // The completed slice carries the task label and correct µs times.
        let complete = evs
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("cat").and_then(|c| c.as_str()) == Some("task")
            })
            .unwrap();
        assert_eq!(complete.get("name").unwrap().as_str(), Some("potrf[0]"));
        assert_eq!(complete.get("ts").unwrap().as_f64(), Some(1000.0));
        assert_eq!(complete.get("dur").unwrap().as_f64(), Some(500.0));
    }
}
