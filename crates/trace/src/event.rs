//! The typed scheduler event vocabulary.

/// Which end of the sorted ready queue a task was taken from.
///
/// In HeteroPrio the queue is sorted by acceleration factor; GPUs pop the
/// front (best-accelerated first) and CPUs pop the back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueEnd {
    Front,
    Back,
}

/// What a scheduling policy decided when an idle worker asked for work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The worker was assigned this task.
    Pick(u32),
    /// Nothing was ready; the worker will spoliate this victim worker.
    Spoliate(u32),
    /// Nothing to do — the worker goes (or stays) idle.
    Idle,
}

/// One scheduler occurrence, stamped with simulated time.
///
/// Ids are the raw `u32` payloads of core's `TaskId`/`WorkerId` so this
/// crate stays dependency-free (core depends on it, not vice versa).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedEvent {
    /// A task's dependencies are all satisfied; it entered the ready set.
    TaskReady { time: f64, task: u32 },
    /// A worker began executing a task. `expected_end` is the completion
    /// time as of the start (a later spoliation may cut the run short).
    TaskStart { time: f64, task: u32, worker: u32, expected_end: f64 },
    /// A worker finished a task.
    TaskComplete { time: f64, task: u32, worker: u32 },
    /// `thief` aborted `task` on `victim` and restarted it; `wasted_work`
    /// is the victim's in-progress time thrown away.
    Spoliation { time: f64, task: u32, victim: u32, thief: u32, wasted_work: f64 },
    /// A worker asked for work and got none.
    WorkerIdleBegin { time: f64, worker: u32 },
    /// A previously idle worker received work again.
    WorkerIdleEnd { time: f64, worker: u32 },
    /// A task left the sorted ready queue from `end`, taken by `worker`.
    QueuePop { time: f64, task: u32, worker: u32, end: QueueEnd },
    /// A policy verdict for an idle worker (emitted on assignments,
    /// spoliations, and the transition into idleness — not on every poll).
    PolicyDecision { time: f64, worker: u32, decision: Decision },
    /// A worker failed. `lost_task` is the task whose in-progress run was
    /// destroyed (if any); `permanent` workers never come back.
    WorkerDown { time: f64, worker: u32, lost_task: Option<u32>, permanent: bool },
    /// A transiently failed worker recovered and rejoined the idle pool.
    WorkerUp { time: f64, worker: u32 },
    /// A task failed mid-run on `worker`; `lost_work` is the in-progress
    /// time destroyed and `attempt` the 1-based attempt number that failed.
    TaskFailed { time: f64, task: u32, worker: u32, lost_work: f64, attempt: u32 },
    /// A failed task was scheduled for re-execution after a backoff
    /// `delay`; it re-enters the ready set at `time + delay`.
    TaskRetry { time: f64, task: u32, attempt: u32, delay: f64 },
}

impl SchedEvent {
    /// Simulated timestamp of the event.
    pub fn time(&self) -> f64 {
        match *self {
            SchedEvent::TaskReady { time, .. }
            | SchedEvent::TaskStart { time, .. }
            | SchedEvent::TaskComplete { time, .. }
            | SchedEvent::Spoliation { time, .. }
            | SchedEvent::WorkerIdleBegin { time, .. }
            | SchedEvent::WorkerIdleEnd { time, .. }
            | SchedEvent::QueuePop { time, .. }
            | SchedEvent::PolicyDecision { time, .. }
            | SchedEvent::WorkerDown { time, .. }
            | SchedEvent::WorkerUp { time, .. }
            | SchedEvent::TaskFailed { time, .. }
            | SchedEvent::TaskRetry { time, .. } => time,
        }
    }

    /// Snake-case tag used by the JSONL exporter and tooling.
    pub fn kind(&self) -> &'static str {
        match self {
            SchedEvent::TaskReady { .. } => "task_ready",
            SchedEvent::TaskStart { .. } => "task_start",
            SchedEvent::TaskComplete { .. } => "task_complete",
            SchedEvent::Spoliation { .. } => "spoliation",
            SchedEvent::WorkerIdleBegin { .. } => "worker_idle_begin",
            SchedEvent::WorkerIdleEnd { .. } => "worker_idle_end",
            SchedEvent::QueuePop { .. } => "queue_pop",
            SchedEvent::PolicyDecision { .. } => "policy_decision",
            SchedEvent::WorkerDown { .. } => "worker_down",
            SchedEvent::WorkerUp { .. } => "worker_up",
            SchedEvent::TaskFailed { .. } => "task_failed",
            SchedEvent::TaskRetry { .. } => "task_retry",
        }
    }

    /// Tie-break rank for sorting events that share a timestamp so that a
    /// replay through [`TraceSummary`](crate::TraceSummary) sees a causal
    /// order: completions and aborts close intervals before new intervals
    /// open, and an idle interval opens before it is closed or pre-empted.
    pub fn order_rank(&self) -> u8 {
        match self {
            SchedEvent::TaskComplete { .. } => 0,
            SchedEvent::TaskFailed { .. } => 1,
            SchedEvent::Spoliation { .. } => 2,
            SchedEvent::WorkerDown { .. } => 3,
            SchedEvent::WorkerUp { .. } => 4,
            SchedEvent::TaskReady { .. } => 5,
            SchedEvent::TaskRetry { .. } => 6,
            SchedEvent::QueuePop { .. } | SchedEvent::PolicyDecision { .. } => 7,
            SchedEvent::WorkerIdleBegin { .. } => 8,
            SchedEvent::WorkerIdleEnd { .. } => 9,
            SchedEvent::TaskStart { .. } => 10,
        }
    }
}

/// Sort events by (time, [`SchedEvent::order_rank`]), preserving emission
/// order within ties. Live instrumentation already emits causally; this is
/// for event lists reconstructed from a finished schedule.
pub fn sort_causal(events: &mut [SchedEvent]) {
    events.sort_by(|a, b| a.time().total_cmp(&b.time()).then(a.order_rank().cmp(&b.order_rank())));
}
