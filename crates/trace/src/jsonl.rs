//! JSONL exporter: one JSON object per line, one line per event.
//!
//! The flat shape is meant for ad-hoc tooling (`jq`, pandas, grep); every
//! line carries a `"type"` tag matching [`SchedEvent::kind`].

use crate::{Decision, QueueEnd, SchedEvent};

/// Render an event stream as line-delimited JSON.
pub fn jsonl(events: &[SchedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&line(e));
        out.push('\n');
    }
    out
}

fn line(e: &SchedEvent) -> String {
    let kind = e.kind();
    match *e {
        SchedEvent::TaskReady { time, task } => {
            format!(r#"{{"type":"{kind}","time":{time},"task":{task}}}"#)
        }
        SchedEvent::TaskStart { time, task, worker, expected_end } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"expected_end":{expected_end}}}"#
        ),
        SchedEvent::TaskComplete { time, task, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker}}}"#)
        }
        SchedEvent::Spoliation { time, task, victim, thief, wasted_work } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"victim":{victim},"thief":{thief},"wasted_work":{wasted_work}}}"#
        ),
        SchedEvent::WorkerIdleBegin { time, worker }
        | SchedEvent::WorkerIdleEnd { time, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"worker":{worker}}}"#)
        }
        SchedEvent::QueuePop { time, task, worker, end } => {
            let end = match end {
                QueueEnd::Front => "front",
                QueueEnd::Back => "back",
            };
            format!(
                r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"end":"{end}"}}"#
            )
        }
        SchedEvent::PolicyDecision { time, worker, decision } => {
            let (verdict, target) = match decision {
                Decision::Pick(t) => ("pick", Some(t)),
                Decision::Spoliate(v) => ("spoliate", Some(v)),
                Decision::Idle => ("idle", None),
            };
            match target {
                Some(t) => format!(
                    r#"{{"type":"{kind}","time":{time},"worker":{worker},"decision":"{verdict}","target":{t}}}"#
                ),
                None => format!(
                    r#"{{"type":"{kind}","time":{time},"worker":{worker},"decision":"{verdict}"}}"#
                ),
            }
        }
        SchedEvent::WorkerDown { time, worker, lost_task, permanent } => match lost_task {
            Some(t) => format!(
                r#"{{"type":"{kind}","time":{time},"worker":{worker},"lost_task":{t},"permanent":{permanent}}}"#
            ),
            None => format!(
                r#"{{"type":"{kind}","time":{time},"worker":{worker},"permanent":{permanent}}}"#
            ),
        },
        SchedEvent::WorkerUp { time, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"worker":{worker}}}"#)
        }
        SchedEvent::TaskFailed { time, task, worker, lost_work, attempt } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"lost_work":{lost_work},"attempt":{attempt}}}"#
        ),
        SchedEvent::TaskRetry { time, task, attempt, delay } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"attempt":{attempt},"delay":{delay}}}"#
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_line_parses_and_is_tagged() {
        let events = [
            SchedEvent::TaskReady { time: 0.0, task: 3 },
            SchedEvent::QueuePop { time: 0.0, task: 3, worker: 2, end: QueueEnd::Front },
            SchedEvent::PolicyDecision { time: 0.0, worker: 2, decision: Decision::Pick(3) },
            SchedEvent::TaskStart { time: 0.0, task: 3, worker: 2, expected_end: 1.5 },
            SchedEvent::PolicyDecision { time: 0.5, worker: 0, decision: Decision::Idle },
            SchedEvent::WorkerIdleBegin { time: 0.5, worker: 0 },
            SchedEvent::Spoliation { time: 1.0, task: 3, victim: 2, thief: 0, wasted_work: 1.0 },
            SchedEvent::WorkerIdleEnd { time: 1.0, worker: 0 },
            SchedEvent::TaskComplete { time: 1.25, task: 3, worker: 0 },
            SchedEvent::TaskFailed { time: 1.5, task: 4, worker: 2, lost_work: 0.5, attempt: 1 },
            SchedEvent::TaskRetry { time: 1.5, task: 4, attempt: 1, delay: 0.25 },
            SchedEvent::WorkerDown { time: 2.0, worker: 2, lost_task: None, permanent: true },
            SchedEvent::WorkerDown { time: 2.0, worker: 1, lost_task: Some(5), permanent: false },
            SchedEvent::WorkerUp { time: 3.0, worker: 1 },
        ];
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let v = json::parse(line).expect("line parses");
            assert_eq!(v.get("type").unwrap().as_str(), Some(event.kind()));
            assert_eq!(v.get("time").unwrap().as_f64(), Some(event.time()));
        }
    }
}
