//! JSONL exporter: one JSON object per line, one line per event.
//!
//! The flat shape is meant for ad-hoc tooling (`jq`, pandas, grep); every
//! line carries a `"type"` tag matching [`SchedEvent::kind`].

use crate::json::{self, Value};
use crate::{Decision, QueueEnd, SchedEvent};

/// Render an event stream as line-delimited JSON.
pub fn jsonl(events: &[SchedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&line(e));
        out.push('\n');
    }
    out
}

/// Render a single event as its JSONL line (no trailing newline). This is
/// the canonical wire form: the journal frames exactly these bytes, and
/// [`parse_event_line`] inverts them.
pub fn event_line(e: &SchedEvent) -> String {
    line(e)
}

/// Parse one JSONL line back into an event.
pub fn parse_event_line(text: &str) -> Result<SchedEvent, String> {
    let v = json::parse(text)?;
    parse_event(&v)
}

fn line(e: &SchedEvent) -> String {
    let kind = e.kind();
    match *e {
        SchedEvent::TaskReady { time, task } => {
            format!(r#"{{"type":"{kind}","time":{time},"task":{task}}}"#)
        }
        SchedEvent::TaskStart { time, task, worker, expected_end } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"expected_end":{expected_end}}}"#
        ),
        SchedEvent::TaskComplete { time, task, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker}}}"#)
        }
        SchedEvent::Spoliation { time, task, victim, thief, wasted_work } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"victim":{victim},"thief":{thief},"wasted_work":{wasted_work}}}"#
        ),
        SchedEvent::WorkerIdleBegin { time, worker }
        | SchedEvent::WorkerIdleEnd { time, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"worker":{worker}}}"#)
        }
        SchedEvent::QueuePop { time, task, worker, end } => {
            let end = match end {
                QueueEnd::Front => "front",
                QueueEnd::Back => "back",
            };
            format!(
                r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"end":"{end}"}}"#
            )
        }
        SchedEvent::PolicyDecision { time, worker, decision } => {
            let (verdict, target) = match decision {
                Decision::Pick(t) => ("pick", Some(t)),
                Decision::Spoliate(v) => ("spoliate", Some(v)),
                Decision::Idle => ("idle", None),
            };
            match target {
                Some(t) => format!(
                    r#"{{"type":"{kind}","time":{time},"worker":{worker},"decision":"{verdict}","target":{t}}}"#
                ),
                None => format!(
                    r#"{{"type":"{kind}","time":{time},"worker":{worker},"decision":"{verdict}"}}"#
                ),
            }
        }
        SchedEvent::WorkerDown { time, worker, lost_task, permanent } => match lost_task {
            Some(t) => format!(
                r#"{{"type":"{kind}","time":{time},"worker":{worker},"lost_task":{t},"permanent":{permanent}}}"#
            ),
            None => format!(
                r#"{{"type":"{kind}","time":{time},"worker":{worker},"permanent":{permanent}}}"#
            ),
        },
        SchedEvent::WorkerUp { time, worker } => {
            format!(r#"{{"type":"{kind}","time":{time},"worker":{worker}}}"#)
        }
        SchedEvent::TaskFailed { time, task, worker, lost_work, attempt } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"worker":{worker},"lost_work":{lost_work},"attempt":{attempt}}}"#
        ),
        SchedEvent::TaskRetry { time, task, attempt, delay } => format!(
            r#"{{"type":"{kind}","time":{time},"task":{task},"attempt":{attempt},"delay":{delay}}}"#
        ),
    }
}

/// A malformed line in a JSONL trace. Carries everything salvaged before
/// the damage: a crashed writer typically leaves a truncated final line, and
/// callers that can tolerate that (journal recovery, post-mortem tooling)
/// take [`parsed`](JsonlError::parsed) instead of rejecting the whole file.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonlError {
    /// 1-based line number of the first malformed line.
    pub line: usize,
    /// Byte offset of the start of that line within the input.
    pub byte_offset: usize,
    /// What was wrong with it.
    pub message: String,
    /// Every event successfully parsed before the malformed line.
    pub parsed: Vec<SchedEvent>,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {} (byte {}): {} ({} events parsed before the damage)",
            self.line,
            self.byte_offset,
            self.message,
            self.parsed.len()
        )
    }
}

impl std::error::Error for JsonlError {}

impl From<JsonlError> for String {
    fn from(e: JsonlError) -> String {
        e.to_string()
    }
}

/// Parse a JSONL trace produced by [`jsonl`] back into typed events.
///
/// Blank lines are skipped; the first malformed line aborts with a
/// [`JsonlError`] naming the 1-based line number and byte offset — and
/// carrying the prefix parsed so far, so a trace with only a truncated
/// final line (common after a crash) is still recoverable. This is the
/// ingestion path for `audit --trace`.
pub fn parse_jsonl(text: &str) -> Result<Vec<SchedEvent>, JsonlError> {
    let mut events = Vec::new();
    let mut offset = 0;
    for (idx, line) in text.lines().enumerate() {
        let line_start = offset;
        // `lines()` strips "\n" and "\r\n"; track offsets from the source.
        offset += line.len();
        if text[offset..].starts_with("\r\n") {
            offset += 2;
        } else if text[offset..].starts_with('\n') {
            offset += 1;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fail = |message: String, parsed: Vec<SchedEvent>| JsonlError {
            line: idx + 1,
            byte_offset: line_start,
            message,
            parsed,
        };
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return Err(fail(e, events)),
        };
        match parse_event(&v) {
            Ok(e) => events.push(e),
            Err(e) => return Err(fail(e, events)),
        }
    }
    Ok(events)
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing number field {key:?}"))
}

fn field_id(v: &Value, key: &str) -> Result<u32, String> {
    let x = field_f64(v, key)?;
    // lint: allow(float-eq): fract() is exactly 0.0 for integral values, no rounding involved.
    if x.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&x) {
        return Err(format!("field {key:?} is not a valid id: {x}"));
    }
    // lint: allow(cast-trunc): fract()==0 and range-checked above, exact conversion.
    Ok(x as u32)
}

fn parse_event(v: &Value) -> Result<SchedEvent, String> {
    let kind = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field \"type\"".to_string())?;
    let time = field_f64(v, "time")?;
    if !time.is_finite() {
        return Err(format!("non-finite time {time}"));
    }
    Ok(match kind {
        "task_ready" => SchedEvent::TaskReady { time, task: field_id(v, "task")? },
        "task_start" => SchedEvent::TaskStart {
            time,
            task: field_id(v, "task")?,
            worker: field_id(v, "worker")?,
            expected_end: field_f64(v, "expected_end")?,
        },
        "task_complete" => SchedEvent::TaskComplete {
            time,
            task: field_id(v, "task")?,
            worker: field_id(v, "worker")?,
        },
        "spoliation" => SchedEvent::Spoliation {
            time,
            task: field_id(v, "task")?,
            victim: field_id(v, "victim")?,
            thief: field_id(v, "thief")?,
            wasted_work: field_f64(v, "wasted_work")?,
        },
        "worker_idle_begin" => SchedEvent::WorkerIdleBegin { time, worker: field_id(v, "worker")? },
        "worker_idle_end" => SchedEvent::WorkerIdleEnd { time, worker: field_id(v, "worker")? },
        "queue_pop" => SchedEvent::QueuePop {
            time,
            task: field_id(v, "task")?,
            worker: field_id(v, "worker")?,
            end: match v.get("end").and_then(Value::as_str) {
                Some("front") => QueueEnd::Front,
                Some("back") => QueueEnd::Back,
                other => return Err(format!("bad queue end {other:?}")),
            },
        },
        "policy_decision" => SchedEvent::PolicyDecision {
            time,
            worker: field_id(v, "worker")?,
            decision: match v.get("decision").and_then(Value::as_str) {
                Some("pick") => Decision::Pick(field_id(v, "target")?),
                Some("spoliate") => Decision::Spoliate(field_id(v, "target")?),
                Some("idle") => Decision::Idle,
                other => return Err(format!("bad decision {other:?}")),
            },
        },
        "worker_down" => SchedEvent::WorkerDown {
            time,
            worker: field_id(v, "worker")?,
            lost_task: match v.get("lost_task") {
                Some(_) => Some(field_id(v, "lost_task")?),
                None => None,
            },
            permanent: v
                .get("permanent")
                .and_then(Value::as_bool)
                .ok_or("missing bool field \"permanent\"")?,
        },
        "worker_up" => SchedEvent::WorkerUp { time, worker: field_id(v, "worker")? },
        "task_failed" => SchedEvent::TaskFailed {
            time,
            task: field_id(v, "task")?,
            worker: field_id(v, "worker")?,
            lost_work: field_f64(v, "lost_work")?,
            attempt: field_id(v, "attempt")?,
        },
        "task_retry" => SchedEvent::TaskRetry {
            time,
            task: field_id(v, "task")?,
            attempt: field_id(v, "attempt")?,
            delay: field_f64(v, "delay")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_line_parses_and_is_tagged() {
        let events = [
            SchedEvent::TaskReady { time: 0.0, task: 3 },
            SchedEvent::QueuePop { time: 0.0, task: 3, worker: 2, end: QueueEnd::Front },
            SchedEvent::PolicyDecision { time: 0.0, worker: 2, decision: Decision::Pick(3) },
            SchedEvent::TaskStart { time: 0.0, task: 3, worker: 2, expected_end: 1.5 },
            SchedEvent::PolicyDecision { time: 0.5, worker: 0, decision: Decision::Idle },
            SchedEvent::WorkerIdleBegin { time: 0.5, worker: 0 },
            SchedEvent::Spoliation { time: 1.0, task: 3, victim: 2, thief: 0, wasted_work: 1.0 },
            SchedEvent::WorkerIdleEnd { time: 1.0, worker: 0 },
            SchedEvent::TaskComplete { time: 1.25, task: 3, worker: 0 },
            SchedEvent::TaskFailed { time: 1.5, task: 4, worker: 2, lost_work: 0.5, attempt: 1 },
            SchedEvent::TaskRetry { time: 1.5, task: 4, attempt: 1, delay: 0.25 },
            SchedEvent::WorkerDown { time: 2.0, worker: 2, lost_task: None, permanent: true },
            SchedEvent::WorkerDown { time: 2.0, worker: 1, lost_task: Some(5), permanent: false },
            SchedEvent::WorkerUp { time: 3.0, worker: 1 },
        ];
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let v = json::parse(line).expect("line parses");
            assert_eq!(v.get("type").unwrap().as_str(), Some(event.kind()));
            assert_eq!(v.get("time").unwrap().as_f64(), Some(event.time()));
        }
        // And the parser inverts the exporter exactly.
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"type\":\"task_ready\",\"time\":0.0}")
            .unwrap_err()
            .to_string()
            .contains("task"));
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"type\":\"nope\",\"time\":0.0}")
            .unwrap_err()
            .to_string()
            .contains("nope"));
        assert!(parse_jsonl("{\"type\":\"task_ready\",\"time\":0.0,\"task\":1.5}").is_err());
        // Blank lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn truncated_final_line_salvages_the_prefix() {
        let events = [
            SchedEvent::TaskReady { time: 0.0, task: 0 },
            SchedEvent::TaskStart { time: 0.0, task: 0, worker: 1, expected_end: 2.0 },
            SchedEvent::TaskComplete { time: 2.0, task: 0, worker: 1 },
        ];
        let full = jsonl(&events);
        // Simulate a crash mid-write: chop the last line in half.
        let cut = full.len() - 14;
        let damaged = &full[..cut];
        let err = parse_jsonl(damaged).unwrap_err();
        assert_eq!(err.parsed, events[..2].to_vec());
        assert_eq!(err.line, 3);
        let line3_start = full.lines().take(2).map(|l| l.len() + 1).sum::<usize>();
        assert_eq!(err.byte_offset, line3_start);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn single_event_line_round_trips() {
        let e =
            SchedEvent::Spoliation { time: 1.5, task: 7, victim: 0, thief: 3, wasted_work: 0.5 };
        assert_eq!(parse_event_line(&event_line(&e)).unwrap(), e);
        assert!(parse_event_line("{\"type\":").is_err());
    }
}
