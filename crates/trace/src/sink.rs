//! Where events go: the sink trait and its two canonical implementations.

use crate::SchedEvent;

/// Consumer of scheduler events.
///
/// Instrumented code is generic over `S: TraceSink`, so the choice of sink
/// is made at compile time and [`NullSink`] erases tracing entirely.
pub trait TraceSink {
    fn emit(&mut self, event: SchedEvent);

    /// `false` when emitted events are discarded. Instrumentation may use
    /// this to skip constructing expensive event payloads; the standard
    /// events are plain `Copy` data, so most call sites ignore it.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// Discards every event. `emit` is an empty `#[inline(always)]` body, so a
/// scheduler monomorphised over `NullSink` contains no tracing code at all
/// (the `scheduler_cost` bench guards this claim).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _event: SchedEvent) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Records every event in order.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    pub events: Vec<SchedEvent>,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink::default()
    }

    pub fn into_events(self) -> Vec<SchedEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.events.push(event);
    }
}

/// Fans one event stream out to two sinks — e.g. a [`VecSink`] recorder
/// plus a streaming auditor watching the same run.
#[derive(Clone, Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.0.emit(event);
        self.1.emit(event);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        (**self).emit(event);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}
