//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by tests (and available to tooling) to
//! check that exported traces are well-formed without external crates.

/// Escape a string for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number span contains only ASCII digits, sign, dot and exponent");
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peek() saw at least one byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basics() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": "x\"y", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_produces_parseable_strings() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
