//! Write-ahead journaling of [`SchedEvent`] streams.
//!
//! The kernel's event stream is a complete, deterministic record of a run:
//! replaying it (or re-executing the run and checking against it) recovers
//! every scheduling decision. This module makes that stream durable:
//!
//! * [`Journal`] — the persistence trait (append, sync, replay);
//! * [`MemJournal`] — in-memory implementation for tests and embedding;
//! * [`FileJournal`] — file-backed implementation framing each event as a
//!   `[len: u32 LE][crc32: u32 LE][payload]` record, where the payload is
//!   the event's canonical JSONL line ([`crate::jsonl::event_line`]);
//! * [`JournalSink`] — a [`TraceSink`] adapter appending every emitted
//!   event, so any instrumented engine journals without modification.
//!
//! A journal hit by a torn write, truncation or bit corruption never takes
//! the run's history down with it: [`FileJournal::open`] scans the file,
//! keeps the longest valid prefix of records, truncates the damage away and
//! reports it precisely as a typed [`JournalDamage`] instead of failing.
//!
//! All durable writes in the workspace must go through this module — the
//! audit lint (`raw-journal-io`) flags raw `std::fs` writes aimed at
//! journal paths elsewhere, so the CRC framing and fsync discipline cannot
//! be bypassed.

use crate::jsonl::{event_line, parse_event_line};
use crate::{SchedEvent, TraceSink};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a HeteroPrio journal, version 1.
pub const MAGIC: &[u8; 6] = b"HPJL1\n";

/// Upper bound on a single record's payload. Real event lines are ~100
/// bytes; anything claiming more is a corrupt length field, not a record.
const MAX_PAYLOAD: u32 = 1 << 20;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// An unrecoverable journal failure (I/O error, unreadable header).
/// Recoverable damage inside the record stream is reported as
/// [`JournalDamage`] instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying storage failed.
    Io { op: &'static str, detail: String },
    /// The file exists but is not a journal (bad or missing magic).
    BadHeader { detail: String },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { op, detail } => write!(f, "journal {op} failed: {detail}"),
            JournalError::BadHeader { detail } => write!(f, "not a journal: {detail}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<JournalError> for String {
    fn from(e: JournalError) -> String {
        e.to_string()
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |e| JournalError::Io { op, detail: e.to_string() }
}

/// What kind of damage cut the record stream short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DamageKind {
    /// The file ends mid-record: a torn write or truncation.
    TornWrite,
    /// A length field claims an implausible record size (corrupt framing).
    BadLength,
    /// A record's payload does not match its CRC-32 (bit corruption).
    BadChecksum,
    /// The CRC matched but the payload is not a valid event line.
    BadPayload,
}

/// Precise report of journal damage found during recovery. Everything
/// before [`valid_records`](JournalDamage::valid_records) is intact and was
/// kept; everything from [`offset`](JournalDamage::offset) on was
/// unrecoverable.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalDamage {
    pub kind: DamageKind,
    /// Records successfully decoded before the damage (all preserved).
    pub valid_records: usize,
    /// Byte offset of the first damaged record.
    pub offset: u64,
    /// Bytes from `offset` to the end of the file, dropped by recovery.
    pub lost_bytes: u64,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for JournalDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} at byte {}: {} ({} valid records kept, {} bytes dropped)",
            self.kind, self.offset, self.detail, self.valid_records, self.lost_bytes
        )
    }
}

/// How often a [`FileJournal`] commits appended records to stable storage.
///
/// Appends are group-committed: records accumulate in an in-process
/// buffer and reach the file in one write (plus one fsync) per cadence
/// window — the textbook trade of bounded loss for throughput. The
/// cadence bounds what a killed process or failed machine can lose;
/// an orderly shutdown loses nothing ([`Journal::sync`] and `Drop` both
/// flush the buffer, and `Drop` of an unsynced journal also writes it
/// out). Recovery tolerates any prefix, so a lost window never corrupts
/// what was committed before it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync explicitly; rely on the OS writeback.
    Never,
    /// fsync after every record. Maximum durability, maximum latency.
    EveryRecord,
    /// fsync once every `n` records (and on [`Journal::sync`]).
    EveryN(u64),
}

impl SyncPolicy {
    /// The default cadence: every 4096 records (roughly 300 KiB).
    ///
    /// The window can afford to be wide because the journaled run is
    /// deterministic and recomputable: an OS or power crash inside the
    /// window costs re-executing at most 4096 events from the last
    /// committed prefix — microseconds of kernel time — not data. A
    /// process crash loses even less (the OS still writes back whatever
    /// was flushed to the page cache). A tight cadence would buy
    /// thousands of fsyncs per second at kernel event rates and protect
    /// nothing that replay does not already recover.
    pub const DEFAULT: SyncPolicy = SyncPolicy::EveryN(4096);
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::DEFAULT
    }
}

/// Append-only persistence for an event stream.
///
/// `append` returns the number of bytes the record occupied, so callers
/// can meter write volume without knowing the framing.
pub trait Journal {
    /// Durably order `event` after everything appended so far.
    fn append(&mut self, event: &SchedEvent) -> Result<usize, JournalError>;

    /// Force everything appended so far to stable storage.
    fn sync(&mut self) -> Result<(), JournalError>;

    /// Number of records in the journal (recovered + appended).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read back every record currently in the journal, in append order.
    fn replay(&mut self) -> Result<Vec<SchedEvent>, JournalError>;

    /// Stable-storage syncs performed so far, explicit *and*
    /// cadence-triggered — so metering layers wrapping a journal can
    /// observe group commits they did not initiate themselves.
    fn syncs(&self) -> u64 {
        0
    }
}

/// In-memory journal: the persistence trait without the persistence. Used
/// by tests and by crash-injection harnesses that only need the journal's
/// *contents*, not a file.
#[derive(Clone, Debug, Default)]
pub struct MemJournal {
    events: Vec<SchedEvent>,
    synced: usize,
    sync_calls: u64,
}

impl MemJournal {
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// The journaled events, in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Records covered by the last [`Journal::sync`] (for harnesses
    /// asserting fsync discipline).
    pub fn synced(&self) -> usize {
        self.synced
    }
}

impl Journal for MemJournal {
    fn append(&mut self, event: &SchedEvent) -> Result<usize, JournalError> {
        self.events.push(*event);
        Ok(8 + event_line(event).len())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.synced = self.events.len();
        self.sync_calls += 1;
        Ok(())
    }

    fn len(&self) -> usize {
        self.events.len()
    }

    fn replay(&mut self) -> Result<Vec<SchedEvent>, JournalError> {
        Ok(self.events.clone())
    }

    fn syncs(&self) -> u64 {
        self.sync_calls
    }
}

/// Decode the record stream of a journal file body (after the magic).
/// Returns the events of the longest valid prefix, the byte offset where
/// that prefix ends, and the damage that stopped the scan, if any.
fn decode_records(body: &[u8], body_start: u64) -> (Vec<SchedEvent>, u64, Option<JournalDamage>) {
    let mut events = Vec::new();
    let mut pos = 0usize;
    let damage = loop {
        if pos == body.len() {
            break None;
        }
        let at = body_start + pos as u64;
        let fail = |kind, detail: String| JournalDamage {
            kind,
            valid_records: events.len(),
            offset: at,
            lost_bytes: (body.len() - pos) as u64,
            detail,
        };
        if body.len() - pos < 8 {
            break Some(fail(
                DamageKind::TornWrite,
                format!("{} trailing bytes, record header needs 8", body.len() - pos),
            ));
        }
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break Some(fail(
                DamageKind::BadLength,
                format!("record claims {len} payload bytes (max {MAX_PAYLOAD})"),
            ));
        }
        let len = len as usize;
        if body.len() - pos - 8 < len {
            break Some(fail(
                DamageKind::TornWrite,
                format!("record needs {len} payload bytes, {} remain", body.len() - pos - 8),
            ));
        }
        let payload = &body[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break Some(fail(DamageKind::BadChecksum, "payload CRC-32 mismatch".to_string()));
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(e) => break Some(fail(DamageKind::BadPayload, format!("not UTF-8: {e}"))),
        };
        match parse_event_line(text) {
            Ok(e) => events.push(e),
            Err(e) => break Some(fail(DamageKind::BadPayload, e)),
        }
        pos += 8 + len;
    };
    (events, body_start + pos as u64, damage)
}

/// Frames not yet handed to the OS are flushed once they exceed this, so
/// the group-commit buffer stays bounded even under [`SyncPolicy::Never`].
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// File-backed journal with group commit: appends frame into an in-process
/// buffer; one write (and, per [`SyncPolicy`], one fsync) commits a whole
/// cadence window. See the module docs for the record framing.
#[derive(Debug)]
pub struct FileJournal {
    file: std::fs::File,
    path: PathBuf,
    records: usize,
    since_sync: u64,
    policy: SyncPolicy,
    /// Framed records not yet written to `file`.
    buf: Vec<u8>,
    sync_count: u64,
}

impl FileJournal {
    /// Create (or truncate) a journal at `path`, writing the magic header.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::create(&path).map_err(io_err("create"))?;
        file.write_all(MAGIC).map_err(io_err("write header"))?;
        Ok(FileJournal {
            file,
            path,
            records: 0,
            since_sync: 0,
            policy: SyncPolicy::DEFAULT,
            buf: Vec::new(),
            sync_count: 0,
        })
    }

    /// Set the fsync cadence (builder style).
    pub fn with_sync(mut self, policy: SyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Open an existing journal for appending, recovering its contents.
    ///
    /// Scans every record, keeps the longest valid prefix, **truncates the
    /// file** to that prefix if anything after it is damaged, and returns
    /// the recovered events plus the damage report (if any). The returned
    /// journal appends after the last valid record.
    pub fn open<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Self, Vec<SchedEvent>, Option<JournalDamage>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            std::fs::File::options().read(true).write(true).open(&path).map_err(io_err("open"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read"))?;
        let (events, valid_end, damage) = Self::decode(&bytes)?;
        if damage.is_some() {
            file.set_len(valid_end).map_err(io_err("truncate damage"))?;
            file.sync_all().map_err(io_err("sync truncation"))?;
        }
        file.seek(SeekFrom::Start(valid_end)).map_err(io_err("seek"))?;
        let records = events.len();
        Ok((
            FileJournal {
                file,
                path,
                records,
                since_sync: 0,
                policy: SyncPolicy::DEFAULT,
                buf: Vec::new(),
                sync_count: 0,
            },
            events,
            damage,
        ))
    }

    /// Read-only recovery: decode `path` without modifying the file.
    pub fn recover<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Vec<SchedEvent>, Option<JournalDamage>), JournalError> {
        let bytes = std::fs::read(path).map_err(io_err("read"))?;
        let (events, _, damage) = Self::decode(&bytes)?;
        Ok((events, damage))
    }

    fn decode(bytes: &[u8]) -> Result<(Vec<SchedEvent>, u64, Option<JournalDamage>), JournalError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::BadHeader {
                detail: format!(
                    "expected {:?} magic, found {:?}",
                    MAGIC,
                    &bytes[..bytes.len().min(MAGIC.len())]
                ),
            });
        }
        let (events, valid_end, damage) = decode_records(&bytes[MAGIC.len()..], MAGIC.len() as u64);
        Ok((events, valid_end, damage))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Hand buffered frames to the OS (one write, no fsync).
    fn flush_buf(&mut self) -> Result<(), JournalError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf).map_err(io_err("append"))?;
            self.buf.clear();
        }
        Ok(())
    }
}

impl Drop for FileJournal {
    /// Best-effort: an orderly shutdown (including panics that unwind)
    /// writes out the buffered tail, so only a killed process or failed
    /// machine can lose the unsynced window.
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

impl Journal for FileJournal {
    fn append(&mut self, event: &SchedEvent) -> Result<usize, JournalError> {
        let payload = event_line(event);
        let payload = payload.as_bytes();
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.records += 1;
        self.since_sync += 1;
        let due = match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::EveryRecord => true,
            SyncPolicy::EveryN(n) => self.since_sync >= n.max(1),
        };
        if due {
            self.sync()?;
        } else if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush_buf()?;
        }
        Ok(8 + payload.len())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.flush_buf()?;
        if self.since_sync > 0 {
            self.file.sync_data().map_err(io_err("sync"))?;
            self.since_sync = 0;
            self.sync_count = self.sync_count.checked_add(1).expect("u64 sync tally");
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.records
    }

    fn replay(&mut self) -> Result<Vec<SchedEvent>, JournalError> {
        self.flush_buf()?;
        let (events, _damage) = Self::recover(&self.path)?;
        Ok(events)
    }

    fn syncs(&self) -> u64 {
        self.sync_count
    }
}

/// Adapts a [`Journal`] into a [`TraceSink`], so any engine that emits a
/// trace journals for free (typically behind a
/// [`TeeSink`](crate::TeeSink)).
///
/// [`TraceSink::emit`] cannot fail, so the first append error is latched
/// and appending stops; callers check [`JournalSink::error`] after the run.
/// On resume, [`JournalSink::resuming`] skips the first `skip` events — the
/// prefix already present in the journal — and appends only the
/// continuation.
pub struct JournalSink<'j, J: Journal> {
    journal: &'j mut J,
    skip: usize,
    seen: usize,
    error: Option<JournalError>,
}

impl<'j, J: Journal> JournalSink<'j, J> {
    pub fn new(journal: &'j mut J) -> Self {
        JournalSink { journal, skip: 0, seen: 0, error: None }
    }

    /// A sink for resumed runs: the first `skip` emitted events are already
    /// in the journal (verified replay of the recovered prefix) and must
    /// not be appended again.
    pub fn resuming(journal: &'j mut J, skip: usize) -> Self {
        JournalSink { journal, skip, seen: 0, error: None }
    }

    /// The first append failure, if any. A run whose sink reports an error
    /// completed in memory but is not durably recorded past that point.
    pub fn error(&self) -> Option<&JournalError> {
        self.error.as_ref()
    }

    /// Events offered to the sink (including skipped prefix events).
    pub fn seen(&self) -> usize {
        self.seen
    }
}

impl<J: Journal> TraceSink for JournalSink<'_, J> {
    fn emit(&mut self, event: SchedEvent) {
        self.seen = self.seen.checked_add(1).expect("event tally fits in usize");
        if self.seen <= self.skip || self.error.is_some() {
            return;
        }
        if let Err(e) = self.journal.append(&event) {
            self.error = Some(e);
        }
    }

    fn is_enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SchedEvent> {
        vec![
            SchedEvent::TaskReady { time: 0.0, task: 0 },
            SchedEvent::TaskStart { time: 0.0, task: 0, worker: 1, expected_end: 2.5 },
            SchedEvent::WorkerIdleBegin { time: 0.0, worker: 0 },
            SchedEvent::TaskComplete { time: 2.5, task: 0, worker: 1 },
            SchedEvent::WorkerIdleBegin { time: 2.5, worker: 1 },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hpj_test_{}_{name}.hpj", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn mem_journal_round_trips() {
        let mut j = MemJournal::new();
        for e in sample_events() {
            assert!(j.append(&e).unwrap() > 8);
        }
        assert_eq!(j.len(), 5);
        assert_eq!(j.synced(), 0);
        j.sync().unwrap();
        assert_eq!(j.synced(), 5);
        assert_eq!(j.replay().unwrap(), sample_events());
    }

    #[test]
    fn file_journal_round_trips_through_reopen() {
        let path = tmp("roundtrip");
        let events = sample_events();
        {
            let mut j = FileJournal::create(&path).unwrap().with_sync(SyncPolicy::EveryRecord);
            for e in &events {
                j.append(e).unwrap();
            }
            assert_eq!(j.replay().unwrap(), events);
        }
        let (mut j, recovered, damage) = FileJournal::open(&path).unwrap();
        assert_eq!(recovered, events);
        assert!(damage.is_none());
        // Appending after reopen extends the same stream.
        j.append(&events[0]).unwrap();
        j.sync().unwrap();
        let (replayed, damage) = FileJournal::recover(&path).unwrap();
        assert_eq!(replayed.len(), events.len() + 1);
        assert!(damage.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_reported_and_healed() {
        let path = tmp("torn");
        let events = sample_events();
        {
            let mut j = FileJournal::create(&path).unwrap();
            for e in &events {
                j.append(e).unwrap();
            }
            j.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the final record: a torn write.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (j, recovered, damage) = FileJournal::open(&path).unwrap();
        drop(j);
        assert_eq!(recovered, events[..events.len() - 1].to_vec());
        let damage = damage.expect("torn write must be reported");
        assert_eq!(damage.kind, DamageKind::TornWrite);
        assert_eq!(damage.valid_records, events.len() - 1);
        // open() healed the file: a second open is clean.
        let (_, again, damage) = FileJournal::open(&path).unwrap();
        assert_eq!(again, recovered);
        assert!(damage.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let path = tmp("flip");
        let events = sample_events();
        {
            let mut j = FileJournal::create(&path).unwrap();
            for e in &events {
                j.append(e).unwrap();
            }
            j.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit in the second record's body.
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, damage) = FileJournal::recover(&path).unwrap();
        let damage = damage.expect("bit flip must be reported");
        assert!(
            matches!(
                damage.kind,
                DamageKind::BadChecksum
                    | DamageKind::BadLength
                    | DamageKind::TornWrite
                    | DamageKind::BadPayload
            ),
            "{damage:?}"
        );
        // The valid prefix is intact.
        assert_eq!(recovered, events[..recovered.len()].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_a_header_error() {
        let path = tmp("hdr");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(FileJournal::open(&path), Err(JournalError::BadHeader { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_sink_skips_the_resumed_prefix() {
        let events = sample_events();
        let mut j = MemJournal::new();
        for e in &events[..2] {
            j.append(e).unwrap();
        }
        {
            let mut sink = JournalSink::resuming(&mut j, 2);
            for e in &events {
                sink.emit(*e);
            }
            assert!(sink.error().is_none());
            assert_eq!(sink.seen(), events.len());
        }
        assert_eq!(j.events(), &events[..]);
    }
}
