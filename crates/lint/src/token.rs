//! A lightweight, hand-rolled Rust tokenizer.
//!
//! This is not a full lexer for the language — it is exactly the subset the
//! lint rules need to be *sound about scope*: comments (line/block/doc,
//! nested), string/byte-string/raw-string literals (including multi-line
//! ones, which the old per-line regex scanner leaked), char and byte
//! literals vs lifetimes, numeric literals with suffixes, identifiers
//! (including `r#raw` ones), and multi-character operators. Every byte of
//! the input belongs to exactly one token or to inter-token whitespace, so
//! downstream passes can blank out non-code tokens and get a masked view of
//! the source whose byte offsets still line up with the original.
//!
//! The tokenizer never fails: malformed input (an unterminated string, a
//! lone backslash) degrades to a best-effort token that extends to the end
//! of the input, which is the right behaviour for a linter that must not
//! panic on the code it is judging.

/// The classification of one [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A lifetime or loop label such as `'a` (not a char literal).
    Lifetime,
    /// An integer literal, with any suffix (`0`, `0xff_u32`).
    Int,
    /// A float literal, with any suffix (`1.0`, `2e-9`, `3f64`).
    Float,
    /// A normal string literal `"..."`, possibly spanning lines.
    Str,
    /// A raw string literal `r"..."` / `r#"..."#`.
    RawStr,
    /// A byte-string literal `b"..."`.
    ByteStr,
    /// A raw byte-string literal `br#"..."#`.
    RawByteStr,
    /// A char literal `'x'` (including escapes).
    Char,
    /// A byte literal `b'x'`.
    Byte,
    /// A plain `//` line comment (directives live here).
    LineComment,
    /// A `///` or `//!` doc comment (documentation, never a directive).
    DocLineComment,
    /// A plain `/* ... */` block comment, possibly nested and multi-line.
    BlockComment,
    /// A `/** ... */` or `/*! ... */` doc block comment.
    DocBlockComment,
    /// Any operator or delimiter; multi-character operators (`==`, `..=`,
    /// `<<=`, `::`, `->`, ...) are a single token.
    Punct,
}

/// One token: its kind, raw text, byte offset and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Token<'_> {
    /// Byte offset just past the last byte.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// 1-based line number of the last byte (tokens can span lines).
    pub fn end_line(&self) -> usize {
        self.line + self.text.matches('\n').count()
    }

    /// Is this any kind of comment?
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment
                | TokenKind::DocLineComment
                | TokenKind::BlockComment
                | TokenKind::DocBlockComment
        )
    }

    /// Does this token survive into the masked (code-only) view? Literal
    /// *contents*, comments and lifetimes do not: rules that grep the
    /// masked text can never be fooled by them.
    pub fn is_code(&self) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Punct)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "<<", ">>", "..", "::", "->", "=>",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize a whole source file. Infallible; see the module docs.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Lexer { src, b: src.as_bytes(), i: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c == b'\n' {
                self.line = self.line.checked_add(1).expect("line count fits in usize");
                self.i += 1;
                continue;
            }
            if c.is_ascii_whitespace() {
                self.i += 1;
                continue;
            }
            let start = self.i;
            let line = self.line;
            let kind = self.next_kind(c);
            out.push(Token { kind, text: &self.src[start..self.i], start, line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Consume one token starting at `self.i` and return its kind.
    fn next_kind(&mut self, c: u8) -> TokenKind {
        match c {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' => self.r_prefixed(),
            b'b' => self.b_prefixed(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            _ if c.is_ascii_digit() => self.number(),
            _ if is_ident_start(c) => self.ident(),
            _ => self.punct(),
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        // `////...` is a plain comment in rustc's grammar; only exactly
        // `///` (outer) and `//!` (inner) are documentation.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        if doc {
            TokenKind::DocLineComment
        } else {
            TokenKind::LineComment
        }
    }

    fn block_comment(&mut self) -> TokenKind {
        let start = self.i;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i..].starts_with(b"/*") {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i..].starts_with(b"*/") {
                depth -= 1;
                self.i += 2;
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let text = &self.src[start..self.i];
        // `/**/` and `/***/` are plain; `/**x` and `/*!x` are doc.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        if doc {
            TokenKind::DocBlockComment
        } else {
            TokenKind::BlockComment
        }
    }

    /// `r"..."`, `r#"..."#`, or a raw identifier `r#ident`, or a plain
    /// identifier starting with `r`.
    fn r_prefixed(&mut self) -> TokenKind {
        let mut j = 1usize;
        while self.peek(j) == Some(b'#') {
            j += 1;
        }
        if self.peek(j) == Some(b'"') {
            let hashes = j - 1;
            self.i += j + 1; // past r##...#"
            self.raw_string_tail(hashes);
            return TokenKind::RawStr;
        }
        if j == 2 && self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
            self.i += 2; // past r#
            return self.ident();
        }
        self.ident()
    }

    /// `b"..."`, `b'...'`, `br#"..."#`, or an identifier starting with `b`.
    fn b_prefixed(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'"') => {
                self.i += 1;
                self.string();
                TokenKind::ByteStr
            }
            Some(b'\'') => {
                self.i += 1;
                // A byte literal is always a char-literal shape; `b'` is
                // never a lifetime.
                self.char_or_lifetime();
                TokenKind::Byte
            }
            Some(b'r') => {
                let mut j = 2usize;
                while self.peek(j) == Some(b'#') {
                    j += 1;
                }
                if self.peek(j) == Some(b'"') {
                    let hashes = j - 2;
                    self.i += j + 1;
                    self.raw_string_tail(hashes);
                    return TokenKind::RawByteStr;
                }
                self.ident()
            }
            _ => self.ident(),
        }
    }

    /// Consume a raw-string body up to `"` followed by `hashes` `#`s.
    fn raw_string_tail(&mut self, hashes: usize) {
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.i += 1 + hashes;
                    return;
                }
            }
            if self.b[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    /// Consume a normal (possibly multi-line) string starting at `"`.
    fn string(&mut self) -> TokenKind {
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    // A line-continuation escape (`\` at end of line) hides
                    // a newline inside the escape pair — count it, or every
                    // line number after it drifts.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i = (self.i + 2).min(self.b.len());
                }
                b'"' => {
                    self.i += 1;
                    return TokenKind::Str;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        TokenKind::Str // unterminated: degrade to end of input
    }

    /// Disambiguate a char literal from a lifetime/label at a `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        if let Some(end) = char_literal_end(self.b, self.i) {
            self.i = end;
            return TokenKind::Char;
        }
        self.i += 1;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        TokenKind::Lifetime
    }

    fn number(&mut self) -> TokenKind {
        if self.b[self.i] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Prefixed integer: consume the prefix and every ident-ish byte
            // (digits, hex letters, underscores, and the suffix).
            self.i += 2;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            return TokenKind::Int;
        }
        let mut float = false;
        self.digits();
        if self.b.get(self.i) == Some(&b'.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    self.i += 1;
                    self.digits();
                }
                // `1.` is a float, but `1..n` is a range and `1.max(x)` a
                // method call on an integer.
                Some(d) if !is_ident_start(d) && d != b'.' => {
                    float = true;
                    self.i += 1;
                }
                None => {
                    float = true;
                    self.i += 1;
                }
                _ => {}
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            let sign = matches!(self.peek(1), Some(b'+' | b'-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                float = true;
                self.i += digit_at;
                self.digits();
            }
        }
        // Type suffix (`u32`, `f64`, ...), also consumes `_` separators.
        let suffix_start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let suffix = &self.src[suffix_start..self.i];
        if suffix.ends_with("f32") || suffix.ends_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn digits(&mut self) {
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
    }

    fn ident(&mut self) -> TokenKind {
        self.i += 1;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        TokenKind::Ident
    }

    fn punct(&mut self) -> TokenKind {
        for op in MULTI_PUNCT {
            if self.b[self.i..].starts_with(op.as_bytes()) {
                self.i += op.len();
                return TokenKind::Punct;
            }
        }
        self.i += 1;
        TokenKind::Punct
    }
}

/// If a char/byte literal starts at the quote at `q`, return the byte index
/// just past its closing quote. `None` means "this is a lifetime".
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    let mut i = q + 1;
    if i >= b.len() {
        return None;
    }
    if b[i] == b'\\' {
        i += 1;
        if i >= b.len() {
            return None;
        }
        match b[i] {
            b'u' => {
                // \u{...}
                i += 1;
                if b.get(i) != Some(&b'{') {
                    return None;
                }
                while i < b.len() && b[i] != b'}' {
                    i += 1;
                }
                i += 1;
            }
            b'x' => i += 3, // \xNN
            _ => i += 1,    // \n, \', \\ ...
        }
    } else if b[i] == b'\'' {
        return None; // '' is not a literal
    } else {
        // One UTF-8 character.
        i += 1;
        while i < b.len() && (b[i] & 0xC0) == 0x80 {
            i += 1;
        }
    }
    (b.get(i) == Some(&b'\'')).then(|| i + 1)
}

/// The masked (code-only) view of the source: one `String` per line, with
/// every byte of a non-code token (comments, literal contents, lifetimes)
/// replaced by a space. Byte offsets within each line are preserved, so
/// expression-shaped heuristics can still walk the text.
pub fn masked_lines(src: &str, tokens: &[Token<'_>]) -> Vec<String> {
    let mut bytes = src.as_bytes().to_vec();
    for t in tokens {
        if t.is_code() {
            continue;
        }
        for byte in &mut bytes[t.start..t.start + t.text.len()] {
            if *byte != b'\n' {
                *byte = b' ';
            }
        }
    }
    // Code tokens are kept whole and everything else is ASCII spaces, so
    // the buffer is still valid UTF-8; from_utf8_lossy never actually
    // replaces anything here but avoids an unwrap.
    String::from_utf8_lossy(&bytes).lines().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_comments_strings_chars_and_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("let x = 1.5; // hi"),
            vec![
                (Ident, "let"),
                (Ident, "x"),
                (Punct, "="),
                (Float, "1.5"),
                (Punct, ";"),
                (LineComment, "// hi")
            ]
        );
        assert_eq!(kinds("/// doc")[0].0, DocLineComment);
        assert_eq!(kinds("//! inner")[0].0, DocLineComment);
        assert_eq!(kinds("//// plain")[0].0, LineComment);
        assert_eq!(
            kinds("/* a /* nested */ b */ x"),
            vec![(BlockComment, "/* a /* nested */ b */"), (Ident, "x")]
        );
        assert_eq!(
            kinds("\"s\" b\"b\" r#\"r\"# 'c' b'0' 'life"),
            vec![
                (Str, "\"s\""),
                (ByteStr, "b\"b\""),
                (RawStr, "r#\"r\"#"),
                (Char, "'c'"),
                (Byte, "b'0'"),
                (Lifetime, "'life")
            ]
        );
        assert_eq!(
            kinds("0x1f_u32 1_000 2e-9 1.0f64 x.0 0..n"),
            vec![
                (Int, "0x1f_u32"),
                (Int, "1_000"),
                (Float, "2e-9"),
                (Float, "1.0f64"),
                (Ident, "x"),
                (Punct, "."),
                (Int, "0"),
                (Int, "0"),
                (Punct, ".."),
                (Ident, "n")
            ]
        );
    }

    #[test]
    fn multi_line_strings_and_comments_track_lines() {
        let src = "let s = \"line one\n.unwrap()\";\nx.unwrap();\n";
        let toks = tokenize(src);
        let unwraps: Vec<usize> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "unwrap")
            .map(|t| t.line)
            .collect();
        assert_eq!(unwraps, vec![3], "only the real unwrap, on line 3");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("string token");
        assert_eq!((s.line, s.end_line()), (1, 2));
        // Escaped newlines (string line continuations) still count.
        let src = "let s = \"one \\\ntwo\";\nx.unwrap();\n";
        let toks = tokenize(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap token");
        assert_eq!(unwrap.line, 3, "line continuation must not shift later lines");
    }

    #[test]
    fn masked_view_blanks_literals_and_comments() {
        let src = "let s = \"a == 1.0\"; // b == 2.0\nif a == 1.0 {}\n";
        let masked = masked_lines(src, &tokenize(src));
        assert_eq!(masked[0], "let s =           ;            ");
        assert_eq!(masked[1], "if a == 1.0 {}");
    }

    #[test]
    fn raw_identifiers_and_prefixed_words_are_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("r#type break rate"),
            vec![(Ident, "r#type"), (Ident, "break"), (Ident, "rate")]
        );
        // `r` / `b` followed by non-quote stays an identifier.
        assert_eq!(kinds("br(x)")[0], (Ident, "br"));
    }

    #[test]
    fn unterminated_tokens_extend_to_eof_without_panicking() {
        assert_eq!(tokenize("let s = \"open").last().map(|t| t.kind), Some(TokenKind::Str));
        assert_eq!(tokenize("/* open").last().map(|t| t.kind), Some(TokenKind::BlockComment));
        assert_eq!(tokenize("r#\"open").last().map(|t| t.kind), Some(TokenKind::RawStr));
    }
}
