//! The rule registry and every content rule, token-level and line-level.
//!
//! Rules (names are what `lint: allow(...)` directives must use):
//!
//! * `float-eq` — `==` / `!=` with a float-literal operand. All time
//!   comparisons must go through `core/src/time.rs`; exact sentinels (a
//!   value set literally and never produced by arithmetic) may be
//!   allow-listed with a comment stating that invariant.
//! * `float-ord` — `<` / `>` / `<=` / `>=` with a *non-zero* float-literal
//!   operand. Comparisons against literal `0.0` are sign checks and exempt.
//! * `partial-cmp` — any `.partial_cmp(` call. Scheduling code sorts with
//!   `total_cmp` or `F64Ord`; `partial_cmp` reintroduces NaN panics.
//! * `cast-trunc` — numeric `as` casts to integer types whose operand looks
//!   like scheduling math (contains a float literal, `f64`/`f32`,
//!   `ceil`/`floor`/`round`, or `*` / `/` arithmetic). Deliberate
//!   quantization must be allow-listed.
//! * `unwrap` — bare `.unwrap()` in non-test library code. Use `.expect()`
//!   with a message stating the invariant instead.
//! * `slice-index` — postfix `[...]` indexing or slicing in the kernel
//!   crates (`core`, `simulator`, `runtime`, `schedulers`). A bad index is
//!   a panic in the event loop; use `.get()`/`.get_mut()` with `.expect()`
//!   stating the invariant, or allow-list with the bound stated.
//! * `unchecked-arith` — `+` / `-` / `*` (or the compound assignments) on
//!   an identifier named like a task/event counter (`*count*`, `*seen*`,
//!   `*emitted*`, `*retri*`, `*attempt*`, `*ticks*`, `*epoch*`, `seq`).
//!   Overflow wraps silently in release; route through `checked_*` /
//!   `saturating_*` with the invariant stated, or allow with a reason.
//! * `map-iter-order` — `HashMap` / `HashSet` in the kernel crates. Hash
//!   iteration order is nondeterministic across runs and platforms, which
//!   silently breaks bit-identical replay; use `BTreeMap` / `BTreeSet` or
//!   collect-and-sort before iterating.
//! * `unfenced-concurrency` — `thread::spawn` / `thread::scope`,
//!   `.spawn(`, `Mutex`, `RwLock`, `Condvar`, `Barrier`, `mpsc` or atomics
//!   outside the two sanctioned modules (`metrics/src/registry.rs`, the
//!   lock-free metrics slab, and `core/src/parallel.rs`, the deterministic
//!   worker pool). Stray concurrency primitives are how a future parallel
//!   kernel loop loses event-order determinism.
//! * `unseeded-rng` — RNG construction not threaded from an explicit seed
//!   (`thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`, `ThreadRng`,
//!   `rand::random`). Every run must be reproducible from its inputs.
//! * `instant-now` — `Instant::now()` / `SystemTime::now()` outside
//!   `crates/metrics`. Wall-clock reads scattered through scheduling code
//!   make runs non-reproducible and measurements inconsistent; all timing
//!   goes through `heteroprio_metrics` (`Stopwatch`, `ScopedTimer`), which
//!   is the one crate allowed to touch the clock.
//! * `raw-journal-io` — raw filesystem writes (`File::create(`,
//!   `fs::write(`, `File::options(`, `OpenOptions`) on a line that handles
//!   a journal/checkpoint/snapshot artifact, outside the two durability
//!   modules (`trace/src/journal.rs`, `core/src/durability.rs`). Writing
//!   durability artifacts by hand bypasses the length+CRC framing, the
//!   fsync cadence and the atomic tmp+rename protocol that crash recovery
//!   depends on; route the bytes through `FileJournal` /
//!   `FileCheckpointStore` instead.
//! * `schedule-mut` — mutating calls on a `.runs` / `.aborted` field outside
//!   `crates/core`. The kernel owns `Schedule` construction; everything else
//!   receives one and must treat it as sealed. Reconstruction paths (e.g.
//!   rebuilding a schedule from a recorded trace) allow-list each site with
//!   the reason.
//! * `hardcoded-class` — a `Cpu` / `Gpu` identifier outside
//!   `core/src/model/compat.rs`. The class model is runtime-sized
//!   (`ClassId` / `ClassTable`); `compat::ResourceKind` is the one module
//!   allowed to spell the two-class dichotomy. Frozen k=2 reference paths
//!   (the seed engine, the Lemma 1/2 certificates) carry baseline entries
//!   or allow each site with the reason.
//! * `forbid-unsafe` — every crate root must carry `#![forbid(unsafe_code)]`
//!   (checked by [`lint_workspace`], not per-line).
//! * `allow-directive` — a malformed `lint: allow` directive: an unknown
//!   rule name, an unterminated argument list, or a missing reason. The
//!   reason is mandatory; an empty reason is itself a violation.
//!
//! An allow directive is a plain line (or block) comment whose content
//! *starts with* `lint: allow(rule): reason` and applies to its own line,
//! or — when the line is comment-only — to the next line with code. Doc
//! comments (`///`, `//!`) are documentation, never directives, and a
//! trailing comment that merely mentions the grammar mid-sentence does not
//! exempt the code sharing its line.
//!
//! `core/src/time.rs` is exempt from the float rules: it is the one place
//! raw comparisons are allowed, because it *defines* the tolerant ones.
//! `#[cfg(test)]` item scopes are exempt from all content rules.

use crate::source::SourceFile;
use crate::token::{Token, TokenKind};
use crate::LintViolation;
use std::path::{Path, PathBuf};

/// The rule family a rule belongs to; drives report grouping and the
/// DESIGN.md §11 map from rule family to the plane it protects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Raw f64 comparisons and truncations — protects the tolerant time
    /// algebra the paper's bounds are checked with.
    FloatDiscipline,
    /// Panic paths in the event loop — indexing, overflow, bare unwraps.
    PanicFreedom,
    /// Bit-identical replay — iteration order, concurrency, RNG, clocks.
    Determinism,
    /// Crash recovery — journal/checkpoint framing and fsync discipline.
    Durability,
    /// Ownership boundaries — who may construct/mutate core artifacts.
    Encapsulation,
    /// Workspace structure — per-crate soundness attributes.
    Structure,
    /// The directive grammar itself.
    Meta,
}

impl Family {
    pub fn as_str(self) -> &'static str {
        match self {
            Family::FloatDiscipline => "float-discipline",
            Family::PanicFreedom => "panic-freedom",
            Family::Determinism => "determinism",
            Family::Durability => "durability",
            Family::Encapsulation => "encapsulation",
            Family::Structure => "structure",
            Family::Meta => "meta",
        }
    }
}

/// Per-rule metadata: registry entry for reports, `--rules` and SARIF.
#[derive(Clone, Copy, Debug)]
pub struct RuleMeta {
    pub name: &'static str,
    pub summary: &'static str,
    pub family: Family,
    /// What breaks if this rule is ignored — the plane or ROADMAP item the
    /// rule fences.
    pub protects: &'static str,
}

/// The full registry. Order here is the order of the module docs above,
/// `--rules` output and the SARIF rule table (pinned by a test).
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        name: "float-eq",
        summary: "==/!= with a float literal outside core/src/time.rs",
        family: Family::FloatDiscipline,
        protects: "tolerant time algebra behind the paper's bound checks",
    },
    RuleMeta {
        name: "float-ord",
        summary: "</>/<=/>= with a non-zero float literal outside core/src/time.rs",
        family: Family::FloatDiscipline,
        protects: "tolerant time algebra behind the paper's bound checks",
    },
    RuleMeta {
        name: "partial-cmp",
        summary: ".partial_cmp( outside core/src/time.rs",
        family: Family::FloatDiscipline,
        protects: "NaN-total ordering in every scheduling sort",
    },
    RuleMeta {
        name: "cast-trunc",
        summary: "integer `as` cast of scheduling math without an allow comment",
        family: Family::FloatDiscipline,
        protects: "exact task/time accounting across the bounds and reports",
    },
    RuleMeta {
        name: "unwrap",
        summary: "bare .unwrap() in non-test library code",
        family: Family::PanicFreedom,
        protects: "panic-free kernel loop (ROADMAP item 1: long-running daemon)",
    },
    RuleMeta {
        name: "slice-index",
        summary: "postfix [..] indexing in kernel crates without a stated bound",
        family: Family::PanicFreedom,
        protects: "panic-free kernel loop (ROADMAP item 1: long-running daemon)",
    },
    RuleMeta {
        name: "unchecked-arith",
        summary: "+/-/* on a task/event counter that wraps silently in release",
        family: Family::PanicFreedom,
        protects: "monotone event/task counters the recovery plane keys on",
    },
    RuleMeta {
        name: "map-iter-order",
        summary: "HashMap/HashSet in kernel crates (nondeterministic iteration)",
        family: Family::Determinism,
        protects: "bit-identical replay (ROADMAP item 2: parallel kernel loop)",
    },
    RuleMeta {
        name: "unfenced-concurrency",
        summary: "concurrency primitive outside metrics slab / core::parallel",
        family: Family::Determinism,
        protects: "bit-identical replay (ROADMAP item 2: parallel kernel loop)",
    },
    RuleMeta {
        name: "unseeded-rng",
        summary: "RNG construction not threaded from an explicit seed",
        family: Family::Determinism,
        protects: "reproducible fault plans, jitter and generated workloads",
    },
    RuleMeta {
        name: "instant-now",
        summary: "Instant::now()/SystemTime::now() outside crates/metrics",
        family: Family::Determinism,
        protects: "clock-free scheduling decisions; metrics is the clock room",
    },
    RuleMeta {
        name: "raw-journal-io",
        summary: "raw fs write of a journal/checkpoint artifact outside the durability modules",
        family: Family::Durability,
        protects: "CRC framing + fsync + atomic-rename crash-recovery protocol",
    },
    RuleMeta {
        name: "schedule-mut",
        summary: "Schedule runs/aborted mutated outside crates/core",
        family: Family::Encapsulation,
        protects: "kernel-owned Schedule construction (audit replays trust it)",
    },
    RuleMeta {
        name: "hardcoded-class",
        summary: "Cpu/Gpu identifier outside core::model::compat (k=2 dichotomy leak)",
        family: Family::Encapsulation,
        protects: "runtime-sized class model; compat::ResourceKind is the one k=2 site",
    },
    RuleMeta {
        name: "forbid-unsafe",
        summary: "crate root missing #![forbid(unsafe_code)]",
        family: Family::Structure,
        protects: "memory safety as a workspace-wide invariant",
    },
    RuleMeta {
        name: "allow-directive",
        summary: "malformed lint: allow directive (unknown rule or missing reason)",
        family: Family::Meta,
        protects: "every exemption carries a stated invariant",
    },
];

/// Look up a rule's metadata by name.
pub fn rule_meta(name: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|m| m.name == name)
}

/// The crates whose sources are "scheduling code" for the determinism and
/// panic-path families: a panic or a nondeterministic iteration here is a
/// kernel-loop bug, not a tooling inconvenience.
const KERNEL_CRATES: &[&str] =
    &["crates/core/", "crates/simulator/", "crates/runtime/", "crates/schedulers/"];

fn in_kernel_crates(path: &str) -> bool {
    KERNEL_CRATES.iter().any(|p| path.starts_with(p))
}

/// Apply every content rule to one source file. `path` is used for
/// reporting and for the per-module exemptions described in the module
/// docs; it should be workspace-relative (`crates/...`).
pub fn lint_source(path: &str, text: &str) -> Vec<LintViolation> {
    let sf = SourceFile::parse(path, text);
    let mut violations = sf.directive_violations.clone();
    check_lines(&sf, &mut violations);
    check_tokens(&sf, &mut violations);
    violations.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    violations
}

/// The line-shaped rules, ported from the regex-era scanner onto the
/// masked (code-only) view the tokenizer produces: the expression
/// heuristics are unchanged, but they can no longer be fooled by strings,
/// comments, or multi-line literals.
fn check_lines(sf: &SourceFile<'_>, violations: &mut Vec<LintViolation>) {
    let path = sf.path;
    let float_exempt = path.ends_with("core/src/time.rs");
    let schedule_exempt = path.starts_with("crates/core/");
    let clock_exempt = path.starts_with("crates/metrics/");
    let journal_exempt =
        path.ends_with("trace/src/journal.rs") || path.ends_with("core/src/durability.rs");
    for (i, code) in sf.masked.iter().enumerate() {
        if sf.in_test(i) {
            continue;
        }
        let mut push = |rule: &'static str, message: String| {
            if !sf.allowed(i, rule) {
                violations.push(LintViolation {
                    file: path.to_string(),
                    line: i + 1,
                    rule,
                    message,
                });
            }
        };
        if !float_exempt && code.contains(".partial_cmp(") {
            push("partial-cmp", "use total_cmp or F64Ord instead of partial_cmp".into());
        }
        if code.contains(".unwrap()") {
            push("unwrap", "bare unwrap in library code; use expect with the invariant".into());
        }
        if !float_exempt {
            check_float_comparisons(code, &mut push);
        }
        check_int_casts(code, &mut push);
        if !schedule_exempt {
            check_schedule_mutations(code, &mut push);
        }
        if !clock_exempt {
            for needle in ["Instant::now(", "SystemTime::now("] {
                if code.contains(needle) {
                    push(
                        "instant-now",
                        format!(
                            "direct clock read `{needle})` outside crates/metrics; use \
                             heteroprio_metrics::Stopwatch or ScopedTimer"
                        ),
                    );
                }
            }
        }
        if !journal_exempt {
            check_raw_journal_io(code, &mut push);
        }
    }
}

/// The token-shaped rules: the determinism family and the panic-path
/// family added for the parallel-kernel work.
fn check_tokens(sf: &SourceFile<'_>, violations: &mut Vec<LintViolation>) {
    let path = sf.path;
    let kernel = in_kernel_crates(path);
    let concurrency_exempt =
        path.ends_with("metrics/src/registry.rs") || path.ends_with("core/src/parallel.rs");
    let compat_exempt = path.ends_with("core/src/model/compat.rs");
    let code: Vec<&Token<'_>> = sf.code_tokens().collect();
    let mut push = |line: usize, rule: &'static str, message: String| {
        let line0 = line - 1;
        if !sf.in_test(line0) && !sf.allowed(line0, rule) {
            violations.push(LintViolation { file: path.to_string(), line, rule, message });
        }
    };
    for (i, t) in code.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| code[j]);
        let next = code.get(i + 1).copied();
        match t.kind {
            TokenKind::Ident => {
                if !compat_exempt && matches!(t.text, "Cpu" | "Gpu") {
                    push(
                        t.line,
                        "hardcoded-class",
                        format!(
                            "hard-coded resource class `{}` outside core::model::compat; \
                             the class model is runtime-sized — take a ClassId/ClassTable \
                             from the caller, or allow-list a frozen k=2 reference path",
                            t.text
                        ),
                    );
                }
                if kernel && matches!(t.text, "HashMap" | "HashSet") {
                    push(
                        t.line,
                        "map-iter-order",
                        format!(
                            "`{}` in kernel code: hash iteration order is nondeterministic \
                             across runs; use BTreeMap/BTreeSet or a sorted collect",
                            t.text
                        ),
                    );
                }
                if !concurrency_exempt && is_concurrency_primitive(t.text) {
                    push(
                        t.line,
                        "unfenced-concurrency",
                        format!(
                            "concurrency primitive `{}` outside the sanctioned modules \
                             (metrics registry slab, core::parallel); unfenced threads and \
                             shared state break deterministic replay",
                            t.text
                        ),
                    );
                }
                if !concurrency_exempt
                    && matches!(t.text, "spawn" | "scope")
                    && prev.is_some_and(|p| p.text == "::")
                    && i >= 2
                    && code[i - 2].text == "thread"
                {
                    push(
                        t.line,
                        "unfenced-concurrency",
                        format!("`thread::{}` outside core::parallel; route worker threads through the sanctioned pool", t.text),
                    );
                }
                if !concurrency_exempt
                    && t.text == "spawn"
                    && prev.is_some_and(|p| p.text == ".")
                    && next.is_some_and(|n| n.text == "(")
                {
                    push(
                        t.line,
                        "unfenced-concurrency",
                        "`.spawn(` outside core::parallel; route worker threads through the sanctioned pool".into(),
                    );
                }
                if is_unseeded_rng(t.text)
                    || (t.text == "random"
                        && prev.is_some_and(|p| p.text == "::")
                        && i >= 2
                        && code[i - 2].text == "rand")
                {
                    push(
                        t.line,
                        "unseeded-rng",
                        format!(
                            "`{}` constructs an RNG without an explicit seed; thread a seed \
                             from the caller so every run is reproducible",
                            t.text
                        ),
                    );
                }
            }
            TokenKind::Punct => {
                if kernel && t.text == "[" {
                    if let Some(p) = prev {
                        let base_ident = p.kind == TokenKind::Ident && !is_keyword(p.text);
                        if base_ident || matches!(p.text, ")" | "]") {
                            push(
                                t.line,
                                "slice-index",
                                format!(
                                    "bare `{}[..]` indexing in kernel code panics on a bad \
                                     index; use .get()/.get_mut() with .expect() stating the \
                                     bound invariant",
                                    p.text
                                ),
                            );
                        }
                    }
                }
                if matches!(t.text, "+" | "-" | "*" | "+=" | "-=" | "*=") {
                    let left = prev
                        .filter(|p| p.kind == TokenKind::Ident && is_counter_name(p.text))
                        .map(|p| p.text);
                    let right = left.is_none().then(|| counter_in_chain(&code, i + 1)).flatten();
                    if let Some(name) = left.or(right) {
                        push(
                            t.line,
                            "unchecked-arith",
                            format!(
                                "unchecked `{}` on counter `{name}` wraps silently in \
                                 release; use checked_*/saturating_* with the invariant \
                                 stated",
                                t.text
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

fn is_concurrency_primitive(name: &str) -> bool {
    matches!(
        name,
        "Mutex"
            | "RwLock"
            | "Condvar"
            | "Barrier"
            | "mpsc"
            | "AtomicBool"
            | "AtomicUsize"
            | "AtomicIsize"
            | "AtomicU8"
            | "AtomicU16"
            | "AtomicU32"
            | "AtomicU64"
            | "AtomicI8"
            | "AtomicI16"
            | "AtomicI32"
            | "AtomicI64"
    )
}

fn is_unseeded_rng(name: &str) -> bool {
    matches!(name, "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "ThreadRng")
}

/// Identifier names that mark a value as a task/event counter for the
/// `unchecked-arith` rule. Deliberately vocabulary-based: the kernel's
/// counters are all named this way, and the rule is cheap to allow where
/// the name collides with non-counter math.
fn is_counter_name(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n == "seq"
        || n.ends_with("_seq")
        || ["count", "seen", "emitted", "retri", "attempt", "ticks", "epoch"]
            .iter()
            .any(|w| n.contains(w))
}

/// Walk the postfix chain starting at `code[from]` (`self.a.b`...) and
/// return the first counter-named field that is not a method call.
fn counter_in_chain<'a>(code: &[&Token<'a>], from: usize) -> Option<&'a str> {
    let mut j = from;
    while j < code.len() && code[j].kind == TokenKind::Ident {
        let followed_by_call = code.get(j + 1).is_some_and(|t| t.text == "(");
        if is_counter_name(code[j].text) && !followed_by_call {
            return Some(code[j].text);
        }
        if code.get(j + 1).is_some_and(|t| t.text == ".") {
            j += 2;
        } else {
            break;
        }
    }
    None
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "let"
            | "in"
            | "if"
            | "else"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "loop"
            | "while"
            | "for"
            | "move"
            | "mut"
            | "ref"
            | "dyn"
            | "impl"
            | "as"
            | "box"
            | "where"
            | "yield"
            | "static"
            | "const"
            | "fn"
            | "type"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "mod"
            | "unsafe"
            | "async"
            | "await"
            | "try"
            | "enum"
            | "struct"
            | "trait"
            | "union"
    )
}

/// Raw filesystem writes aimed at durability artifacts. Matching is
/// per-line: a raw-write call is a violation when the same statement
/// mentions a journal/checkpoint/snapshot, which is how such code names
/// its paths and bindings in practice.
fn check_raw_journal_io(code: &str, push: &mut impl FnMut(&'static str, String)) {
    let lower = code.to_ascii_lowercase();
    if !["journal", "checkpoint", "snapshot"].iter().any(|w| lower.contains(w)) {
        return;
    }
    for needle in ["File::create(", "fs::write(", "File::options(", "OpenOptions"] {
        if code.contains(needle) {
            push(
                "raw-journal-io",
                format!(
                    "raw `{needle}` writing a journal/checkpoint artifact outside the \
                     durability modules; use FileJournal / FileCheckpointStore (framing, \
                     CRC, fsync and atomic-rename live there)"
                ),
            );
        }
    }
}

/// Scan a whole workspace: content rules over `crates/*/src/**/*.rs`, plus
/// the `forbid-unsafe` crate-root rule over `crates/*` and `shims/*`.
pub fn lint_workspace(root: &Path) -> Result<Vec<LintViolation>, String> {
    let mut violations = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
    for crate_dir in subdirs(&root.join("crates"))? {
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for f in &files {
            let text = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
            violations.extend(lint_source(&rel(f), &text));
        }
    }
    for base in ["crates", "shims"] {
        for crate_dir in subdirs(&root.join(base))? {
            let src = crate_dir.join("src");
            let mut roots: Vec<PathBuf> =
                ["lib.rs", "main.rs"].iter().map(|n| src.join(n)).filter(|p| p.is_file()).collect();
            if let Ok(entries) = std::fs::read_dir(src.join("bin")) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.extension().is_some_and(|x| x == "rs") {
                        roots.push(p);
                    }
                }
            }
            roots.sort();
            for root_file in roots {
                let text = std::fs::read_to_string(&root_file)
                    .map_err(|e| format!("{}: {e}", root_file.display()))?;
                let rel_path = rel(&root_file);
                let sf = SourceFile::parse(&rel_path, &text);
                if !sf.masked.iter().any(|l| l.contains("#![forbid(unsafe_code)]")) {
                    violations.push(LintViolation {
                        file: rel(&root_file),
                        line: 0,
                        rule: "forbid-unsafe",
                        message: "crate root missing #![forbid(unsafe_code)]".into(),
                    });
                }
            }
        }
    }
    Ok(violations)
}

fn subdirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for e in entries {
        let p = e.map_err(|e| e.to_string())?.path();
        if p.is_dir() {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Ok(()) };
    for e in entries {
        let p = e.map_err(|e| e.to_string())?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

const INT_TYPES: &[&str] =
    &["usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128"];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Is this token a float literal (e.g. `1.0`, `.5`, `2e-9`, `3.0_f64`)?
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_start_matches('-')
        .trim_end_matches("_f64")
        .trim_end_matches("_f32")
        .trim_end_matches("f64")
        .trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let has_digit = t.chars().any(|c| c.is_ascii_digit());
    let floaty = t.contains('.') || t.contains('e') || t.contains('E');
    has_digit
        && floaty
        && t.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '_' | '-' | '+'))
}

/// A zero literal (`0.0`, `-0.0`, `.0`): sign checks against exact zero are
/// the sanctioned common case for `float-ord`.
fn is_zero_literal(token: &str) -> bool {
    is_float_literal(token) && !token.chars().any(|c| ('1'..='9').contains(&c))
}

/// The token immediately left of byte offset `at` (identifier chars, dots,
/// sign via preceding context).
fn token_left(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (is_ident_char(bytes[start - 1] as char) || bytes[start - 1] == b'.') {
        start -= 1;
    }
    &code[start..end]
}

/// The token immediately right of byte offset `at`.
fn token_right(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = at;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    if start < bytes.len() && bytes[start] == b'-' {
        start += 1;
        // keep the sign out; magnitude is what matters
    }
    let mut end = start;
    while end < bytes.len() && (is_ident_char(bytes[end] as char) || bytes[end] == b'.') {
        end += 1;
    }
    &code[start..end]
}

/// The expression span left of a comparison operator at `at`: walk back to
/// an unbalanced `(`/`[` or a top-level boundary (`{ ; , = & | < >`).
fn expr_left(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut start = at;
    while start > 0 {
        let c = bytes[start - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b'{' | b';' | b',' | b'=' | b'&' | b'|' | b'<' | b'>' if depth == 0 => break,
            _ => {}
        }
        start -= 1;
    }
    &code[start..at]
}

/// The expression span right of a comparison operator: the mirror image of
/// [`expr_left`].
fn expr_right(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut end = at;
    while end < bytes.len() {
        let c = bytes[end];
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b'{' | b';' | b',' | b'=' | b'&' | b'|' | b'<' | b'>' if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    &code[at..end]
}

/// Does the expression span contain a non-zero float literal token?
fn expr_has_nonzero_float(expr: &str) -> bool {
    expr.split(|c: char| !(is_ident_char(c) || c == '.'))
        .any(|tok| is_float_literal(tok) && !is_zero_literal(tok))
}

fn check_float_comparisons(code: &str, push: &mut impl FnMut(&'static str, String)) {
    // Equality: any float literal operand.
    for op in ["==", "!="] {
        for pos in find_all(code, op) {
            // Exclude ===, <=, >=, != handled separately by their own ops.
            if pos > 0 && matches!(code.as_bytes()[pos - 1], b'=' | b'!' | b'<' | b'>') {
                continue;
            }
            let left = token_left(code, pos);
            let right = token_right(code, pos + op.len());
            if is_float_literal(left) || is_float_literal(right) {
                push(
                    "float-eq",
                    format!("float equality `{left} {op} {right}`; use time::approx_eq or state the sentinel invariant"),
                );
            }
        }
    }
    // Ordering: a non-zero float literal anywhere in either side of the
    // comparison (`a < b - 1e-9` is the canonical smell, not just
    // `a < 1e-9`). rustfmt guarantees binary comparison operators are
    // space-separated, which disambiguates them from generics, shifts and
    // arrows.
    for op in [" < ", " > ", " <= ", " >= "] {
        for pos in find_all(code, op) {
            let left = expr_left(code, pos);
            let right = expr_right(code, pos + op.len());
            if expr_has_nonzero_float(left) || expr_has_nonzero_float(right) {
                push(
                    "float-ord",
                    format!(
                        "raw float comparison `{}{op}{}`; use time::strictly_less / approx_le",
                        left.trim(),
                        right.trim(),
                    ),
                );
            }
        }
    }
}

/// Mutating `Vec` methods that count as rewriting a `Schedule` when called
/// on a `.runs` / `.aborted` field. Reads (`len`, `iter`, indexing) pass.
const SCHEDULE_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "clear",
    "retain",
    "truncate",
    "extend",
    "insert",
    "remove",
    "swap_remove",
    "append",
    "drain",
    "iter_mut",
];

fn check_schedule_mutations(code: &str, push: &mut impl FnMut(&'static str, String)) {
    for field in [".runs.", ".aborted."] {
        for pos in find_all(code, field) {
            let method = token_right(code, pos + field.len());
            if SCHEDULE_MUTATORS.contains(&method) || method.starts_with("sort") {
                let owner = token_left(code, pos);
                push(
                    "schedule-mut",
                    format!(
                        "`{owner}{field}{method}()` mutates a Schedule outside crates/core; \
                         route the change through the kernel or allow-list the invariant"
                    ),
                );
            }
        }
    }
}

fn check_int_casts(code: &str, push: &mut impl FnMut(&'static str, String)) {
    for pos in find_all(code, " as ") {
        let target = token_right(code, pos + 4);
        if !INT_TYPES.contains(&target) {
            continue;
        }
        let operand = cast_operand(code, pos);
        let suspicious = operand.contains('*')
            || operand.contains('/')
            || operand.contains("f64")
            || operand.contains("f32")
            || operand.contains(".ceil(")
            || operand.contains(".floor(")
            || operand.contains(".round(")
            || operand.split(|c: char| !(is_ident_char(c) || c == '.')).any(is_float_literal);
        if suspicious {
            push(
                "cast-trunc",
                format!("truncating cast of scheduling math `{} as {target}`", operand.trim()),
            );
        }
    }
}

/// The full expression being cast: a trailing method chain of identifiers,
/// dots and balanced parenthesis groups.
fn cast_operand(code: &str, cast_at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = cast_at;
    loop {
        if i > 0 && bytes[i - 1] == b')' {
            let mut depth = 0usize;
            let mut j = i;
            while j > 0 {
                j -= 1;
                match bytes[j] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i = j;
        } else if i > 0 && (is_ident_char(bytes[i - 1] as char) || bytes[i - 1] == b'.') {
            while i > 0 && (is_ident_char(bytes[i - 1] as char) || bytes[i - 1] == b'.') {
                i -= 1;
            }
        } else {
            break;
        }
    }
    &code[i..cast_at]
}

fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, text: &str) -> Vec<&'static str> {
        lint_source(path, text).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_float_equality_and_ordering() {
        assert_eq!(rules_of("x.rs", "if a == 1.0 {}"), vec!["float-eq"]);
        assert_eq!(rules_of("x.rs", "if a != 0.0 {}"), vec!["float-eq"]);
        assert_eq!(rules_of("x.rs", "if a < 1e-9 {}"), vec!["float-ord"]);
        assert_eq!(rules_of("x.rs", "if 2.5 >= b {}"), vec!["float-ord"]);
        // Sign checks against exact zero are fine.
        assert!(rules_of("x.rs", "if a > 0.0 {}").is_empty());
        // Integer comparisons are fine.
        assert!(rules_of("x.rs", "if a == 1 {}").is_empty());
        assert!(rules_of("x.rs", "if n < 10 {}").is_empty());
    }

    #[test]
    fn time_rs_is_exempt_from_float_rules() {
        assert!(rules_of("crates/core/src/time.rs", "a < b - 1e-9 && a.partial_cmp(&b)").is_empty());
        assert_eq!(rules_of("crates/core/src/other.rs", "x.partial_cmp(&y)"), vec!["partial-cmp"]);
    }

    #[test]
    fn flags_unwrap_but_not_expect() {
        assert_eq!(rules_of("x.rs", "foo().unwrap();"), vec!["unwrap"]);
        assert!(rules_of("x.rs", "foo().expect(\"invariant\");").is_empty());
    }

    #[test]
    fn flags_truncating_casts_only_for_float_math() {
        assert_eq!(rules_of("x.rs", "let s = (r.start * scale) as usize;"), vec!["cast-trunc"]);
        assert_eq!(rules_of("x.rs", "let e = (x * k).ceil() as usize;"), vec!["cast-trunc"]);
        assert!(rules_of("x.rs", "let w = (a + 1) as u32;").is_empty());
        assert!(rules_of("x.rs", "let k = idx as u64;").is_empty());
        assert!(rules_of("x.rs", "let f = n as f64;").is_empty());
        assert!(rules_of("x.rs", "let b = (kind == Kind::Fast) as u8;").is_empty());
    }

    #[test]
    fn allow_directive_suppresses_and_requires_reason() {
        let ok = "// lint: allow(float-eq): exact sentinel, never computed.\nif a == 1.0 {}\n";
        assert!(rules_of("x.rs", ok).is_empty());
        let inline = "if a == 1.0 {} // lint: allow(float-eq): exact sentinel.\n";
        assert!(rules_of("x.rs", inline).is_empty());
        let no_reason = "// lint: allow(float-eq)\nif a == 1.0 {}\n";
        let got = rules_of("x.rs", no_reason);
        assert!(got.contains(&"allow-directive"), "{got:?}");
        let unknown = "// lint: allow(made-up): why\nif a == 1.0 {}\n";
        assert!(rules_of("x.rs", unknown).contains(&"allow-directive"));
        // A directive covers the next code line even across comment lines.
        let stacked =
            "// lint: allow(float-eq): sentinel, with a long\n// continuation comment.\nif a == 1.0 {}\n";
        assert!(rules_of("x.rs", stacked).is_empty());
    }

    #[test]
    fn test_regions_and_comments_and_strings_are_exempt() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); assert!(a == 1.0); }\n}\nfn after() { y.unwrap(); }\n";
        let got = lint_source("x.rs", text);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 6);
        assert!(rules_of("x.rs", "// a == 1.0 in a comment\n").is_empty());
        assert!(rules_of("x.rs", "let s = \"a == 1.0\";\n").is_empty());
        assert!(rules_of("x.rs", "let s = r#\"a == 1.0\"#;\n").is_empty());
        // Char literals with braces must not derail test-region tracking.
        let tricky = "#[cfg(test)]\nmod tests {\n    fn t() { out.push('\\u{8}'); x.unwrap(); }\n}\nfn after() { z.unwrap(); }\n";
        let got = lint_source("x.rs", tricky);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 5);
    }

    #[test]
    fn schedule_mut_rule_fires_outside_core_only() {
        let mutation = "fn f(s: &mut Schedule) { s.runs.push(r); }\n";
        assert_eq!(rules_of("crates/simulator/src/x.rs", mutation), vec!["schedule-mut"]);
        assert_eq!(
            rules_of("crates/runtime/src/lib.rs", "sched.aborted.clear();"),
            vec!["schedule-mut"]
        );
        // crates/core owns Schedule construction and is exempt.
        assert!(rules_of("crates/core/src/kernel.rs", mutation).is_empty());
        // Reads are fine anywhere.
        assert!(rules_of("crates/audit/src/auditor.rs", "let n = s.runs.len();").is_empty());
        assert!(rules_of("crates/audit/src/auditor.rs", "for r in &s.aborted {}").is_empty());
        // The escape hatch works and demands a reason.
        let allowed =
            "// lint: allow(schedule-mut): rebuilding a schedule from a trace.\ns.runs.push(r);\n";
        assert!(rules_of("crates/audit/src/auditor.rs", allowed).is_empty());
    }

    #[test]
    fn instant_now_rule_fences_the_clock_into_metrics() {
        let read = "let t0 = Instant::now();\n";
        assert_eq!(rules_of("crates/experiments/src/bin/complexity.rs", read), vec!["instant-now"]);
        assert_eq!(
            rules_of("crates/cli/src/commands.rs", "let w = SystemTime::now();"),
            vec!["instant-now"]
        );
        // The metrics crate is the sanctioned clock room.
        assert!(rules_of("crates/metrics/src/timer.rs", read).is_empty());
        // Mentions in comments and strings do not count.
        assert!(rules_of("crates/cli/src/main.rs", "// Instant::now() is banned\n").is_empty());
        // The escape hatch works with a reason.
        let allowed = "// lint: allow(instant-now): one-off cold-start stamp, not scheduling.\nlet t = Instant::now();\n";
        assert!(rules_of("crates/cli/src/main.rs", allowed).is_empty());
    }

    #[test]
    fn raw_journal_io_rule_fences_writes_into_the_durability_modules() {
        let write = "let f = File::create(journal_path)?;\n";
        assert_eq!(rules_of("crates/cli/src/commands.rs", write), vec!["raw-journal-io"]);
        assert_eq!(
            rules_of("crates/experiments/src/sweep.rs", "fs::write(&snapshot_file, bytes)?;"),
            vec!["raw-journal-io"]
        );
        // The two durability modules own these writes and are exempt.
        assert!(rules_of("crates/trace/src/journal.rs", write).is_empty());
        assert!(rules_of(
            "crates/core/src/durability.rs",
            "let f = File::create(&tmp_checkpoint)?;"
        )
        .is_empty());
        // Raw writes of non-durability artifacts are not this rule's business.
        assert!(rules_of("crates/cli/src/main.rs", "fs::write(path, svg)?;").is_empty());
        // `FileJournal::create(...)` is the sanctioned API, not a raw `File::create`.
        assert!(rules_of("crates/cli/src/commands.rs", "FileJournal::create(path)?;").is_empty());
        // Mentions in comments and strings do not count.
        assert!(rules_of(
            "crates/cli/src/commands.rs",
            "// File::create(journal) is banned here\n"
        )
        .is_empty());
    }

    #[test]
    fn map_iter_order_fires_in_kernel_crates_only() {
        let use_map = "use std::collections::HashMap;\n";
        assert_eq!(rules_of("crates/core/src/kernel.rs", use_map), vec!["map-iter-order"]);
        assert_eq!(
            rules_of("crates/schedulers/src/dualhp.rs", "let s: HashSet<u32> = HashSet::new();\n")
                .len(),
            2,
            "one violation per hash-collection token"
        );
        // Non-kernel crates may use hash collections (no replay there).
        assert!(rules_of("crates/cli/src/commands.rs", use_map).is_empty());
        // BTree collections are the sanctioned alternative.
        assert!(
            rules_of("crates/core/src/kernel.rs", "use std::collections::BTreeMap;\n").is_empty()
        );
        // Mentions in comments/strings do not count.
        assert!(rules_of("crates/core/src/kernel.rs", "// HashMap is banned here\n").is_empty());
    }

    #[test]
    fn unfenced_concurrency_fences_primitives_into_sanctioned_modules() {
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "let m = Mutex::new(0);\n"),
            vec!["unfenced-concurrency"]
        );
        assert_eq!(
            rules_of("crates/experiments/src/sweep.rs", "thread::spawn(|| {});\n"),
            vec!["unfenced-concurrency"]
        );
        assert_eq!(
            rules_of("crates/trace/src/sink.rs", "let (tx, rx) = mpsc::channel();\n"),
            vec!["unfenced-concurrency"]
        );
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "s.spawn(move || work());\n"),
            vec!["unfenced-concurrency"]
        );
        // The sanctioned modules are exempt.
        assert!(rules_of("crates/metrics/src/registry.rs", "AtomicU64::new(0);\n").is_empty());
        assert!(rules_of("crates/core/src/parallel.rs", "thread::scope(|s| {});\n").is_empty());
        // `scope` and `spawn` as ordinary identifiers are fine.
        assert!(rules_of("crates/core/src/kernel.rs", "let scope = audit_scope();\n").is_empty());
    }

    #[test]
    fn unseeded_rng_requires_explicit_seeds() {
        assert_eq!(
            rules_of("crates/workloads/src/random.rs", "let mut rng = rand::thread_rng();\n"),
            vec!["unseeded-rng"]
        );
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "let rng = StdRng::from_entropy();\n"),
            vec!["unseeded-rng"]
        );
        assert_eq!(
            rules_of("crates/taskgraph/src/generators.rs", "let x: f64 = rand::random();\n"),
            vec!["unseeded-rng"]
        );
        // Seeded construction is the sanctioned path.
        assert!(rules_of(
            "crates/workloads/src/random.rs",
            "let mut rng = StdRng::seed_from_u64(seed);\n"
        )
        .is_empty());
        // `random_range` on an already-seeded generator is fine.
        assert!(rules_of("crates/workloads/src/random.rs", "rng.random_range(0..n);\n").is_empty());
    }

    #[test]
    fn slice_index_fires_on_postfix_indexing_in_kernel_crates() {
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "let x = tasks[i];\n"),
            vec!["slice-index"]
        );
        assert_eq!(
            rules_of("crates/simulator/src/engine.rs", "let (s, d) = faults[i];\n"),
            vec!["slice-index"]
        );
        assert_eq!(
            rules_of("crates/core/src/queue.rs", "self.buckets[b].pop_front();\n"),
            vec!["slice-index"]
        );
        // Chained and sliced forms count too.
        assert_eq!(rules_of("crates/runtime/src/apps.rs", "a[i][j]\n").len(), 2);
        assert_eq!(rules_of("crates/core/src/schedule.rs", "&mut row[s..e]\n").len(), 1);
        // .get()/.get_mut() are the sanctioned accessors.
        assert!(rules_of("crates/core/src/kernel.rs", "tasks.get(i).expect(\"in range\");\n")
            .is_empty());
        // Array types, slice patterns, attributes and macros are not indexing.
        assert!(rules_of("crates/core/src/kernel.rs", "let a: [u64; 4] = make();\n").is_empty());
        assert!(rules_of("crates/core/src/kernel.rs", "let [a, b] = pair;\n").is_empty());
        assert!(rules_of("crates/core/src/kernel.rs", "#[derive(Clone)]\nstruct X;\n").is_empty());
        assert!(rules_of("crates/core/src/kernel.rs", "let v = vec![1, 2];\n").is_empty());
        // Outside the kernel crates, indexing is tooling's business.
        assert!(rules_of("crates/cli/src/format.rs", "let x = cols[i];\n").is_empty());
    }

    #[test]
    fn unchecked_arith_guards_counter_vocabulary() {
        assert_eq!(
            rules_of("crates/trace/src/summary.rs", "self.spoliation_count += 1;\n"),
            vec!["unchecked-arith"]
        );
        assert_eq!(
            rules_of("crates/core/src/queue.rs", "self.seq += 1;\n"),
            vec!["unchecked-arith"]
        );
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "let d = done - self.seen_syncs;\n"),
            vec!["unchecked-arith"]
        );
        // The right-hand side is scanned through field chains.
        assert_eq!(
            rules_of("crates/metrics/src/snapshot.rs", "let r = q * self.count;\n"),
            vec!["unchecked-arith"]
        );
        // checked_*/saturating_* are the sanctioned forms.
        assert!(rules_of(
            "crates/core/src/kernel.rs",
            "self.emitted = self.emitted.checked_add(1).expect(\"u64 event counter\");\n"
        )
        .is_empty());
        // Method calls named like counters are not counter reads.
        assert!(
            rules_of("crates/core/src/schedule.rs", "horizon * platform.count(kind)\n").is_empty()
        );
        // Ordinary arithmetic is untouched.
        assert!(rules_of("crates/core/src/kernel.rs", "let t = start + dur;\n").is_empty());
    }

    #[test]
    fn hardcoded_class_fences_the_dichotomy_into_compat() {
        assert_eq!(
            rules_of("crates/cli/src/commands.rs", "let k = ResourceKind::Cpu;\n"),
            vec!["hardcoded-class"]
        );
        assert_eq!(
            rules_of("crates/core/src/kernel.rs", "if kind == ResourceKind::Gpu { return; }\n"),
            vec!["hardcoded-class"]
        );
        // compat.rs is the one module allowed to spell the dichotomy.
        assert!(rules_of(
            "crates/core/src/model/compat.rs",
            "pub enum ResourceKind { Cpu, Gpu }\n"
        )
        .is_empty());
        // Lower-case identifiers (variables, class *names*) are not variants.
        assert!(rules_of("crates/cli/src/commands.rs", "let cpu = table.count(c);\n").is_empty());
        // Mentions in comments and strings do not count.
        assert!(rules_of("crates/cli/src/main.rs", "// ResourceKind::Cpu is banned\n").is_empty());
        assert!(rules_of("crates/cli/src/main.rs", "let s = \"Cpu\";\n").is_empty());
        // The escape hatch works with a reason.
        let allowed = "// lint: allow(hardcoded-class): frozen k=2 seed reference, pinned by kernel_parity.\nlet k = ResourceKind::Gpu;\n";
        assert!(rules_of("crates/bench/src/seed_reference.rs", allowed).is_empty());
    }

    #[test]
    fn seeded_violation_is_caught() {
        // The acceptance-criteria scenario: a tolerance-free float
        // comparison seeded into scheduler-like code must fail the gate.
        let seeded = "fn pick(a: f64, b: f64) -> bool { a < b - 1e-9 }\n";
        let got = lint_source("crates/core/src/heteroprio.rs", seeded);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "float-ord");
        assert!(got[0].to_string().contains("heteroprio.rs:1"));
    }
}
