//! Report rendering: compiler-style text, a JSON document for tooling,
//! and SARIF 2.1.0 for code-scanning UIs. All three are views over the
//! same [`LintReport`].

use crate::json::Value;
use crate::rules::RULES;
use crate::LintViolation;

/// The outcome of a lint run after the baseline is applied.
#[derive(Default)]
pub struct LintReport {
    /// Violations not covered by the baseline — these fail the gate.
    pub new: Vec<LintViolation>,
    /// Violations matched by a baseline entry, with its burn-down note.
    pub baselined: Vec<(LintViolation, String)>,
    /// Baseline entries allowing more than was found — these fail the
    /// gate too (the baseline must shrink as sites are fixed).
    pub stale: Vec<String>,
}

impl LintReport {
    /// Number of findings that fail the gate.
    pub fn gate_failures(&self) -> usize {
        self.new.len().saturating_add(self.stale.len())
    }

    /// The one-line summary used by the binary and the CI step summary.
    pub fn summary_line(&self) -> String {
        if self.gate_failures() == 0 {
            format!("audit-lint: clean ({} baselined)", self.baselined.len())
        } else {
            format!(
                "audit-lint: {} new violation(s), {} stale baseline entr{}",
                self.new.len(),
                self.stale.len(),
                if self.stale.len() == 1 { "y" } else { "ies" }
            )
        }
    }

    /// Compiler-style text: one `file:line: [rule] message` per finding.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for v in &self.new {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for s in &self.stale {
            out.push_str(s);
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The JSON report: full registry, findings by bucket, and tallies.
    pub fn json(&self) -> String {
        let violation = |v: &LintViolation| {
            Value::Obj(vec![
                ("file".into(), Value::Str(v.file.clone())),
                ("line".into(), Value::Num(v.line as i64)),
                ("rule".into(), Value::Str(v.rule.into())),
                ("message".into(), Value::Str(v.message.clone())),
            ])
        };
        let rules = RULES
            .iter()
            .map(|m| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(m.name.into())),
                    ("family".into(), Value::Str(m.family.as_str().into())),
                    ("summary".into(), Value::Str(m.summary.into())),
                    ("protects".into(), Value::Str(m.protects.into())),
                ])
            })
            .collect();
        let baselined = self
            .baselined
            .iter()
            .map(|(v, note)| {
                let Value::Obj(mut pairs) = violation(v) else { unreachable!() };
                pairs.push(("note".into(), Value::Str(note.clone())));
                Value::Obj(pairs)
            })
            .collect();
        Value::Obj(vec![
            ("tool".into(), Value::Str("audit-lint".into())),
            ("rules".into(), Value::Arr(rules)),
            ("new".into(), Value::Arr(self.new.iter().map(violation).collect())),
            ("baselined".into(), Value::Arr(baselined)),
            (
                "stale".into(),
                Value::Arr(self.stale.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            (
                "summary".into(),
                Value::Obj(vec![
                    ("new".into(), Value::Num(self.new.len() as i64)),
                    ("baselined".into(), Value::Num(self.baselined.len() as i64)),
                    ("stale".into(), Value::Num(self.stale.len() as i64)),
                ]),
            ),
        ])
        .pretty()
    }

    /// SARIF 2.1.0: one run, the full rule table on the driver, new
    /// findings as `error` results and baselined ones as suppressed
    /// `note` results carrying the burn-down note as justification.
    pub fn sarif(&self) -> String {
        let result = |v: &LintViolation, level: &str, note: Option<&str>| {
            let mut pairs = vec![
                ("ruleId".into(), Value::Str(v.rule.into())),
                ("level".into(), Value::Str(level.into())),
                (
                    "message".into(),
                    Value::Obj(vec![("text".into(), Value::Str(v.message.clone()))]),
                ),
                (
                    "locations".into(),
                    Value::Arr(vec![Value::Obj(vec![(
                        "physicalLocation".into(),
                        Value::Obj(vec![
                            (
                                "artifactLocation".into(),
                                Value::Obj(vec![("uri".into(), Value::Str(v.file.clone()))]),
                            ),
                            (
                                "region".into(),
                                Value::Obj(vec![(
                                    "startLine".into(),
                                    Value::Num(v.line.max(1) as i64),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ];
            if let Some(note) = note {
                pairs.push((
                    "suppressions".into(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("kind".into(), Value::Str("external".into())),
                        ("justification".into(), Value::Str(note.into())),
                    ])]),
                ));
            }
            Value::Obj(pairs)
        };
        let rules = RULES
            .iter()
            .map(|m| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(m.name.into())),
                    (
                        "shortDescription".into(),
                        Value::Obj(vec![("text".into(), Value::Str(m.summary.into()))]),
                    ),
                    (
                        "properties".into(),
                        Value::Obj(vec![
                            ("family".into(), Value::Str(m.family.as_str().into())),
                            ("protects".into(), Value::Str(m.protects.into())),
                        ]),
                    ),
                ])
            })
            .collect();
        let mut results: Vec<Value> = self.new.iter().map(|v| result(v, "error", None)).collect();
        results.extend(self.baselined.iter().map(|(v, note)| result(v, "note", Some(note))));
        let driver = Value::Obj(vec![
            ("name".into(), Value::Str("audit-lint".into())),
            (
                "informationUri".into(),
                Value::Str("https://github.com/heteroprio/heteroprio".into()),
            ),
            ("rules".into(), Value::Arr(rules)),
        ]);
        Value::Obj(vec![
            (
                "$schema".into(),
                Value::Str(
                    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                        .into(),
                ),
            ),
            ("version".into(), Value::Str("2.1.0".into())),
            (
                "runs".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("tool".into(), Value::Obj(vec![("driver".into(), driver)])),
                    ("results".into(), Value::Arr(results)),
                ])]),
            ),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> LintReport {
        LintReport {
            new: vec![LintViolation {
                file: "crates/core/src/kernel.rs".into(),
                line: 7,
                rule: "slice-index",
                message: "bare indexing".into(),
            }],
            baselined: vec![(
                LintViolation {
                    file: "crates/core/src/queue.rs".into(),
                    line: 3,
                    rule: "slice-index",
                    message: "bare indexing".into(),
                },
                "burn down with .get()".into(),
            )],
            stale: vec!["stale baseline entry: x".into()],
        }
    }

    #[test]
    fn text_report_keeps_the_compiler_style_lines() {
        let text = sample().text();
        assert!(text.contains("crates/core/src/kernel.rs:7: [slice-index] bare indexing"));
        assert!(text.contains("stale baseline entry"));
        assert!(text.contains("1 new violation(s), 1 stale baseline entry"));
    }

    #[test]
    fn json_report_parses_and_tallies() {
        let doc = json::parse(&sample().json()).expect("valid json");
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("new").and_then(Value::as_i64), Some(1));
        assert_eq!(summary.get("baselined").and_then(Value::as_i64), Some(1));
        assert_eq!(summary.get("stale").and_then(Value::as_i64), Some(1));
        let rules = doc.get("rules").and_then(Value::as_arr).expect("rules");
        assert_eq!(rules.len(), RULES.len());
    }

    #[test]
    fn sarif_report_has_the_2_1_0_shape() {
        let doc = json::parse(&sample().sarif()).expect("valid json");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").and_then(Value::as_arr).expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("level").and_then(Value::as_str), Some("error"));
        assert!(results[0].get("suppressions").is_none());
        assert_eq!(results[1].get("level").and_then(Value::as_str), Some("note"));
        assert!(results[1].get("suppressions").is_some());
    }
}
