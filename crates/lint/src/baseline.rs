//! The committed-baseline gate: `lint-baseline.json` at the workspace root
//! grandfathers known violations so new rules can land strict.
//!
//! The gate is strict in both directions. Each entry pins an exact
//! violation tally for one `(file, rule)` pair, with a mandatory note
//! stating the burn-down plan. More violations than the entry allows →
//! the overflow is reported as new. Fewer → the entry is *stale* and the
//! gate fails too, forcing the baseline to shrink as sites are fixed: a
//! baseline can only ever burn down, never silently rot.

use crate::json::{self, Value};
use crate::report::LintReport;
use crate::LintViolation;
use std::path::Path;

/// One grandfathered `(file, rule)` pair.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    pub file: String,
    pub rule: String,
    /// Exact number of violations this entry covers.
    pub allowed: usize,
    /// The burn-down note: why these exist and what retires them.
    pub note: String,
}

/// Load a baseline file. A missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parse the baseline document: `{"entries": [{file, rule, allowed, note}]}`.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = json::parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("baseline must be an object with an \"entries\" array")?;
    let mut out = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("entry {i}: missing string field {k:?}"))
        };
        let file = field("file")?;
        let rule = field("rule")?;
        let note = field("note")?;
        let allowed = e
            .get("allowed")
            .and_then(Value::as_i64)
            .filter(|n| *n > 0)
            .ok_or(format!("entry {i}: \"allowed\" must be a positive integer"))?
            as usize;
        if crate::rules::rule_meta(&rule).is_none() {
            return Err(format!("entry {i}: unknown rule {rule:?}"));
        }
        if note.trim().is_empty() {
            return Err(format!("entry {i}: empty burn-down note"));
        }
        out.push(BaselineEntry { file, rule, allowed, note });
    }
    Ok(out)
}

/// Split raw violations into the report buckets by matching them against
/// the baseline. Matching is per `(file, rule)`: the first `allowed`
/// violations are baselined, any overflow is new, and an entry that finds
/// fewer violations than it allows is stale.
pub fn apply(violations: Vec<LintViolation>, baseline: &[BaselineEntry]) -> LintReport {
    let mut report = LintReport::default();
    let mut matched: Vec<Vec<LintViolation>> = vec![Vec::new(); baseline.len()];
    for v in violations {
        let slot = baseline
            .iter()
            .position(|e| e.file == v.file && e.rule == v.rule)
            .filter(|&i| matched[i].len() < baseline[i].allowed);
        match slot {
            Some(i) => matched[i].push(v),
            None => report.new.push(v),
        }
    }
    for (entry, vs) in baseline.iter().zip(matched) {
        if vs.len() < entry.allowed {
            report.stale.push(format!(
                "stale baseline entry: {}: [{}] allows {} but found {} — shrink lint-baseline.json \
                 (note: {})",
                entry.file,
                entry.rule,
                entry.allowed,
                vs.len(),
                entry.note
            ));
        }
        for v in vs {
            report.baselined.push((v, entry.note.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, rule: &'static str) -> LintViolation {
        LintViolation { file: file.into(), line, rule, message: "m".into() }
    }

    fn entry(file: &str, rule: &str, allowed: usize) -> BaselineEntry {
        BaselineEntry {
            file: file.into(),
            rule: rule.into(),
            allowed,
            note: "burn down with .get()".into(),
        }
    }

    #[test]
    fn parses_and_validates_entries() {
        let text = r#"{"entries": [
            {"file": "crates/core/src/x.rs", "rule": "slice-index", "allowed": 2,
             "note": "burn down with .get()"}
        ]}"#;
        let got = parse(text).expect("valid baseline");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].allowed, 2);
        assert!(parse(
            r#"{"entries": [{"file": "f", "rule": "nope", "allowed": 1, "note": "n"}]}"#
        )
        .is_err());
        assert!(parse(
            r#"{"entries": [{"file": "f", "rule": "unwrap", "allowed": 0, "note": "n"}]}"#
        )
        .is_err());
        assert!(parse(
            r#"{"entries": [{"file": "f", "rule": "unwrap", "allowed": 1, "note": " "}]}"#
        )
        .is_err());
    }

    #[test]
    fn apply_is_strict_in_both_directions() {
        let baseline = vec![entry("a.rs", "slice-index", 2)];
        // Exact match: everything baselined, nothing new or stale.
        let r = apply(vec![v("a.rs", 1, "slice-index"), v("a.rs", 5, "slice-index")], &baseline);
        assert!(r.new.is_empty() && r.stale.is_empty());
        assert_eq!(r.baselined.len(), 2);
        // Overflow: the third violation is new.
        let r = apply(
            vec![
                v("a.rs", 1, "slice-index"),
                v("a.rs", 5, "slice-index"),
                v("a.rs", 9, "slice-index"),
            ],
            &baseline,
        );
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].line, 9);
        // Under-count: the entry is stale and the gate fails.
        let r = apply(vec![v("a.rs", 1, "slice-index")], &baseline);
        assert_eq!(r.stale.len(), 1);
        assert!(r.stale[0].contains("allows 2 but found 1"));
        // Other files/rules never match the entry.
        let r = apply(vec![v("b.rs", 1, "slice-index"), v("a.rs", 1, "unwrap")], &baseline);
        assert_eq!(r.new.len(), 2);
    }
}
