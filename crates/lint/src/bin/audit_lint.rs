//! The lint gate binary: `cargo run -q -p heteroprio-lint --bin audit-lint`.
//!
//! Scans the workspace with the token-aware rules in `heteroprio_lint`,
//! applies the committed `lint-baseline.json`, and exits nonzero when any
//! new violation or stale baseline entry is found, so `scripts/check.sh`
//! and CI can gate on it. `--format json|sarif` and `--report-dir` produce
//! the machine-readable reports CI uploads as artifacts; when the
//! `GITHUB_STEP_SUMMARY` environment variable is set, a one-line verdict
//! is appended there for the job summary.

#![forbid(unsafe_code)]

use heteroprio_lint::{baseline, help_text, lint_workspace, LintReport, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<String>,
    format: Format,
    out: Option<PathBuf>,
    report_dir: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn workspace_root(arg: Option<String>) -> PathBuf {
    if let Some(a) = arg {
        return PathBuf::from(a);
    }
    // Walk up from the current directory to the first dir holding a
    // `crates/` folder (works from the root or from inside a crate).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        out: None,
        report_dir: None,
        baseline_path: None,
        use_baseline: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--rules" => {
                for m in RULES {
                    println!("{:>22}  [{}] {}", m.name, m.family.as_str(), m.summary);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                print!("{}", help_text());
                return Ok(None);
            }
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--report-dir" => opts.report_dir = Some(PathBuf::from(value("--report-dir")?)),
            "--baseline" => opts.baseline_path = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => opts.use_baseline = false,
            other if !other.starts_with('-') && opts.root.is_none() => {
                opts.root = Some(arg);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(Some(opts))
}

fn run(opts: Options) -> Result<LintReport, String> {
    let root = workspace_root(opts.root.clone());
    let violations = lint_workspace(&root)?;
    let entries = if opts.use_baseline {
        let path = opts.baseline_path.clone().unwrap_or_else(|| root.join("lint-baseline.json"));
        baseline::load(&path)?
    } else {
        Vec::new()
    };
    let report = baseline::apply(violations, &entries);
    if let Some(dir) = &opts.report_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let write = |name: &str, body: String| {
            let path = dir.join(name);
            std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))
        };
        write("lint-report.json", report.json())?;
        write("lint-report.sarif", report.sarif())?;
    }
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let line = format!("`{}`\n", report.summary_line());
        let existing = std::fs::read_to_string(&summary_path).unwrap_or_default();
        std::fs::write(&summary_path, existing + &line)
            .map_err(|e| format!("{summary_path}: {e}"))?;
    }
    let body = match opts.format {
        Format::Text => report.text(),
        Format::Json => report.json(),
        Format::Sarif => report.sarif(),
    };
    match &opts.out {
        Some(path) => std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?,
        None if opts.format == Format::Text => {
            if report.gate_failures() == 0 {
                println!("{} ({})", report.summary_line(), root.display());
            } else {
                eprint!("{body}");
            }
        }
        None => print!("{body}"),
    }
    Ok(report)
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(opts)) => match run(opts) {
            Ok(report) if report.gate_failures() == 0 => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("audit-lint: error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("audit-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
