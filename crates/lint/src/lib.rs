//! Token-aware static analysis for the HeteroPrio workspace.
//!
//! This crate is the workspace's determinism and panic-freedom gate. It
//! replaces the regex-era scanner that lived in `crates/audit`: sources
//! are now lexed by a real (hand-rolled, dependency-free) Rust tokenizer
//! ([`token`]), so string literals, comments and `#[cfg(test)]` item
//! scopes are recognized structurally instead of by line heuristics.
//!
//! The pipeline per file:
//!
//! 1. [`token::tokenize`] lexes the source (infallible — broken input
//!    degrades to oversized tokens, never a panic).
//! 2. [`source::SourceFile`] builds the masked code-only line view, the
//!    `#[cfg(test)]` scope map, and the `lint: allow(rule): reason`
//!    directive table.
//! 3. [`rules::lint_source`] applies the rule registry ([`rules::RULES`])
//!    — see the `rules` module docs for the full rule list.
//! 4. [`baseline::apply`] matches violations against the committed
//!    `lint-baseline.json` (strict in both directions) and
//!    [`report::LintReport`] renders text, JSON, or SARIF 2.1.0.
//!
//! The `audit-lint` binary (kept under its historical name for CI
//! compatibility) drives the whole pipeline; `crates/audit` re-exports
//! this crate as `heteroprio_audit::lint` so existing imports keep
//! working.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod json;
pub mod report;
pub mod rules;
pub mod source;
pub mod token;

pub use report::LintReport;
pub use rules::{lint_source, lint_workspace, rule_meta, Family, RuleMeta, RULES};

use std::fmt;

/// One lint finding: where, which rule, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    pub file: String,
    /// 1-based line; 0 for whole-file findings (`forbid-unsafe`).
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The `--help` text for the `audit-lint` binary. Lives here so the
/// self-consistency test can pin it against [`RULES`] and the module docs.
pub fn help_text() -> String {
    let mut out = String::from(
        "audit-lint: token-aware static analysis for the HeteroPrio workspace\n\
         \n\
         usage: audit-lint [WORKSPACE_ROOT] [options]\n\
         \n\
         options:\n\
         \x20 --rules              list the rule registry and exit\n\
         \x20 --format FORMAT      report format: text (default), json, sarif\n\
         \x20 --out FILE           write the report to FILE instead of stdout/stderr\n\
         \x20 --report-dir DIR     also write lint-report.json and lint-report.sarif to DIR\n\
         \x20 --baseline FILE      baseline file (default: WORKSPACE_ROOT/lint-baseline.json)\n\
         \x20 --no-baseline        ignore the baseline; report every violation as new\n\
         \x20 --help, -h           show this help\n\
         \n\
         Violations are suppressed per line with `lint: allow(rule): reason` in a\n\
         plain comment (the reason is mandatory), or grandfathered via the\n\
         committed lint-baseline.json, which must shrink as sites are fixed.\n\
         \n\
         rules:\n",
    );
    for m in RULES {
        out.push_str(&format!("  {:<22} [{}] {}\n", m.name, m.family.as_str(), m.summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_matches_the_historical_format() {
        let v = LintViolation {
            file: "crates/core/src/kernel.rs".into(),
            line: 12,
            rule: "unwrap",
            message: "bare unwrap".into(),
        };
        assert_eq!(v.to_string(), "crates/core/src/kernel.rs:12: [unwrap] bare unwrap");
    }

    #[test]
    fn help_text_lists_every_rule() {
        let help = help_text();
        for m in RULES {
            assert!(help.contains(m.name), "help text missing rule {}", m.name);
        }
    }
}
