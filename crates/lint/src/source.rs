//! The per-file analysis model built on the tokenizer: the masked
//! (code-only) line view, the `#[cfg(test)]` scope map, and the
//! `lint: allow(rule): reason` directive table.

use crate::token::{masked_lines, tokenize, Token, TokenKind};
use crate::LintViolation;

/// Everything the rules need to know about one source file.
pub struct SourceFile<'a> {
    pub path: &'a str,
    pub tokens: Vec<Token<'a>>,
    /// One entry per line, with non-code tokens blanked to spaces.
    pub masked: Vec<String>,
    /// `is_test[i]` — is 0-based line `i` inside a `#[cfg(test)]` item?
    pub is_test: Vec<bool>,
    /// Resolved allow directives: (0-based target line, rule names).
    allows: Vec<(usize, Vec<String>)>,
    /// Malformed directives found while parsing (rule `allow-directive`).
    pub directive_violations: Vec<LintViolation>,
}

impl<'a> SourceFile<'a> {
    pub fn parse(path: &'a str, text: &'a str) -> Self {
        let tokens = tokenize(text);
        let masked = masked_lines(text, &tokens);
        let is_test = test_lines(&tokens, masked.len());
        let mut sf = SourceFile {
            path,
            tokens,
            masked,
            is_test,
            allows: Vec::new(),
            directive_violations: Vec::new(),
        };
        sf.collect_directives();
        sf
    }

    /// Is `rule` allowed on 0-based line `line0` by a directive?
    pub fn allowed(&self, line0: usize, rule: &str) -> bool {
        self.allows.iter().any(|(t, rules)| *t == line0 && rules.iter().any(|r| r == rule))
    }

    /// Is 0-based line `line0` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, line0: usize) -> bool {
        self.is_test.get(line0).copied().unwrap_or(false)
    }

    /// Tokens that are code (skipping comments), for adjacency scans.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token<'a>> {
        self.tokens.iter().filter(|t| !t.is_comment())
    }

    /// Walk the plain comments and turn leading `lint: allow(...)` content
    /// into allow entries. The directive must be the comment's *leading*
    /// content: a comment that merely mentions the grammar mid-sentence is
    /// not a directive (the old scanner got this wrong in both directions —
    /// see the regression tests in `tests/lint.rs`). Doc comments are
    /// documentation and never directives.
    fn collect_directives(&mut self) {
        let mut found: Vec<(usize, Vec<String>)> = Vec::new();
        for t in &self.tokens {
            let body = match t.kind {
                TokenKind::LineComment => t.text.trim_start_matches('/'),
                TokenKind::BlockComment => t.text.trim_start_matches("/*").trim_end_matches("*/"),
                _ => continue,
            };
            let line0 = t.line - 1;
            if self.in_test(line0) {
                continue;
            }
            let Some(rest) = body.trim_start().strip_prefix("lint:") else { continue };
            let Some(args) = rest.trim_start().strip_prefix("allow(") else { continue };
            match parse_allow_args(args) {
                Ok(rules) => {
                    if let Some(target) = self.directive_target(t) {
                        found.push((target, rules));
                    }
                }
                Err(msg) => self.directive_violations.push(LintViolation {
                    file: self.path.to_string(),
                    line: t.line,
                    rule: "allow-directive",
                    message: msg,
                }),
            }
        }
        self.allows = found;
    }

    /// The 0-based line a directive comment covers: its own line when that
    /// line has code (before or after the comment), otherwise the next
    /// line that has code.
    fn directive_target(&self, t: &Token<'_>) -> Option<usize> {
        let start = t.line - 1;
        let end = t.end_line() - 1;
        for l in start..=end {
            if self.masked.get(l).is_some_and(|m| !m.trim().is_empty()) {
                return Some(l);
            }
        }
        (end + 1..self.masked.len()).find(|&l| !self.masked[l].trim().is_empty())
    }
}

/// Parse the `rule, rule): reason` tail of an allow directive.
fn parse_allow_args(args: &str) -> Result<Vec<String>, String> {
    let Some(close) = args.find(')') else {
        return Err("unterminated lint: allow(...) directive".into());
    };
    let rules: Vec<String> = args[..close].split(',').map(|r| r.trim().to_string()).collect();
    for r in &rules {
        if !crate::rules::RULES.iter().any(|m| m.name == r) {
            return Err(format!("unknown lint rule {r:?} in allow directive"));
        }
    }
    let reason = args[close + 1..].trim_start_matches([':', ' ', '\t']);
    if reason.trim().is_empty() {
        return Err("allow directive must state the invariant: lint: allow(rule): reason".into());
    }
    Ok(rules)
}

/// Mark every line belonging to a `#[cfg(test)]`-guarded item. Works on
/// the token stream: the attribute's idents are inspected (so `cfg(test)`
/// and `cfg(all(test, ...))` count but `cfg(not(test))` does not), and the
/// guarded item extends to its matching close brace — or to the first
/// top-level `;` for brace-less items like `use` declarations, which the
/// old line-based tracker silently over-extended past.
fn test_lines(tokens: &[Token<'_>], n_lines: usize) -> Vec<bool> {
    let mut flags = vec![false; n_lines];
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut mark = |t: &Token<'_>| {
        for f in flags.iter_mut().take(t.end_line().min(n_lines)).skip(t.line - 1) {
            *f = true;
        }
    };
    let mut j = 0;
    while j < code.len() {
        if !(code[j].text == "#" && code.get(j + 1).is_some_and(|t| t.text == "[")) {
            j += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(&code, j);
        if !is_test {
            j = attr_end;
            continue;
        }
        for t in &code[j..attr_end] {
            mark(t);
        }
        // Any further attributes belong to the same item.
        let mut k = attr_end;
        while k < code.len()
            && code[k].text == "#"
            && code.get(k + 1).is_some_and(|t| t.text == "[")
        {
            let (e, _) = scan_attribute(&code, k);
            for t in &code[k..e] {
                mark(t);
            }
            k = e;
        }
        // The item body: through the matching brace of the first `{`, or
        // a `;` before any brace opens.
        let mut depth = 0usize;
        while k < code.len() {
            mark(code[k]);
            match code[k].text {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        j = k;
    }
    flags
}

/// Scan an attribute starting at `#` (index `j` in `code`). Returns the
/// index just past the closing `]` and whether it is a test-cfg attribute.
fn scan_attribute(code: &[&Token<'_>], j: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut k = j + 1;
    while k < code.len() {
        match code[k].text {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        k += 1;
    }
    (k, saw_cfg && saw_test && !saw_not)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_scopes_cover_items_and_stop_at_semicolons() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert_eq!(sf.is_test, vec![false, true, true, true, true, false]);
        // A brace-less guarded item ends at its semicolon.
        let text = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert_eq!(sf.is_test, vec![true, true, false]);
        // cfg(not(test)) guards production code, not tests.
        let text = "#[cfg(not(test))]\nfn real() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert_eq!(sf.is_test, vec![false, false]);
        // cfg(all(test, feature)) is a test scope.
        let text = "#[cfg(all(test, unix))]\nmod t {\n}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(sf.is_test[1]);
        // Braces inside char literals must not derail depth tracking.
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { out.push('{'); }\n}\nfn after() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert_eq!(sf.is_test, vec![true, true, true, true, false]);
    }

    #[test]
    fn directives_resolve_to_their_own_or_next_code_line() {
        let text =
            "// lint: allow(unwrap): reason one.\nfoo();\nbar(); // lint: allow(unwrap): two.\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(sf.allowed(1, "unwrap"));
        assert!(sf.allowed(2, "unwrap"));
        assert!(!sf.allowed(0, "unwrap"));
    }

    #[test]
    fn mid_comment_mentions_are_not_directives() {
        let text = "x.unwrap(); // see the docs for lint: allow(unwrap): syntax\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(!sf.allowed(0, "unwrap"));
        assert!(sf.directive_violations.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let text = "/// lint: allow(unwrap): documented syntax, not a directive\nfoo().unwrap();\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(!sf.allowed(1, "unwrap"));
        let text = "//! lint: allow(unwrap): module docs\nfoo().unwrap();\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(!sf.allowed(1, "unwrap"));
    }

    #[test]
    fn malformed_directives_are_violations() {
        let sf = SourceFile::parse("x.rs", "// lint: allow(unwrap)\nfoo();\n");
        assert_eq!(sf.directive_violations.len(), 1, "missing reason");
        let sf = SourceFile::parse("x.rs", "// lint: allow(made-up): why\nfoo();\n");
        assert_eq!(sf.directive_violations.len(), 1, "unknown rule");
        let sf = SourceFile::parse("x.rs", "// lint: allow(unwrap: no close\nfoo();\n");
        assert_eq!(sf.directive_violations.len(), 1, "unterminated");
    }
}
