//! A tiny self-contained JSON layer for the baseline file and the
//! machine-readable reports. Deliberately minimal: objects keep insertion
//! order (deterministic output), and numbers are integers only — line
//! numbers and violation tallies are all this crate ever serializes, and
//! keeping floats out keeps the emitter trivially round-trippable.

use std::fmt::Write as _;

/// A JSON value. `Obj` preserves insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline —
    /// stable, diff-friendly output for committed files and CI artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_indented(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write_indented(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write_indented(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a JSON document (the committed baseline file). Integer numbers
/// only — see the module docs.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i < p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek().is_some_and(|c| matches!(c, b'.' | b'e' | b'E')) {
            return Err(format!("non-integer number at byte {start} (integers only)"));
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        s.parse::<i64>().map(Value::Num).map_err(|e| format!("bad number {s:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.b.get(self.i + 1..self.i + 5).ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty_output() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("slice-index".into())),
            ("line".into(), Value::Num(42)),
            ("ok".into(), Value::Bool(true)),
            ("tags".into(), Value::Arr(vec![Value::Str("a \"b\"".into()), Value::Null])),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).expect("round trip"), v);
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("{\"a\": }").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
