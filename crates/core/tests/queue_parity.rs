//! Parity oracle for the bucketed [`AffinityQueue`]: a frozen copy of the
//! pre-bucketing `BTreeSet` implementation, plus proptests sweeping
//! push/pop/snapshot-restore interleavings and asserting the two are
//! drain-identical — the "bit-identical pop order" guarantee the rebuild
//! promises.
//!
//! The snapshot-restore op replays the exact `KernelSnapshot` queue
//! protocol: the ready order captured by `SnapshotPolicy::ready_order()`
//! is the queue's GPU-to-CPU iteration order, and restore re-pushes it
//! into a fresh queue in that order with fresh sequence numbers. FIFO ties
//! (identical ρ, tie key and — for the priority rule — priority) must
//! survive any number of such round trips.

use heteroprio_core::{AffinityQueue, Instance, QueueTieBreak, ResourceKind, Task, TaskId};
use proptest::prelude::*;

/// Frozen copy of the `BTreeSet`-based `AffinityQueue` exactly as it stood
/// before the bucketed rebuild. Do not fix or modernise: this is the
/// oracle the new structure must reproduce key-for-key.
mod frozen {
    use heteroprio_core::{Instance, QueueTieBreak, ResourceKind, TaskId};
    use std::cmp::Ordering;
    use std::collections::BTreeSet;

    /// Stand-in for the crate-private `F64Ord`: total order via
    /// `f64::total_cmp`, exactly as the original keys ordered.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Ord64(pub f64);

    impl Eq for Ord64 {}

    impl PartialOrd for Ord64 {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Ord64 {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    type Key = (Ord64, Ord64, u64, TaskId);

    #[derive(Clone, Debug)]
    pub struct FrozenAffinityQueue {
        tie: QueueTieBreak,
        set: BTreeSet<Key>,
        seq: u64,
    }

    impl FrozenAffinityQueue {
        pub fn new(tie: QueueTieBreak) -> Self {
            FrozenAffinityQueue { tie, set: BTreeSet::new(), seq: 0 }
        }

        fn key(&mut self, instance: &Instance, task: TaskId) -> Key {
            let t = instance.task(task);
            let rho = t.accel_factor();
            let tie = match self.tie {
                QueueTieBreak::Priority => {
                    if rho >= 1.0 {
                        -t.priority
                    } else {
                        t.priority
                    }
                }
                QueueTieBreak::InsertionOrder => 0.0,
            };
            let seq = self.seq;
            self.seq += 1;
            (Ord64(-rho), Ord64(tie), seq, task)
        }

        pub fn push(&mut self, instance: &Instance, task: TaskId) {
            let key = self.key(instance, task);
            self.set.insert(key);
        }

        pub fn pop(&mut self, kind: ResourceKind) -> Option<TaskId> {
            let key = match kind {
                ResourceKind::Gpu => self.set.pop_first()?,
                ResourceKind::Cpu => self.set.pop_last()?,
            };
            Some(key.3)
        }

        pub fn len(&self) -> usize {
            self.set.len()
        }

        pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
            self.set.iter().map(|&(_, _, _, task)| task)
        }
    }
}

use frozen::FrozenAffinityQueue;

/// Discrete time/priority tables: small enough that generated instances
/// are dense in ρ collisions (exact FIFO ties), same-octave neighbours
/// (the spill path) and the ρ = 1 orientation boundary.
const TIMES: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 8.0];
const PRIORITIES: [f64; 3] = [0.0, 1.0, 2.0];

fn build_instance(specs: &[(usize, usize, usize)]) -> Instance {
    let mut inst = Instance::new();
    for &(c, g, p) in specs {
        inst.push(
            Task::new(TIMES[c % TIMES.len()], TIMES[g % TIMES.len()])
                .with_priority(PRIORITIES[p % PRIORITIES.len()]),
        );
    }
    inst
}

/// Replay the `KernelSnapshot` queue protocol on the bucketed queue:
/// capture the GPU-to-CPU iteration order, re-push into a fresh queue.
fn round_trip(q: &AffinityQueue, instance: &Instance, tie: QueueTieBreak) -> AffinityQueue {
    let saved: Vec<TaskId> = q.iter().collect();
    let mut restored = AffinityQueue::new(tie);
    for t in saved {
        restored.push(instance, t);
    }
    restored
}

fn round_trip_frozen(
    q: &FrozenAffinityQueue,
    instance: &Instance,
    tie: QueueTieBreak,
) -> FrozenAffinityQueue {
    let saved: Vec<TaskId> = q.iter().collect();
    let mut restored = FrozenAffinityQueue::new(tie);
    for t in saved {
        restored.push(instance, t);
    }
    restored
}

/// Drive both queues through one op script, checking iteration order (the
/// snapshot contract) after every step and pop equality at every pop.
fn check_script(tie: QueueTieBreak, specs: &[(usize, usize, usize)], ops: &[(u8, usize)]) {
    let inst = build_instance(specs);
    let n = inst.len();
    let mut bucketed = AffinityQueue::new(tie);
    let mut oracle = FrozenAffinityQueue::new(tie);
    for (step, &(op, sel)) in ops.iter().enumerate() {
        match op {
            // Push (twice as likely as each other op, to keep queues full).
            0 | 1 => {
                let t = TaskId((sel % n) as u32);
                bucketed.push(&inst, t);
                oracle.push(&inst, t);
            }
            2 => {
                prop_assert_eq!(
                    bucketed.pop(ResourceKind::Gpu),
                    oracle.pop(ResourceKind::Gpu),
                    "GPU pop diverged at step {} ({:?})",
                    step,
                    tie
                );
            }
            3 => {
                prop_assert_eq!(
                    bucketed.pop(ResourceKind::Cpu),
                    oracle.pop(ResourceKind::Cpu),
                    "CPU pop diverged at step {} ({:?})",
                    step,
                    tie
                );
            }
            // Snapshot-restore round trip on both queues.
            _ => {
                bucketed = round_trip(&bucketed, &inst, tie);
                oracle = round_trip_frozen(&oracle, &inst, tie);
            }
        }
        prop_assert_eq!(bucketed.len(), oracle.len());
        prop_assert_eq!(
            bucketed.iter().collect::<Vec<_>>(),
            oracle.iter().collect::<Vec<_>>(),
            "iteration (snapshot) order diverged at step {} ({:?})",
            step,
            tie
        );
    }
    // Full drain from alternating ends must empty both identically.
    let mut side = ResourceKind::Gpu;
    loop {
        let (b, o) = (bucketed.pop(side), oracle.pop(side));
        prop_assert_eq!(b, o, "final drain diverged ({:?})", tie);
        if b.is_none() {
            break;
        }
        side = side.other();
    }
    prop_assert!(bucketed.is_empty());
    prop_assert_eq!(oracle.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The bucketed queue is drain-identical to the frozen `BTreeSet`
    // implementation under arbitrary push/pop/snapshot-restore
    // interleavings, for both tie-break rules.
    #[test]
    fn bucketed_queue_matches_frozen_btreeset_oracle(
        specs in prop::collection::vec((0usize..8, 0usize..8, 0usize..4), 1..24),
        ops in prop::collection::vec((0u8..5, 0usize..32), 1..160),
    ) {
        check_script(QueueTieBreak::Priority, &specs, &ops);
        check_script(QueueTieBreak::InsertionOrder, &specs, &ops);
    }

    // FIFO ties survive repeated `KernelSnapshot`-style round trips: a
    // queue of *identical* tasks (maximal tie density) must preserve its
    // exact announcement order through any number of capture/restore
    // cycles interleaved with pops.
    #[test]
    fn fifo_ties_survive_snapshot_round_trips(
        dims in (1usize..6, 2usize..16),
        trips in 1usize..5,
    ) {
        let (distinct, copies) = dims;
        // `distinct` task shapes, each duplicated `copies` times.
        let specs: Vec<(usize, usize, usize)> = (0..distinct)
            .flat_map(|d| std::iter::repeat_n((d, 0, d), copies))
            .collect();
        let inst = build_instance(&specs);
        for tie in [QueueTieBreak::Priority, QueueTieBreak::InsertionOrder] {
            let mut bucketed = AffinityQueue::new(tie);
            let mut oracle = FrozenAffinityQueue::new(tie);
            for id in inst.ids() {
                bucketed.push(&inst, id);
                oracle.push(&inst, id);
            }
            for _ in 0..trips {
                bucketed = round_trip(&bucketed, &inst, tie);
                oracle = round_trip_frozen(&oracle, &inst, tie);
                prop_assert_eq!(
                    bucketed.iter().collect::<Vec<_>>(),
                    oracle.iter().collect::<Vec<_>>(),
                    "{:?}", tie
                );
                // Pop one from each side between trips so restores are
                // exercised on partially-drained queues too.
                prop_assert_eq!(bucketed.pop(ResourceKind::Gpu), oracle.pop(ResourceKind::Gpu));
                prop_assert_eq!(bucketed.pop(ResourceKind::Cpu), oracle.pop(ResourceKind::Cpu));
            }
        }
    }
}
