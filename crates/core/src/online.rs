//! Online HeteroPrio: independent tasks arriving over time.
//!
//! The paper analyses the clairvoyant case where the whole set is ready at
//! time zero (and its §6.2 DAG experiments release tasks through dependency
//! resolution). A third natural setting — studied for two resource classes
//! by Imreh \[14\] — is *release dates*: task `i` becomes known and ready at
//! time `r_i`. HeteroPrio extends verbatim: arrivals are inserted into the
//! ρ-sorted queue, GPUs keep popping the most accelerated end, CPUs the
//! least accelerated end, and idle workers attempt spoliation when the
//! queue is empty.
//!
//! With all `r_i = 0` this reproduces [`crate::heteroprio::heteroprio`]
//! exactly (tested below).
//!
//! Arrivals are a [`Workload`] over the shared event kernel
//! ([`crate::kernel`]); the queue discipline is the same Algorithm 1 policy
//! as the offline engine, backed by the incremental [`AffinityQueue`](crate::queue::AffinityQueue).

use crate::heteroprio::{scan_victim, HeteroPrioConfig, HeteroPrioResult};
use crate::kernel::{self, FaultModel, KernelContext, KernelOptions, KernelPolicy, Pick, Workload};
use crate::model::{ClassId, Instance, Platform, TaskId, WorkerId};
use crate::queue::{ClassQueue, PopSide};
use crate::WorkerOrder;
use heteroprio_trace::{NullSink, QueueEnd, TraceSink};

/// Run HeteroPrio with per-task release dates (`releases[i]` for task `i`).
///
/// Panics if `releases.len() != instance.len()` or any release is negative.
pub fn heteroprio_online(
    instance: &Instance,
    releases: &[f64],
    platform: &Platform,
    config: &HeteroPrioConfig,
) -> HeteroPrioResult {
    heteroprio_online_traced(instance, releases, platform, config, &mut NullSink)
}

/// [`heteroprio_online`] with a trace sink (see
/// [`heteroprio_traced`](crate::heteroprio_traced)).
pub fn heteroprio_online_traced<S: TraceSink>(
    instance: &Instance,
    releases: &[f64],
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
) -> HeteroPrioResult {
    assert_eq!(releases.len(), instance.len(), "one release date per task");
    assert!(
        releases.iter().all(|&r| r >= 0.0 && r.is_finite()),
        "release dates must be non-negative and finite"
    );
    let mut workload = ReleaseWorkload::new(instance, releases);
    let mut policy = OnlineQueuePolicy {
        instance,
        config: *config,
        queue: ClassQueue::new(platform.k(), config.queue_tie),
    };
    let outcome = kernel::run(
        platform,
        &mut workload,
        &mut policy,
        FaultModel::none(),
        KernelOptions::default(),
        sink,
    )
    .expect("fault-free run cannot fail");
    HeteroPrioResult {
        schedule: outcome.schedule,
        first_idle: outcome.first_idle,
        spoliations: outcome.spoliations,
        summary: outcome.summary,
    }
}

/// Independent tasks with release dates: arrivals sorted by (release, id)
/// feed the kernel as externally-timed ready announcements.
struct ReleaseWorkload<'a> {
    instance: &'a Instance,
    releases: &'a [f64],
    /// Task ids sorted by (release, id).
    arrivals: Vec<TaskId>,
    /// Cursor into `arrivals`.
    next: usize,
}

/// Checked release-time lookup; `releases` is validated to instance size.
fn release_of(releases: &[f64], t: TaskId) -> f64 {
    *releases.get(t.index()).expect("releases sized to the instance")
}

impl<'a> ReleaseWorkload<'a> {
    fn new(instance: &'a Instance, releases: &'a [f64]) -> Self {
        let mut arrivals: Vec<TaskId> = instance.ids().collect();
        arrivals.sort_by(|&a, &b| {
            release_of(releases, a).total_cmp(&release_of(releases, b)).then(a.cmp(&b))
        });
        ReleaseWorkload { instance, releases, arrivals, next: 0 }
    }

    fn admit_until(&mut self, now: f64) -> Vec<TaskId> {
        let mut due = Vec::new();
        self.admit_until_into(now, &mut due);
        due
    }

    fn admit_until_into(&mut self, now: f64, out: &mut Vec<TaskId>) {
        while let Some(&t) = self.arrivals.get(self.next) {
            if release_of(self.releases, t) > now {
                break;
            }
            out.push(t);
            self.next += 1;
        }
    }
}

impl Workload for ReleaseWorkload<'_> {
    fn len(&self) -> usize {
        self.instance.len()
    }

    fn initial(&mut self) -> Vec<TaskId> {
        self.admit_until(0.0)
    }

    fn next_arrival(&self) -> Option<f64> {
        self.arrivals.get(self.next).map(|&t| release_of(self.releases, t))
    }

    fn arrivals_due(&mut self, now: f64) -> Vec<TaskId> {
        self.admit_until(now)
    }

    fn arrivals_due_into(&mut self, now: f64, out: &mut Vec<TaskId>) {
        // Hot-path override: admissions append straight into the kernel's
        // pooled buffer instead of allocating per event.
        self.admit_until_into(now, out);
    }

    fn duration(&self, task: TaskId, class: ClassId, _ran_kind: &[Option<ClassId>]) -> f64 {
        self.instance.task(task).time_on(class)
    }
}

/// Algorithm 1's queue discipline over an incrementally-maintained
/// [`ClassQueue`] (arrivals insert in O(log n) instead of re-sorting; the
/// canonical two-class platform delegates to the bucketed
/// [`AffinityQueue`](crate::queue::AffinityQueue) unchanged).
struct OnlineQueuePolicy<'a> {
    instance: &'a Instance,
    config: HeteroPrioConfig,
    queue: ClassQueue,
}

impl KernelPolicy for OnlineQueuePolicy<'_> {
    fn on_ready(&mut self, tasks: &[TaskId], _ctx: &KernelContext<'_>) {
        for &t in tasks {
            self.queue.push(self.instance, t);
        }
    }

    fn pick(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<Pick> {
        let two_class = ctx.platform.k() == 2;
        self.queue.pop(ctx.platform.class_of(worker)).map(|(task, side)| {
            // The `QueueEnd` annotation is the two-class pop-order
            // certificate; k ≥ 3 traces leave it off (see the offline
            // policy for rationale).
            let end = two_class.then_some(match side {
                PopSide::Front => QueueEnd::Front,
                PopSide::Back => QueueEnd::Back,
            });
            Pick { task, queue_end: end }
        })
    }

    fn spoliation_victim(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<WorkerId> {
        if self.config.disable_spoliation {
            return None;
        }
        scan_victim(self.instance, self.config.spoliation_tie, worker, ctx)
    }

    fn worker_order(&self) -> WorkerOrder {
        self.config.worker_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heteroprio::heteroprio;
    use crate::time::approx_eq;

    #[test]
    fn zero_releases_match_offline_heteroprio() {
        let times: Vec<(f64, f64)> =
            (1..=15).map(|i| (((i * 31) % 9 + 1) as f64, ((i * 17) % 5 + 1) as f64)).collect();
        let inst = Instance::from_times(&times);
        let releases = vec![0.0; inst.len()];
        for platform in [Platform::new(1, 1), Platform::new(3, 2)] {
            let cfg = HeteroPrioConfig::new();
            let offline = heteroprio(&inst, &platform, &cfg);
            let online = heteroprio_online(&inst, &releases, &platform, &cfg);
            online.schedule.validate(&inst, &platform).unwrap();
            assert!(
                approx_eq(offline.makespan(), online.makespan()),
                "offline {} vs online {}",
                offline.makespan(),
                online.makespan()
            );
            assert_eq!(offline.spoliations, online.spoliations);
        }
    }

    #[test]
    fn tasks_never_start_before_release() {
        let inst = Instance::from_times(&[(2.0, 1.0), (2.0, 1.0), (1.0, 2.0)]);
        let releases = vec![0.0, 5.0, 3.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        res.schedule.validate(&inst, &plat).unwrap();
        for run in res.schedule.runs.iter().chain(&res.schedule.aborted) {
            assert!(
                run.start >= releases[run.task.index()] - 1e-12,
                "{} started at {} before release {}",
                run.task,
                run.start,
                releases[run.task.index()]
            );
        }
    }

    #[test]
    fn staggered_arrivals_create_gaps() {
        // One task arriving late: the machine idles until it lands.
        let inst = Instance::from_times(&[(1.0, 1.0)]);
        let releases = vec![10.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        assert!(approx_eq(res.makespan(), 11.0), "{}", res.makespan());
    }

    #[test]
    fn late_gpu_friendly_task_gets_spoliated_onto_gpu() {
        // The CPU grabs a GPU-friendly task arriving while the GPU is busy;
        // when the GPU frees up it spoliates.
        let inst = Instance::from_times(&[(10.0, 2.0), (50.0, 2.0)]);
        let releases = vec![0.0, 1.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        res.schedule.validate(&inst, &plat).unwrap();
        assert_eq!(res.spoliations, 1);
        // GPU: T0 [0,2], then T1 spoliated to [2,4].
        assert!(approx_eq(res.makespan(), 4.0), "{}", res.makespan());
    }

    #[test]
    fn arrival_while_idle_is_picked_up_immediately() {
        let inst = Instance::from_times(&[(4.0, 4.0), (1.0, 1.0)]);
        let releases = vec![0.0, 2.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        let late = res.schedule.run_of(TaskId(1)).unwrap();
        assert!(approx_eq(late.start, 2.0), "{}", late.start);
    }

    #[test]
    #[should_panic(expected = "one release date per task")]
    fn mismatched_release_length_panics() {
        let inst = Instance::from_times(&[(1.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let _ = heteroprio_online(&inst, &[], &plat, &HeteroPrioConfig::new());
    }

    #[test]
    fn makespan_at_least_last_release_plus_min_time() {
        let inst = Instance::from_times(&[(3.0, 6.0), (2.0, 4.0)]);
        let releases = vec![0.0, 7.0];
        let plat = Platform::new(2, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        assert!(res.makespan() >= 7.0 + 2.0 - 1e-9);
    }
}
