//! Online HeteroPrio: independent tasks arriving over time.
//!
//! The paper analyses the clairvoyant case where the whole set is ready at
//! time zero (and its §6.2 DAG experiments release tasks through dependency
//! resolution). A third natural setting — studied for two resource classes
//! by Imreh \[14\] — is *release dates*: task `i` becomes known and ready at
//! time `r_i`. HeteroPrio extends verbatim: arrivals are inserted into the
//! ρ-sorted queue, GPUs keep popping the most accelerated end, CPUs the
//! least accelerated end, and idle workers attempt spoliation when the
//! queue is empty.
//!
//! With all `r_i = 0` this reproduces [`crate::heteroprio::heteroprio`]
//! exactly (tested below).

use crate::heteroprio::{HeteroPrioConfig, HeteroPrioResult, SpoliationTieBreak};
use crate::model::{Instance, Platform, ResourceKind, TaskId, WorkerId};
use crate::queue::AffinityQueue;
use crate::schedule::{Schedule, TaskRun};
use crate::time::{strictly_less, F64Ord};
use crate::WorkerOrder;
use heteroprio_trace::{NullSink, QueueEnd, SchedEvent, TraceSink, TraceSummary};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, Debug)]
struct Running {
    task: TaskId,
    start: f64,
    end: f64,
}

/// Run HeteroPrio with per-task release dates (`releases[i]` for task `i`).
///
/// Panics if `releases.len() != instance.len()` or any release is negative.
pub fn heteroprio_online(
    instance: &Instance,
    releases: &[f64],
    platform: &Platform,
    config: &HeteroPrioConfig,
) -> HeteroPrioResult {
    heteroprio_online_traced(instance, releases, platform, config, &mut NullSink)
}

/// [`heteroprio_online`] with a trace sink (see
/// [`heteroprio_traced`](crate::heteroprio_traced)).
pub fn heteroprio_online_traced<S: TraceSink>(
    instance: &Instance,
    releases: &[f64],
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
) -> HeteroPrioResult {
    assert_eq!(releases.len(), instance.len(), "one release date per task");
    assert!(
        releases.iter().all(|&r| r >= 0.0 && r.is_finite()),
        "release dates must be non-negative and finite"
    );
    let mut sim = OnlineSim::new(instance, platform, config, sink);
    sim.run(releases);
    let mut summary = sim.summary;
    summary.finish();
    HeteroPrioResult {
        schedule: sim.schedule,
        first_idle: summary.first_idle,
        spoliations: summary.spoliation_count,
        summary,
    }
}

struct OnlineSim<'a, S: TraceSink> {
    instance: &'a Instance,
    platform: &'a Platform,
    config: &'a HeteroPrioConfig,
    queue: AffinityQueue,
    running: Vec<Option<Running>>,
    generation: Vec<u64>,
    completions: BinaryHeap<Reverse<(F64Ord, u32, u64)>>,
    idle: Vec<WorkerId>,
    completed: usize,
    schedule: Schedule,
    sink: &'a mut S,
    summary: TraceSummary,
    idle_announced: Vec<bool>,
}

impl<'a, S: TraceSink> OnlineSim<'a, S> {
    fn new(
        instance: &'a Instance,
        platform: &'a Platform,
        config: &'a HeteroPrioConfig,
        sink: &'a mut S,
    ) -> Self {
        let summary = if sink.is_enabled() {
            TraceSummary::with_timeline(platform.workers())
        } else {
            TraceSummary::new(platform.workers())
        };
        OnlineSim {
            instance,
            platform,
            config,
            queue: AffinityQueue::new(config.queue_tie),
            running: vec![None; platform.workers()],
            generation: vec![0; platform.workers()],
            completions: BinaryHeap::new(),
            idle: platform.all_workers().collect(),
            completed: 0,
            schedule: Schedule::new(),
            sink,
            summary,
            idle_announced: vec![false; platform.workers()],
        }
    }

    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.summary.record(&event);
        self.sink.emit(event);
    }

    fn enqueue(&mut self, task: TaskId, now: f64) {
        self.emit(SchedEvent::TaskReady { time: now, task: task.0 });
        self.queue.push(self.instance, task);
    }

    fn start(&mut self, w: WorkerId, task: TaskId, now: f64) {
        let dur = self.instance.task(task).time_on(self.platform.kind_of(w));
        let end = now + dur;
        if self.idle_announced[w.index()] {
            self.idle_announced[w.index()] = false;
            self.emit(SchedEvent::WorkerIdleEnd { time: now, worker: w.0 });
        }
        self.emit(SchedEvent::TaskStart {
            time: now,
            task: task.0,
            worker: w.0,
            expected_end: end,
        });
        self.running[w.index()] = Some(Running { task, start: now, end });
        self.completions.push(Reverse((F64Ord::new(end), w.0, self.generation[w.index()])));
    }

    fn worker_sort_key(&self, w: WorkerId) -> (u8, u32) {
        let kind = self.platform.kind_of(w);
        let class = match self.config.worker_order {
            WorkerOrder::GpusFirst => (kind == ResourceKind::Cpu) as u8,
            WorkerOrder::CpusFirst => (kind == ResourceKind::Gpu) as u8,
            WorkerOrder::ById => 0,
        };
        (class, w.0)
    }

    fn pick_victim(&self, w: WorkerId, now: f64) -> Option<WorkerId> {
        let my_kind = self.platform.kind_of(w);
        let mut candidates: Vec<(WorkerId, Running)> = self
            .platform
            .workers_of(my_kind.other())
            .filter_map(|v| self.running[v.index()].map(|r| (v, r)))
            .collect();
        candidates.sort_by(|(_, a), (_, b)| {
            b.end.total_cmp(&a.end).then_with(|| {
                let ta = self.instance.task(a.task);
                let tb = self.instance.task(b.task);
                match self.config.spoliation_tie {
                    SpoliationTieBreak::PriorityThenId => {
                        tb.priority.total_cmp(&ta.priority).then(a.task.cmp(&b.task))
                    }
                    SpoliationTieBreak::IdAscending => a.task.cmp(&b.task),
                    SpoliationTieBreak::IdDescending => b.task.cmp(&a.task),
                }
            })
        });
        for (v, r) in candidates {
            let new_end = now + self.instance.task(r.task).time_on(my_kind);
            if strictly_less(new_end, r.end) {
                return Some(v);
            }
        }
        None
    }

    fn assign_fixpoint(&mut self, now: f64) {
        loop {
            let mut idle = std::mem::take(&mut self.idle);
            idle.sort_by_key(|&w| self.worker_sort_key(w));
            let mut acted = false;
            let mut still_idle = Vec::new();
            let mut newly_idle = Vec::new();
            for w in idle {
                let kind = self.platform.kind_of(w);
                if let Some(task) = self.queue.pop(kind) {
                    let end = match kind {
                        ResourceKind::Gpu => QueueEnd::Front,
                        ResourceKind::Cpu => QueueEnd::Back,
                    };
                    self.emit(SchedEvent::QueuePop { time: now, task: task.0, worker: w.0, end });
                    self.start(w, task, now);
                    acted = true;
                    continue;
                }
                if !self.idle_announced[w.index()] {
                    self.idle_announced[w.index()] = true;
                    self.emit(SchedEvent::WorkerIdleBegin { time: now, worker: w.0 });
                }
                if !self.config.disable_spoliation {
                    if let Some(victim) = self.pick_victim(w, now) {
                        let r = self.running[victim.index()].take().expect("victim running");
                        self.generation[victim.index()] += 1;
                        self.schedule.aborted.push(TaskRun {
                            task: r.task,
                            worker: victim,
                            start: r.start,
                            end: now,
                        });
                        self.emit(SchedEvent::Spoliation {
                            time: now,
                            task: r.task.0,
                            victim: victim.0,
                            thief: w.0,
                            wasted_work: now - r.start,
                        });
                        self.start(w, r.task, now);
                        newly_idle.push(victim);
                        acted = true;
                        continue;
                    }
                }
                still_idle.push(w);
            }
            self.idle = still_idle;
            self.idle.extend(newly_idle);
            if !acted {
                return;
            }
        }
    }

    fn complete(&mut self, w: WorkerId, now: f64) {
        let r = self.running[w.index()].take().expect("completion of idle worker");
        self.schedule.runs.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.emit(SchedEvent::TaskComplete { time: now, task: r.task.0, worker: w.0 });
        self.completed += 1;
        self.idle.push(w);
    }

    fn run(&mut self, releases: &[f64]) {
        let total = self.instance.len();
        // Arrivals sorted by (release, id): a second event stream.
        let mut arrivals: Vec<TaskId> = self.instance.ids().collect();
        arrivals
            .sort_by(|&a, &b| releases[a.index()].total_cmp(&releases[b.index()]).then(a.cmp(&b)));
        let mut next_arrival = 0usize;
        let mut now = 0.0;

        // Admit everything released at time zero.
        while next_arrival < total && releases[arrivals[next_arrival].index()] <= now {
            let task = arrivals[next_arrival];
            self.enqueue(task, now);
            next_arrival += 1;
        }
        self.assign_fixpoint(now);

        while self.completed < total {
            // Next event: the earlier of next completion and next arrival.
            let next_completion = loop {
                match self.completions.peek() {
                    Some(&Reverse((F64Ord(t), w, generation))) => {
                        if self.generation[w as usize] == generation {
                            break Some(t);
                        }
                        self.completions.pop();
                    }
                    None => break None,
                }
            };
            let next_release =
                (next_arrival < total).then(|| releases[arrivals[next_arrival].index()]);
            now = match (next_completion, next_release) {
                (Some(c), Some(r)) => c.min(r),
                (Some(c), None) => c,
                (None, Some(r)) => r,
                (None, None) => {
                    unreachable!("tasks remain but nothing is running or arriving")
                }
            };
            // Process all arrivals at `now`.
            while next_arrival < total && releases[arrivals[next_arrival].index()] <= now {
                let task = arrivals[next_arrival];
                self.enqueue(task, now);
                next_arrival += 1;
            }
            // Process all completions at `now`.
            while let Some(&Reverse((F64Ord(t), w, generation))) = self.completions.peek() {
                if self.generation[w as usize] != generation {
                    self.completions.pop();
                } else if t == now {
                    self.completions.pop();
                    self.complete(WorkerId(w), now);
                } else {
                    break;
                }
            }
            self.assign_fixpoint(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heteroprio::heteroprio;
    use crate::time::approx_eq;

    #[test]
    fn zero_releases_match_offline_heteroprio() {
        let times: Vec<(f64, f64)> =
            (1..=15).map(|i| (((i * 31) % 9 + 1) as f64, ((i * 17) % 5 + 1) as f64)).collect();
        let inst = Instance::from_times(&times);
        let releases = vec![0.0; inst.len()];
        for platform in [Platform::new(1, 1), Platform::new(3, 2)] {
            let cfg = HeteroPrioConfig::new();
            let offline = heteroprio(&inst, &platform, &cfg);
            let online = heteroprio_online(&inst, &releases, &platform, &cfg);
            online.schedule.validate(&inst, &platform).unwrap();
            assert!(
                approx_eq(offline.makespan(), online.makespan()),
                "offline {} vs online {}",
                offline.makespan(),
                online.makespan()
            );
            assert_eq!(offline.spoliations, online.spoliations);
        }
    }

    #[test]
    fn tasks_never_start_before_release() {
        let inst = Instance::from_times(&[(2.0, 1.0), (2.0, 1.0), (1.0, 2.0)]);
        let releases = vec![0.0, 5.0, 3.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        res.schedule.validate(&inst, &plat).unwrap();
        for run in res.schedule.runs.iter().chain(&res.schedule.aborted) {
            assert!(
                run.start >= releases[run.task.index()] - 1e-12,
                "{} started at {} before release {}",
                run.task,
                run.start,
                releases[run.task.index()]
            );
        }
    }

    #[test]
    fn staggered_arrivals_create_gaps() {
        // One task arriving late: the machine idles until it lands.
        let inst = Instance::from_times(&[(1.0, 1.0)]);
        let releases = vec![10.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        assert!(approx_eq(res.makespan(), 11.0), "{}", res.makespan());
    }

    #[test]
    fn late_gpu_friendly_task_gets_spoliated_onto_gpu() {
        // The CPU grabs a GPU-friendly task arriving while the GPU is busy;
        // when the GPU frees up it spoliates.
        let inst = Instance::from_times(&[(10.0, 2.0), (50.0, 2.0)]);
        let releases = vec![0.0, 1.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        res.schedule.validate(&inst, &plat).unwrap();
        assert_eq!(res.spoliations, 1);
        // GPU: T0 [0,2], then T1 spoliated to [2,4].
        assert!(approx_eq(res.makespan(), 4.0), "{}", res.makespan());
    }

    #[test]
    fn arrival_while_idle_is_picked_up_immediately() {
        let inst = Instance::from_times(&[(4.0, 4.0), (1.0, 1.0)]);
        let releases = vec![0.0, 2.0];
        let plat = Platform::new(1, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        let late = res.schedule.run_of(TaskId(1)).unwrap();
        assert!(approx_eq(late.start, 2.0), "{}", late.start);
    }

    #[test]
    #[should_panic(expected = "one release date per task")]
    fn mismatched_release_length_panics() {
        let inst = Instance::from_times(&[(1.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let _ = heteroprio_online(&inst, &[], &plat, &HeteroPrioConfig::new());
    }

    #[test]
    fn makespan_at_least_last_release_plus_min_time() {
        let inst = Instance::from_times(&[(3.0, 6.0), (2.0, 4.0)]);
        let releases = vec![0.0, 7.0];
        let plat = Platform::new(2, 1);
        let res = heteroprio_online(&inst, &releases, &plat, &HeteroPrioConfig::new());
        assert!(res.makespan() >= 7.0 + 2.0 - 1e-9);
    }
}
