//! The paper's proved constants (Table 2), as code.
//!
//! | (#CPUs, #GPUs) | upper bound | worst-case example |
//! |---|---|---|
//! | (1, 1) | φ | φ (tight) |
//! | (m, 1) | 1 + φ | 1 + φ (tight as m → ∞) |
//! | (m, n) | 2 + √2 | 2 + 2/√3 |

use crate::model::Platform;
use crate::time::{approx_eq, PHI};

/// Proven upper bound on HeteroPrio's approximation ratio for a platform
/// shape (Theorems 7, 9 and 12). Symmetric in the two classes: with a
/// single worker on each side the φ bound applies, with a single worker on
/// exactly one side the 1+φ bound applies.
pub fn proven_upper_bound(platform: &Platform) -> f64 {
    match (platform.cpus(), platform.gpus()) {
        (1, 1) => PHI,
        (_, 1) | (1, _) => 1.0 + PHI,
        _ => 2.0 + std::f64::consts::SQRT_2,
    }
}

/// Best known lower bound on HeteroPrio's worst-case ratio for a platform
/// shape (Theorems 8, 11 and 14).
pub fn known_lower_bound(platform: &Platform) -> f64 {
    match (platform.cpus(), platform.gpus()) {
        (1, 1) => PHI,
        (_, 1) | (1, _) => 1.0 + PHI,
        _ => 2.0 + 2.0 / 3.0_f64.sqrt(),
    }
}

/// Is the analysis tight for this shape (upper bound == known lower bound)?
pub fn is_tight(platform: &Platform) -> bool {
    approx_eq(proven_upper_bound(platform), known_lower_bound(platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::approx_eq;

    #[test]
    fn constants_match_table2() {
        assert!(approx_eq(proven_upper_bound(&Platform::new(1, 1)), 1.618033988749895));
        assert!(approx_eq(proven_upper_bound(&Platform::new(20, 1)), 2.618033988749895));
        assert!(approx_eq(proven_upper_bound(&Platform::new(20, 4)), 3.414213562373095));
        assert!(approx_eq(known_lower_bound(&Platform::new(20, 4)), 3.1547005383792515));
    }

    #[test]
    fn tightness_per_shape() {
        assert!(is_tight(&Platform::new(1, 1)));
        assert!(is_tight(&Platform::new(5, 1)));
        assert!(!is_tight(&Platform::new(5, 2)));
    }

    #[test]
    fn single_gpu_and_single_cpu_sides_are_symmetric() {
        assert_eq!(
            proven_upper_bound(&Platform::new(1, 7)),
            proven_upper_bound(&Platform::new(7, 1))
        );
    }

    #[test]
    fn bounds_are_ordered() {
        for (m, n) in [(1, 1), (4, 1), (1, 4), (20, 4)] {
            let p = Platform::new(m, n);
            assert!(known_lower_bound(&p) <= proven_upper_bound(&p) + 1e-12);
        }
    }
}
