//! Durability plane for the kernel: crash plans, serializable snapshots,
//! checkpoint stores, and journal metering.
//!
//! The kernel's trace stream doubles as a write-ahead journal (see
//! `heteroprio_trace::journal`): every state transition is emitted as a
//! `SchedEvent` *before* the kernel acts on its consequences, and the
//! kernel itself is a deterministic function of (workload, policy, fault
//! model, options). Recovery therefore needs no redo/undo log — replaying
//! the journaled prefix through a fresh kernel reproduces the crashed
//! run's state bit-for-bit, and the run then continues past the crash
//! point ([`kernel::resume`](crate::kernel::resume)).
//!
//! A [`KernelSnapshot`] is an optimization on top of that contract: it
//! captures the kernel's complete mid-run state (task states, running
//! intervals, the *actual* — possibly jittered — event-heap instants, RNG
//! state, the policy's ready order) so recovery can skip re-executing the
//! journaled prefix and only verify the tail. Snapshots are written
//! atomically (temp file + rename) with the same CRC framing as journal
//! records, so a crash mid-checkpoint leaves the previous checkpoint
//! intact and a torn checkpoint is detected and discarded — the journal
//! remains the source of truth.

use crate::kernel::{EngineError, RunningTask, TaskState};
use crate::model::{ClassId, TaskId, WorkerId};
use crate::schedule::{Schedule, TaskRun};
use heteroprio_metrics::{CounterId, HistogramId, MetricsRegistry, Stopwatch};
use heteroprio_trace::journal::{crc32, Journal, JournalError};
use heteroprio_trace::{json, SchedEvent};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Metric names for the durability plane (see `crates/metrics`).
pub mod metric {
    /// Journal records appended.
    pub const JOURNAL_APPENDS_TOTAL: &str = "journal_appends_total";
    /// Explicit or cadence-triggered journal fsyncs.
    pub const JOURNAL_SYNCS_TOTAL: &str = "journal_syncs_total";
    /// Framed bytes written to the journal.
    pub const JOURNAL_BYTES_TOTAL: &str = "journal_bytes_total";
    /// Latency of a single journal append, nanoseconds.
    pub const JOURNAL_APPEND_NS: &str = "journal_append_ns";
    /// Latency of a single journal sync, nanoseconds.
    pub const JOURNAL_SYNC_NS: &str = "journal_sync_ns";
    /// Wall time spent replaying/verifying journaled events on recovery,
    /// nanoseconds.
    pub const RECOVERY_REPLAY_NS: &str = "recovery_replay_ns";
}

/// Crash-injection plan, modeled on the simulator's `FaultPlan`: the kernel
/// "dies" after emitting its `at_event`-th trace event. From that point no
/// further events reach the sink (the journal holds exactly `at_event`
/// records, like a real torn process) and the run aborts with
/// [`EngineError::Crashed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Die after this many emitted events (`None` = never).
    pub at_event: Option<u64>,
}

impl CrashPlan {
    /// The no-crash plan.
    pub const NONE: CrashPlan = CrashPlan { at_event: None };

    /// Crash after the `n`-th emitted event.
    pub fn at_event(n: u64) -> Self {
        CrashPlan { at_event: Some(n) }
    }

    pub fn is_none(&self) -> bool {
        self.at_event.is_none()
    }
}

/// Durability knobs for [`kernel::run_durable`](crate::kernel::run_durable):
/// the crash plan and an optional checkpoint cadence + store.
pub struct DurabilityOptions<'c> {
    pub crash: CrashPlan,
    /// Capture a [`KernelSnapshot`] every this-many emitted events (`None`
    /// = journal-only durability).
    pub checkpoint_every: Option<u64>,
    /// Where checkpoints go. Snapshot persistence is best-effort — the
    /// journal stays authoritative — so a failed save is latched in the
    /// store (see [`FileCheckpointStore::take_error`]) instead of aborting
    /// the run.
    pub store: Option<&'c mut dyn CheckpointStore>,
}

impl Default for DurabilityOptions<'static> {
    fn default() -> Self {
        DurabilityOptions { crash: CrashPlan::NONE, checkpoint_every: None, store: None }
    }
}

/// Sink for kernel checkpoints.
pub trait CheckpointStore {
    fn save(&mut self, snapshot: &KernelSnapshot) -> Result<(), String>;
}

/// In-memory checkpoint store: keeps the latest snapshot.
#[derive(Debug, Default)]
pub struct MemCheckpointStore {
    pub latest: Option<KernelSnapshot>,
    pub saves: usize,
}

impl MemCheckpointStore {
    pub fn new() -> Self {
        MemCheckpointStore::default()
    }
}

impl CheckpointStore for MemCheckpointStore {
    fn save(&mut self, snapshot: &KernelSnapshot) -> Result<(), String> {
        self.latest = Some(snapshot.clone());
        self.saves += 1;
        Ok(())
    }
}

/// File header of a checkpoint: magic, then `[len: u32 LE][crc32: u32 LE]`
/// over the JSON payload — the same framing discipline as journal records.
const SNAP_MAGIC: &[u8; 6] = b"HPSN1\n";

/// File-backed checkpoint store with atomic replacement: each save writes
/// `<path>.tmp`, fsyncs it, and renames it over `<path>`, so a crash at any
/// point leaves either the previous checkpoint or a complete new one.
#[derive(Debug)]
pub struct FileCheckpointStore {
    path: PathBuf,
    last_error: Option<String>,
    pub saves: usize,
}

impl FileCheckpointStore {
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        FileCheckpointStore { path: path.as_ref().to_path_buf(), last_error: None, saves: 0 }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// First save error since the last call, if any. `run_durable` treats
    /// checkpointing as best-effort; callers that care poll this.
    pub fn take_error(&mut self) -> Option<String> {
        self.last_error.take()
    }

    /// Load the checkpoint at `path`. Returns `(snapshot, damage_note)`:
    /// a missing file is `(None, None)`; a torn or corrupt checkpoint is
    /// discarded as `(None, Some(why))` — recovery then falls back to
    /// journal-only replay, which is always correct.
    pub fn load<P: AsRef<Path>>(path: P) -> (Option<KernelSnapshot>, Option<String>) {
        let bytes = match fs::read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return (None, None),
            Err(e) => return (None, Some(format!("read: {e}"))),
        };
        match decode_snapshot(&bytes) {
            Ok(s) => (Some(s), None),
            Err(why) => (None, Some(why)),
        }
    }
}

fn encode_snapshot(snapshot: &KernelSnapshot) -> Vec<u8> {
    let payload = snapshot.to_json().into_bytes();
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

fn decode_snapshot(bytes: &[u8]) -> Result<KernelSnapshot, String> {
    let body = bytes
        .strip_prefix(SNAP_MAGIC.as_slice())
        .ok_or_else(|| "not a checkpoint file (bad magic)".to_string())?;
    if body.len() < 8 {
        return Err("torn checkpoint: header incomplete".into());
    }
    // lint: allow(cast-trunc): u32 -> usize frame length, lossless on every supported target.
    let len = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    let payload = body[8..].get(..len).ok_or("torn checkpoint: payload incomplete")?;
    if crc32(payload) != crc {
        return Err("corrupt checkpoint: CRC mismatch".into());
    }
    let text = std::str::from_utf8(payload).map_err(|e| format!("corrupt checkpoint: {e}"))?;
    KernelSnapshot::parse(text)
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&mut self, snapshot: &KernelSnapshot) -> Result<(), String> {
        let result = (|| -> Result<(), String> {
            let tmp = self.path.with_extension("tmp");
            let bytes = encode_snapshot(snapshot);
            let mut file = fs::File::create(&tmp).map_err(|e| format!("create: {e}"))?;
            file.write_all(&bytes).map_err(|e| format!("write: {e}"))?;
            file.sync_all().map_err(|e| format!("sync: {e}"))?;
            drop(file);
            fs::rename(&tmp, &self.path).map_err(|e| format!("rename: {e}"))?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.saves += 1;
                Ok(())
            }
            Err(e) => {
                if self.last_error.is_none() {
                    self.last_error = Some(e.clone());
                }
                Err(e)
            }
        }
    }
}

/// Complete serializable mid-run kernel state, captured at a quiescent
/// point (end of an event-loop iteration, after the assignment fixpoint).
///
/// Everything the continuation depends on is here — including the *actual*
/// event-heap instants (under jitter these differ from the estimates in
/// `TaskStart::expected_end` and are recoverable from nowhere else) and the
/// raw RNG state, so a resumed stochastic run draws the exact same stream.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSnapshot {
    /// Simulated time of capture.
    pub now: f64,
    /// Events emitted (= journal records) up to capture.
    pub events_seen: u64,
    pub workers: usize,
    pub tasks: usize,
    pub state: Vec<TaskState>,
    pub ran_kind: Vec<Option<ClassId>>,
    pub running: Vec<Option<RunningTask>>,
    pub generation: Vec<u64>,
    /// Live completion/failure heap entries `(time, worker, generation)`,
    /// sorted for a canonical encoding. Stale generations are dropped.
    pub heap: Vec<(f64, u32, u64)>,
    pub idle: Vec<u32>,
    pub idle_announced: Vec<bool>,
    pub alive: Vec<bool>,
    pub will_fail: Vec<bool>,
    pub failures: Vec<u32>,
    pub timeline_pos: usize,
    /// Pending retries `(ready_time, task)`, sorted.
    pub retries: Vec<(f64, u32)>,
    /// Raw xoshiro256++ state; `None` for deterministic (fault-free) runs.
    pub rng: Option<[u64; 4]>,
    /// Ready tasks in the policy's internal queue order
    /// ([`SnapshotPolicy::ready_order`](crate::kernel::SnapshotPolicy)).
    pub ready: Vec<TaskId>,
}

fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "non-finite time {x} in snapshot");
    format!("{x}")
}

fn json_u64_array(values: impl Iterator<Item = u64>) -> String {
    // Hex strings: JSON numbers round-trip through f64 here, which cannot
    // carry a full-range u64 (RNG words use all 64 bits).
    let items: Vec<String> = values.map(|v| format!("\"{v:x}\"")).collect();
    format!("[{}]", items.join(","))
}

fn parse_hex_u64(v: &json::Value) -> Result<u64, String> {
    let s = v.as_str().ok_or("expected hex string")?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex u64 {s:?}: {e}"))
}

fn get<'a>(obj: &'a json::Value, key: &str) -> Result<&'a json::Value, String> {
    obj.get(key).ok_or_else(|| format!("snapshot field {key:?} missing"))
}

fn get_arr<'a>(obj: &'a json::Value, key: &str) -> Result<&'a [json::Value], String> {
    get(obj, key)?.as_arr().ok_or_else(|| format!("snapshot field {key:?} is not an array"))
}

fn get_f64(obj: &json::Value, key: &str) -> Result<f64, String> {
    get(obj, key)?.as_f64().ok_or_else(|| format!("snapshot field {key:?} is not a number"))
}

fn get_usize(obj: &json::Value, key: &str) -> Result<usize, String> {
    let x = get_f64(obj, key)?;
    // lint: allow(float-eq): fract() == 0.0 is the exact IEEE integrality test.
    if x < 0.0 || x.fract() != 0.0 || x > (1u64 << 53) as f64 {
        return Err(format!("snapshot field {key:?} is not a valid count: {x}"));
    }
    Ok(x as usize)
}

fn num_f64(v: &json::Value, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{what}: expected number"))
}

/// A count serialized as a JSON number: exact only below 2^53, which every
/// kernel counter (events, generations, timeline cursor) stays far under.
fn num_u64(v: &json::Value, what: &str) -> Result<u64, String> {
    let x = num_f64(v, what)?;
    // lint: allow(float-eq): fract() == 0.0 is the exact IEEE integrality test.
    if x < 0.0 || x.fract() != 0.0 || x > (1u64 << 53) as f64 {
        return Err(format!("{what}: not a valid count: {x}"));
    }
    Ok(x as u64)
}

impl KernelSnapshot {
    /// Serialize to a single-line JSON object. Floats use Rust's shortest
    /// round-trip formatting, so `parse` recovers them bit-exactly; u64s
    /// that may need all 64 bits (RNG words) go as hex strings.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"format\":\"heteroprio-snapshot\",\"version\":1");
        s.push_str(&format!(",\"now\":{}", fmt_f64(self.now)));
        s.push_str(&format!(",\"events_seen\":{}", self.events_seen));
        s.push_str(&format!(",\"workers\":{}", self.workers));
        s.push_str(&format!(",\"tasks\":{}", self.tasks));
        let state: Vec<String> = self
            .state
            .iter()
            .map(|st| {
                (match st {
                    TaskState::Pending => "0",
                    TaskState::Ready => "1",
                    TaskState::Running => "2",
                    TaskState::Waiting => "3",
                    TaskState::Done => "4",
                })
                .to_string()
            })
            .collect();
        s.push_str(&format!(",\"state\":[{}]", state.join(",")));
        let ran: Vec<String> = self
            .ran_kind
            .iter()
            .map(|k| {
                match k {
                    // Tag = class index + 1; 0 is "not finished". The
                    // two-class encoding (1 = CPU, 2 = GPU) is unchanged.
                    None => "0".to_string(),
                    Some(c) => (c.0 + 1).to_string(),
                }
            })
            .collect();
        s.push_str(&format!(",\"ran_kind\":[{}]", ran.join(",")));
        let running: Vec<String> = self
            .running
            .iter()
            .map(|r| match r {
                None => "null".to_string(),
                Some(r) => format!("[{},{},{}]", r.task.0, fmt_f64(r.start), fmt_f64(r.end)),
            })
            .collect();
        s.push_str(&format!(",\"running\":[{}]", running.join(",")));
        let gens: Vec<String> = self.generation.iter().map(|g| g.to_string()).collect();
        s.push_str(&format!(",\"generation\":[{}]", gens.join(",")));
        let heap: Vec<String> =
            self.heap.iter().map(|&(t, w, g)| format!("[{},{w},{g}]", fmt_f64(t))).collect();
        s.push_str(&format!(",\"heap\":[{}]", heap.join(",")));
        let idle: Vec<String> = self.idle.iter().map(|w| w.to_string()).collect();
        s.push_str(&format!(",\"idle\":[{}]", idle.join(",")));
        let bools = |v: &[bool]| -> String {
            let items: Vec<&str> = v.iter().map(|&b| if b { "true" } else { "false" }).collect();
            format!("[{}]", items.join(","))
        };
        s.push_str(&format!(",\"idle_announced\":{}", bools(&self.idle_announced)));
        s.push_str(&format!(",\"alive\":{}", bools(&self.alive)));
        s.push_str(&format!(",\"will_fail\":{}", bools(&self.will_fail)));
        let fails: Vec<String> = self.failures.iter().map(|f| f.to_string()).collect();
        s.push_str(&format!(",\"failures\":[{}]", fails.join(",")));
        s.push_str(&format!(",\"timeline_pos\":{}", self.timeline_pos));
        let retries: Vec<String> =
            self.retries.iter().map(|&(t, task)| format!("[{},{task}]", fmt_f64(t))).collect();
        s.push_str(&format!(",\"retries\":[{}]", retries.join(",")));
        match self.rng {
            None => s.push_str(",\"rng\":null"),
            Some(words) => s.push_str(&format!(",\"rng\":{}", json_u64_array(words.into_iter()))),
        }
        let ready: Vec<String> = self.ready.iter().map(|t| t.0.to_string()).collect();
        s.push_str(&format!(",\"ready\":[{}]", ready.join(",")));
        s.push('}');
        s
    }

    /// Parse a snapshot serialized by [`KernelSnapshot::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        match get(&v, "format")?.as_str() {
            Some("heteroprio-snapshot") => {}
            _ => return Err("not a heteroprio snapshot".into()),
        }
        let version = get_usize(&v, "version")?;
        if version != 1 {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let state = get_arr(&v, "state")?
            .iter()
            .map(|x| match num_u64(x, "state")? {
                0 => Ok(TaskState::Pending),
                1 => Ok(TaskState::Ready),
                2 => Ok(TaskState::Running),
                3 => Ok(TaskState::Waiting),
                4 => Ok(TaskState::Done),
                n => Err(format!("bad task state tag {n}")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ran_kind = get_arr(&v, "ran_kind")?
            .iter()
            .map(|x| match num_u64(x, "ran_kind")? {
                0 => Ok(None),
                n if n <= crate::model::MAX_CLASSES as u64 => Ok(Some(ClassId(n as u16 - 1))),
                n => Err(format!("bad ran_kind tag {n}")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let running = get_arr(&v, "running")?
            .iter()
            .map(|x| {
                if matches!(x, json::Value::Null) {
                    return Ok(None);
                }
                let triple = x.as_arr().ok_or("running: expected null or [task,start,end]")?;
                if triple.len() != 3 {
                    return Err("running: expected [task,start,end]".to_string());
                }
                Ok(Some(RunningTask {
                    task: TaskId(num_u64(&triple[0], "running.task")? as u32),
                    start: num_f64(&triple[1], "running.start")?,
                    end: num_f64(&triple[2], "running.end")?,
                }))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let generation = get_arr(&v, "generation")?
            .iter()
            .map(|x| num_u64(x, "generation"))
            .collect::<Result<Vec<_>, _>>()?;
        let heap = get_arr(&v, "heap")?
            .iter()
            .map(|x| {
                let triple = x.as_arr().ok_or("heap: expected [time,worker,generation]")?;
                if triple.len() != 3 {
                    return Err("heap: expected [time,worker,generation]".to_string());
                }
                Ok((
                    num_f64(&triple[0], "heap.time")?,
                    num_u64(&triple[1], "heap.worker")? as u32,
                    num_u64(&triple[2], "heap.generation")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let idle = get_arr(&v, "idle")?
            .iter()
            .map(|x| num_u64(x, "idle").map(|w| w as u32))
            .collect::<Result<Vec<_>, _>>()?;
        let parse_bools = |key: &str| -> Result<Vec<bool>, String> {
            get_arr(&v, key)?
                .iter()
                .map(|x| x.as_bool().ok_or_else(|| format!("{key}: expected bool")))
                .collect()
        };
        let retries = get_arr(&v, "retries")?
            .iter()
            .map(|x| {
                let pair = x.as_arr().ok_or("retries: expected [time,task]")?;
                if pair.len() != 2 {
                    return Err("retries: expected [time,task]".to_string());
                }
                Ok((num_f64(&pair[0], "retries.time")?, num_u64(&pair[1], "retries.task")? as u32))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let rng = match get(&v, "rng")? {
            json::Value::Null => None,
            arr => {
                let words = arr.as_arr().ok_or("rng: expected null or array")?;
                if words.len() != 4 {
                    return Err("rng: expected 4 words".to_string());
                }
                let mut out = [0u64; 4];
                for (slot, w) in out.iter_mut().zip(words) {
                    *slot = parse_hex_u64(w)?;
                }
                Some(out)
            }
        };
        let ready = get_arr(&v, "ready")?
            .iter()
            .map(|x| num_u64(x, "ready").map(|t| TaskId(t as u32)))
            .collect::<Result<Vec<_>, _>>()?;
        let snap = KernelSnapshot {
            now: get_f64(&v, "now")?,
            events_seen: num_u64(get(&v, "events_seen")?, "events_seen")?,
            workers: get_usize(&v, "workers")?,
            tasks: get_usize(&v, "tasks")?,
            state,
            ran_kind,
            running,
            generation,
            heap,
            idle,
            idle_announced: parse_bools("idle_announced")?,
            alive: parse_bools("alive")?,
            will_fail: parse_bools("will_fail")?,
            failures: get_arr(&v, "failures")?
                .iter()
                .map(|x| num_u64(x, "failures").map(|f| f as u32))
                .collect::<Result<Vec<_>, _>>()?,
            timeline_pos: get_usize(&v, "timeline_pos")?,
            retries,
            rng,
            ready,
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Internal-consistency check: every per-task/per-worker vector matches
    /// the declared counts and ids stay in range.
    pub fn validate(&self) -> Result<(), String> {
        let t = self.tasks;
        let w = self.workers;
        let check = |name: &str, len: usize, want: usize| -> Result<(), String> {
            if len != want {
                return Err(format!("snapshot {name} has {len} entries, expected {want}"));
            }
            Ok(())
        };
        check("state", self.state.len(), t)?;
        check("ran_kind", self.ran_kind.len(), t)?;
        check("failures", self.failures.len(), t)?;
        check("running", self.running.len(), w)?;
        check("generation", self.generation.len(), w)?;
        check("idle_announced", self.idle_announced.len(), w)?;
        check("alive", self.alive.len(), w)?;
        check("will_fail", self.will_fail.len(), w)?;
        let task_ok = |id: u32| (id as usize) < t;
        let worker_ok = |id: u32| (id as usize) < w;
        if let Some(r) = self.running.iter().flatten().find(|r| !task_ok(r.task.0)) {
            return Err(format!("snapshot running references unknown task {}", r.task));
        }
        if let Some(&(_, wk, _)) = self.heap.iter().find(|&&(_, wk, _)| !worker_ok(wk)) {
            return Err(format!("snapshot heap references unknown worker {wk}"));
        }
        if let Some(&wk) = self.idle.iter().find(|&&wk| !worker_ok(wk)) {
            return Err(format!("snapshot idle references unknown worker {wk}"));
        }
        if let Some(&(_, task)) = self.retries.iter().find(|&&(_, task)| !task_ok(task)) {
            return Err(format!("snapshot retries reference unknown task {task}"));
        }
        if let Some(&id) = self.ready.iter().find(|&&id| !task_ok(id.0)) {
            return Err(format!("snapshot ready order references unknown task {id}"));
        }
        for &id in &self.ready {
            if self.state[id.index()] != TaskState::Ready {
                return Err(format!("snapshot ready order lists {id}, which is not ready"));
            }
        }
        Ok(())
    }
}

/// Typed recovery failure (see [`kernel::resume`](crate::kernel::resume)).
#[derive(Clone, Debug, PartialEq)]
pub enum ResumeError {
    /// The continued run itself failed (task abandoned, all workers down).
    Engine(EngineError),
    /// The snapshot is internally inconsistent or does not match the
    /// supplied workload/platform.
    BadSnapshot(String),
    /// Replay emitted a different event than the journal recorded at
    /// `index` — the workload, policy, or fault model differs from the
    /// recorded run.
    Divergence { index: usize, expected: SchedEvent, got: SchedEvent },
    /// Replay completed but produced fewer events than the journal holds —
    /// the journal belongs to a longer (different) run.
    ShortReplay { produced: usize, journaled: usize },
    /// Reading the journal itself failed.
    Journal(JournalError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Engine(e) => write!(f, "resumed run failed: {e:?}"),
            ResumeError::BadSnapshot(why) => write!(f, "bad snapshot: {why}"),
            ResumeError::Divergence { index, expected, got } => write!(
                f,
                "replay diverged from the journal at event {index}: journal has {expected:?}, \
                 replay produced {got:?} (workload/policy/faults differ from the recorded run?)"
            ),
            ResumeError::ShortReplay { produced, journaled } => write!(
                f,
                "replay finished after {produced} events but the journal holds {journaled} \
                 (journal belongs to a different run?)"
            ),
            ResumeError::Journal(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<EngineError> for ResumeError {
    fn from(e: EngineError) -> Self {
        ResumeError::Engine(e)
    }
}

impl From<JournalError> for ResumeError {
    fn from(e: JournalError) -> Self {
        ResumeError::Journal(e)
    }
}

impl From<ResumeError> for String {
    fn from(e: ResumeError) -> Self {
        e.to_string()
    }
}

/// Rebuild the [`Schedule`] encoded by a journaled event prefix.
///
/// Starts are tracked from `TaskStart` events rather than derived as
/// `time − wasted_work` (a float round-trip that is not bit-exact), so the
/// rebuilt intervals equal the crashed kernel's `schedule` field exactly.
/// Push order is preserved: completions append to `runs` in
/// `TaskComplete` order; spoliation victims, failed attempts, and runs
/// lost to worker deaths append to `aborted` in event order — the same
/// order the live kernel pushes them.
pub fn schedule_from_events(events: &[SchedEvent]) -> Schedule {
    let mut open: Vec<Option<(u32, f64)>> = Vec::new();
    let slot = |w: u32, open: &mut Vec<Option<(u32, f64)>>| {
        if open.len() <= w as usize {
            open.resize(w as usize + 1, None);
        }
        w as usize
    };
    let mut schedule = Schedule::new();
    for e in events {
        match *e {
            SchedEvent::TaskStart { time, task, worker, .. } => {
                let i = slot(worker, &mut open);
                open[i] = Some((task, time));
            }
            SchedEvent::TaskComplete { time, worker, .. } => {
                let i = slot(worker, &mut open);
                if let Some((task, start)) = open[i].take() {
                    schedule.runs.push(TaskRun {
                        task: TaskId(task),
                        worker: WorkerId(worker),
                        start,
                        end: time,
                    });
                }
            }
            SchedEvent::Spoliation { time, victim, .. } => {
                let i = slot(victim, &mut open);
                if let Some((task, start)) = open[i].take() {
                    schedule.aborted.push(TaskRun {
                        task: TaskId(task),
                        worker: WorkerId(victim),
                        start,
                        end: time,
                    });
                }
            }
            SchedEvent::TaskFailed { time, worker, .. } => {
                let i = slot(worker, &mut open);
                if let Some((task, start)) = open[i].take() {
                    schedule.aborted.push(TaskRun {
                        task: TaskId(task),
                        worker: WorkerId(worker),
                        start,
                        end: time,
                    });
                }
            }
            SchedEvent::WorkerDown { time, worker, lost_task: Some(_), .. } => {
                let i = slot(worker, &mut open);
                if let Some((task, start)) = open[i].take() {
                    schedule.aborted.push(TaskRun {
                        task: TaskId(task),
                        worker: WorkerId(worker),
                        start,
                        end: time,
                    });
                }
            }
            _ => {}
        }
    }
    schedule
}

/// How many appends share one `journal_append_ns` observation: the
/// latency histogram samples 1-in-16 so the two clock reads per sample do
/// not tax the group-commit fast path (sub-microsecond buffered appends).
/// Counters stay exact.
const APPEND_SAMPLE: u64 = 16;

/// A [`Journal`] wrapper that meters every append and sync through
/// `crates/metrics`: count, bytes, and latency histograms (see
/// [`metric`]). Lives in core — not trace — so the trace crate stays
/// dependency-free.
pub struct MeteredJournal<'m, J: Journal, M: MetricsRegistry + ?Sized> {
    inner: J,
    m: &'m M,
    appends: CounterId,
    syncs: CounterId,
    bytes: CounterId,
    append_ns: HistogramId,
    sync_ns: HistogramId,
    /// Appends so far, for [`APPEND_SAMPLE`] latency sampling.
    tick: u64,
    /// Inner [`Journal::syncs`] already reflected in the counter — so
    /// cadence-triggered group commits inside `append` are counted too,
    /// not only the syncs this wrapper initiates.
    seen_syncs: u64,
}

impl<'m, J: Journal, M: MetricsRegistry + ?Sized> MeteredJournal<'m, J, M> {
    pub fn new(inner: J, m: &'m M) -> Self {
        MeteredJournal {
            inner,
            m,
            appends: m.counter(metric::JOURNAL_APPENDS_TOTAL),
            syncs: m.counter(metric::JOURNAL_SYNCS_TOTAL),
            bytes: m.counter(metric::JOURNAL_BYTES_TOTAL),
            append_ns: m.histogram(metric::JOURNAL_APPEND_NS),
            sync_ns: m.histogram(metric::JOURNAL_SYNC_NS),
            tick: 0,
            seen_syncs: 0,
        }
    }

    pub fn inner(&self) -> &J {
        &self.inner
    }

    pub fn into_inner(self) -> J {
        self.inner
    }

    fn note_syncs(&mut self) {
        let done = self.inner.syncs();
        if done > self.seen_syncs {
            let fresh = done.checked_sub(self.seen_syncs).expect("guarded by done > seen_syncs");
            self.m.inc_by(self.syncs, fresh);
            self.seen_syncs = done;
        }
    }
}

impl<J: Journal, M: MetricsRegistry + ?Sized> Journal for MeteredJournal<'_, J, M> {
    fn append(&mut self, event: &SchedEvent) -> Result<usize, JournalError> {
        let clock = self.tick.is_multiple_of(APPEND_SAMPLE).then(Stopwatch::start);
        self.tick += 1;
        let written = self.inner.append(event)?;
        if let Some(clock) = clock {
            self.m.observe(self.append_ns, clock.elapsed_ns());
        }
        self.m.inc(self.appends);
        self.m.inc_by(self.bytes, written as u64);
        self.note_syncs();
        Ok(written)
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        let clock = Stopwatch::start();
        self.inner.sync()?;
        self.m.observe(self.sync_ns, clock.elapsed_ns());
        self.note_syncs();
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn replay(&mut self) -> Result<Vec<SchedEvent>, JournalError> {
        self.inner.replay()
    }

    fn syncs(&self) -> u64 {
        self.inner.syncs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_metrics::InMemoryRegistry;
    use heteroprio_trace::MemJournal;

    fn sample_snapshot() -> KernelSnapshot {
        KernelSnapshot {
            now: 3.25,
            events_seen: 17,
            workers: 3,
            tasks: 4,
            state: vec![TaskState::Done, TaskState::Running, TaskState::Ready, TaskState::Waiting],
            ran_kind: vec![Some(ClassId(1)), None, None, Some(ClassId(0))],
            running: vec![Some(RunningTask { task: TaskId(1), start: 2.5, end: 4.1 }), None, None],
            generation: vec![2, 0, 1],
            heap: vec![(4.05, 0, 2)],
            idle: vec![1, 2],
            idle_announced: vec![false, true, true],
            alive: vec![true, true, false],
            will_fail: vec![true, false, false],
            failures: vec![0, 1, 0, 2],
            timeline_pos: 1,
            retries: vec![(5.5, 3)],
            rng: Some([u64::MAX, 1, 0x0123_4567_89AB_CDEF, 42]),
            ready: vec![TaskId(2)],
        }
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let back = KernelSnapshot::parse(&text).expect("parse");
        assert_eq!(back, snap);
        // Awkward floats survive the text round trip bit-for-bit.
        let mut snap = snap;
        snap.now = 0.1 + 0.2;
        snap.heap[0].0 = f64::MIN_POSITIVE;
        assert_eq!(KernelSnapshot::parse(&snap.to_json()).expect("parse"), snap);
    }

    #[test]
    fn snapshot_validation_rejects_inconsistency() {
        let mut snap = sample_snapshot();
        snap.ready = vec![TaskId(0)]; // task 0 is Done, not Ready
        assert!(!snap.to_json().is_empty());
        let err = KernelSnapshot::parse(&snap.to_json()).unwrap_err();
        assert!(err.contains("not ready"), "{err}");
    }

    #[test]
    fn file_checkpoint_store_replaces_atomically_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("hp-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("snap.ckpt");
        let mut store = FileCheckpointStore::new(&path);
        let mut snap = sample_snapshot();
        store.save(&snap).expect("save 1");
        snap.events_seen = 99;
        store.save(&snap).expect("save 2");
        assert_eq!(store.saves, 2);
        let (loaded, damage) = FileCheckpointStore::load(&path);
        assert!(damage.is_none(), "{damage:?}");
        assert_eq!(loaded.expect("snapshot").events_seen, 99);

        // Flip a payload byte: the load reports damage and yields nothing.
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let (loaded, damage) = FileCheckpointStore::load(&path);
        assert!(loaded.is_none());
        assert!(damage.expect("damage note").contains("CRC"));

        // A missing file is simply "no checkpoint yet".
        let (loaded, damage) = FileCheckpointStore::load(dir.join("absent.ckpt"));
        assert!(loaded.is_none() && damage.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_rebuild_tracks_starts_and_abort_order() {
        let events = [
            SchedEvent::TaskStart { time: 0.0, task: 0, worker: 1, expected_end: 10.0 },
            SchedEvent::TaskStart { time: 0.0, task: 1, worker: 0, expected_end: 7.0 },
            SchedEvent::TaskFailed { time: 2.0, task: 1, worker: 0, lost_work: 2.0, attempt: 1 },
            SchedEvent::Spoliation { time: 3.0, task: 0, victim: 1, thief: 2, wasted_work: 3.0 },
            SchedEvent::TaskStart { time: 3.0, task: 0, worker: 2, expected_end: 4.0 },
            SchedEvent::TaskComplete { time: 4.0, task: 0, worker: 2 },
        ];
        let schedule = schedule_from_events(&events);
        assert_eq!(
            schedule.runs,
            vec![TaskRun { task: TaskId(0), worker: WorkerId(2), start: 3.0, end: 4.0 }]
        );
        assert_eq!(
            schedule.aborted,
            vec![
                TaskRun { task: TaskId(1), worker: WorkerId(0), start: 0.0, end: 2.0 },
                TaskRun { task: TaskId(0), worker: WorkerId(1), start: 0.0, end: 3.0 },
            ]
        );
    }

    #[test]
    fn metered_journal_counts_appends_bytes_and_syncs() {
        let registry = InMemoryRegistry::new();
        let mut journal = MeteredJournal::new(MemJournal::new(), &registry);
        let e = SchedEvent::TaskReady { time: 0.0, task: 7 };
        let written = journal.append(&e).expect("append");
        journal.append(&e).expect("append");
        journal.sync().expect("sync");
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.replay().expect("replay"), vec![e, e]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(metric::JOURNAL_APPENDS_TOTAL), Some(2));
        assert_eq!(snap.counter(metric::JOURNAL_SYNCS_TOTAL), Some(1));
        assert_eq!(snap.counter(metric::JOURNAL_BYTES_TOTAL), Some(2 * written as u64));
    }
}
