//! The scheduling model of the paper: independent tasks with unrelated
//! processing times on two resource classes (CPUs and GPUs).

use std::fmt;

/// Identifier of a task; an index into the owning [`Instance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One of the two unrelated resource classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResourceKind {
    Cpu,
    Gpu,
}

impl ResourceKind {
    /// The other resource class (spoliation always crosses classes).
    #[inline]
    pub fn other(self) -> ResourceKind {
        match self {
            ResourceKind::Cpu => ResourceKind::Gpu,
            ResourceKind::Gpu => ResourceKind::Cpu,
        }
    }

    pub const BOTH: [ResourceKind; 2] = [ResourceKind::Cpu, ResourceKind::Gpu];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => write!(f, "CPU"),
            ResourceKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// Identifier of a worker (a single CPU core or a single GPU).
///
/// Workers `0..platform.cpus` are CPUs; the rest are GPUs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Why a [`Platform`] or [`Task`] could not be constructed.
///
/// The `Display` output is stable: the panicking constructors delegate to
/// the fallible ones and reuse these messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// The platform has no worker of the named class.
    EmptyClass(ResourceKind),
    /// A task time is NaN, infinite, zero or negative.
    BadTaskTime { field: &'static str, value: f64 },
    /// A task priority is NaN or infinite.
    BadPriority { value: f64 },
    /// The acceleration factor ρ = p/q is not positive and finite: the
    /// times are individually representable but their ratio overflows,
    /// underflows to zero, or is NaN. A non-finite ρ would poison every
    /// ordering comparison in the ready queue.
    NonFiniteAccel { cpu_time: f64, gpu_time: f64 },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyClass(kind) => write!(f, "platform needs at least one {kind}"),
            ModelError::BadTaskTime { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ModelError::BadPriority { value } => {
                write!(f, "priority must be finite, got {value}")
            }
            ModelError::NonFiniteAccel { cpu_time, gpu_time } => {
                write!(
                    f,
                    "acceleration factor cpu_time/gpu_time must be positive and finite, \
                     got {}/{} = {}",
                    cpu_time,
                    gpu_time,
                    cpu_time / gpu_time
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A heterogeneous node: `m` CPUs and `n` GPUs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Platform {
    pub cpus: usize,
    pub gpus: usize,
}

impl Platform {
    /// A platform with `cpus` CPU workers and `gpus` GPU workers.
    ///
    /// Panics if either class is empty: the model (and every bound in the
    /// paper) assumes both classes are present. Use
    /// [`try_new`](Platform::try_new) to validate untrusted input.
    pub fn new(cpus: usize, gpus: usize) -> Self {
        match Platform::try_new(cpus, gpus) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Platform::new): rejects zero-worker classes with a
    /// typed error instead of panicking (or, downstream, starving the
    /// simulator of an entire resource class).
    pub fn try_new(cpus: usize, gpus: usize) -> Result<Self, ModelError> {
        if cpus == 0 {
            return Err(ModelError::EmptyClass(ResourceKind::Cpu));
        }
        if gpus == 0 {
            return Err(ModelError::EmptyClass(ResourceKind::Gpu));
        }
        Ok(Platform { cpus, gpus })
    }

    #[inline]
    pub fn workers(&self) -> usize {
        self.cpus + self.gpus
    }

    #[inline]
    pub fn kind_of(&self, w: WorkerId) -> ResourceKind {
        if w.index() < self.cpus {
            ResourceKind::Cpu
        } else {
            ResourceKind::Gpu
        }
    }

    #[inline]
    pub fn count(&self, kind: ResourceKind) -> usize {
        match kind {
            ResourceKind::Cpu => self.cpus,
            ResourceKind::Gpu => self.gpus,
        }
    }

    /// All worker ids of one class, in increasing id order.
    pub fn workers_of(&self, kind: ResourceKind) -> impl Iterator<Item = WorkerId> + '_ {
        let (lo, hi) = match kind {
            ResourceKind::Cpu => (0, self.cpus),
            ResourceKind::Gpu => (self.cpus, self.workers()),
        };
        (lo..hi).map(|i| WorkerId(i as u32))
    }

    /// All worker ids, CPUs first.
    pub fn all_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers()).map(|i| WorkerId(i as u32))
    }
}

/// A task with unrelated processing times on the two classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Task {
    /// Processing time on a single CPU core (`p_i` in the paper).
    pub cpu_time: f64,
    /// Processing time on a single GPU (`q_i` in the paper).
    pub gpu_time: f64,
    /// Offline priority (e.g. a bottom-level rank); used only for
    /// tie-breaking. Larger means more urgent. Defaults to 0.
    pub priority: f64,
}

impl Task {
    /// Panics on NaN, infinite, zero or negative times. Use
    /// [`try_new`](Task::try_new) to validate untrusted input.
    pub fn new(cpu_time: f64, gpu_time: f64) -> Self {
        match Task::try_new(cpu_time, gpu_time) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Task::new): rejects NaN, infinite, zero and
    /// negative processing times with a typed error, and — even when both
    /// times are individually valid — a ratio ρ = p/q that overflows to
    /// infinity or underflows to zero (e.g. `1e308 / 1e-308`). A task that
    /// passes construction therefore always has a positive finite
    /// acceleration factor, which the ready-queue ordering relies on.
    pub fn try_new(cpu_time: f64, gpu_time: f64) -> Result<Self, ModelError> {
        if !(cpu_time > 0.0 && cpu_time.is_finite()) {
            return Err(ModelError::BadTaskTime { field: "cpu_time", value: cpu_time });
        }
        if !(gpu_time > 0.0 && gpu_time.is_finite()) {
            return Err(ModelError::BadTaskTime { field: "gpu_time", value: gpu_time });
        }
        let rho = cpu_time / gpu_time;
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(ModelError::NonFiniteAccel { cpu_time, gpu_time });
        }
        Ok(Task { cpu_time, gpu_time, priority: 0.0 })
    }

    pub fn with_priority(mut self, priority: f64) -> Self {
        self.priority = priority;
        self
    }

    /// Fallible [`with_priority`](Task::with_priority): rejects NaN and
    /// infinite priorities (they would poison every tie-break comparison).
    pub fn try_with_priority(mut self, priority: f64) -> Result<Self, ModelError> {
        if !priority.is_finite() {
            return Err(ModelError::BadPriority { value: priority });
        }
        self.priority = priority;
        Ok(self)
    }

    /// Acceleration factor ρ = p/q. May be below 1 when the task runs
    /// faster on CPU than on GPU.
    ///
    /// Always positive and finite for tasks built through
    /// [`try_new`](Task::try_new) / [`new`](Task::new); tasks assembled
    /// from raw public fields can evade that guarantee, which is why the
    /// queue goes through [`try_accel_factor`](Task::try_accel_factor).
    #[inline]
    pub fn accel_factor(&self) -> f64 {
        self.cpu_time / self.gpu_time
    }

    /// Checked [`accel_factor`](Task::accel_factor): returns a typed error
    /// when ρ is NaN, infinite or non-positive instead of letting the
    /// poisoned value reach an ordering comparison. This is the accessor
    /// the ready queue uses, so a task smuggled past [`Task::try_new`]
    /// (public fields, unvalidated [`Instance::from_tasks`]) is rejected
    /// at the queue boundary rather than silently corrupting queue order.
    #[inline]
    pub fn try_accel_factor(&self) -> Result<f64, ModelError> {
        let rho = self.cpu_time / self.gpu_time;
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(ModelError::NonFiniteAccel {
                cpu_time: self.cpu_time,
                gpu_time: self.gpu_time,
            });
        }
        Ok(rho)
    }

    /// Processing time on the given resource class.
    #[inline]
    pub fn time_on(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu_time,
            ResourceKind::Gpu => self.gpu_time,
        }
    }

    /// `min(p, q)` — a trivial lower bound on the task's completion time.
    #[inline]
    pub fn min_time(&self) -> f64 {
        self.cpu_time.min(self.gpu_time)
    }

    /// `max(p, q)`.
    #[inline]
    pub fn max_time(&self) -> f64 {
        self.cpu_time.max(self.gpu_time)
    }
}

/// A set of independent tasks (the instance `I` of the paper).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Instance {
    tasks: Vec<Task>,
}

impl Instance {
    pub fn new() -> Self {
        Instance { tasks: Vec::new() }
    }

    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        Instance { tasks }
    }

    /// Convenience constructor from `(cpu_time, gpu_time)` pairs.
    pub fn from_times(times: &[(f64, f64)]) -> Self {
        Instance { tasks: times.iter().map(|&(p, q)| Task::new(p, q)).collect() }
    }

    /// Append a task, returning its id.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        self.tasks.push(task);
        id
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        self.tasks.get(id.index()).expect("TaskId minted by this instance")
    }

    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Update the tie-breaking priority of one task.
    #[inline]
    pub fn set_priority(&mut self, id: TaskId, priority: f64) {
        self.tasks.get_mut(id.index()).expect("TaskId minted by this instance").priority = priority;
    }

    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(|i| TaskId(i as u32))
    }

    /// Total work if every task ran on its CPU time.
    pub fn total_cpu_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cpu_time).sum()
    }

    /// Total work if every task ran on its GPU time.
    pub fn total_gpu_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.gpu_time).sum()
    }

    /// `max_i min(p_i, q_i)` — a trivial lower bound on the optimal makespan
    /// (each task must run somewhere, at best on its favourite resource).
    pub fn max_min_time(&self) -> f64 {
        self.tasks.iter().map(Task::min_time).fold(0.0, f64::max)
    }

    /// Restrict to a subset of tasks (preserving times and priorities).
    /// Returns the sub-instance and the mapping from new ids to old ids.
    pub fn subset(&self, ids: &[TaskId]) -> (Instance, Vec<TaskId>) {
        let tasks = ids.iter().map(|&id| *self.task(id)).collect();
        (Instance { tasks }, ids.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_worker_classes() {
        let p = Platform::new(3, 2);
        assert_eq!(p.workers(), 5);
        assert_eq!(p.kind_of(WorkerId(0)), ResourceKind::Cpu);
        assert_eq!(p.kind_of(WorkerId(2)), ResourceKind::Cpu);
        assert_eq!(p.kind_of(WorkerId(3)), ResourceKind::Gpu);
        assert_eq!(p.kind_of(WorkerId(4)), ResourceKind::Gpu);
        let cpus: Vec<_> = p.workers_of(ResourceKind::Cpu).collect();
        assert_eq!(cpus, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        let gpus: Vec<_> = p.workers_of(ResourceKind::Gpu).collect();
        assert_eq!(gpus, vec![WorkerId(3), WorkerId(4)]);
        assert_eq!(p.count(ResourceKind::Cpu), 3);
        assert_eq!(p.count(ResourceKind::Gpu), 2);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn platform_rejects_zero_cpus() {
        let _ = Platform::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn platform_rejects_zero_gpus() {
        let _ = Platform::new(1, 0);
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(28.8, 1.0);
        assert_eq!(t.accel_factor(), 28.8);
        assert_eq!(t.time_on(ResourceKind::Cpu), 28.8);
        assert_eq!(t.time_on(ResourceKind::Gpu), 1.0);
        assert_eq!(t.min_time(), 1.0);
        assert_eq!(t.max_time(), 28.8);
    }

    #[test]
    fn resource_kind_other_flips() {
        assert_eq!(ResourceKind::Cpu.other(), ResourceKind::Gpu);
        assert_eq!(ResourceKind::Gpu.other(), ResourceKind::Cpu);
    }

    #[test]
    #[should_panic(expected = "cpu_time")]
    fn task_rejects_nonpositive_time() {
        let _ = Task::new(0.0, 1.0);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(Platform::try_new(0, 1), Err(ModelError::EmptyClass(ResourceKind::Cpu)));
        assert_eq!(Platform::try_new(1, 0), Err(ModelError::EmptyClass(ResourceKind::Gpu)));
        assert!(Platform::try_new(2, 3).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Task::try_new(bad, 1.0),
                Err(ModelError::BadTaskTime { field: "cpu_time", .. })
            ));
            assert!(matches!(
                Task::try_new(1.0, bad),
                Err(ModelError::BadTaskTime { field: "gpu_time", .. })
            ));
        }
        assert!(Task::try_new(1.0, 2.0).is_ok());
        assert!(matches!(
            Task::new(1.0, 1.0).try_with_priority(f64::NAN),
            Err(ModelError::BadPriority { .. })
        ));
        assert_eq!(Task::new(1.0, 1.0).try_with_priority(3.0).unwrap().priority, 3.0);
        // Display messages stay aligned with the panicking constructors.
        assert_eq!(
            ModelError::EmptyClass(ResourceKind::Cpu).to_string(),
            "platform needs at least one CPU"
        );
        assert_eq!(
            ModelError::BadTaskTime { field: "cpu_time", value: -1.0 }.to_string(),
            "cpu_time must be positive and finite, got -1"
        );
    }

    #[test]
    fn ratio_overflow_is_rejected_at_construction() {
        // Both times pass the per-field checks, but p/q overflows to ∞
        // (or underflows to 0 the other way round). Construction must fail
        // with the typed error instead of smuggling a non-finite ρ into
        // the queue ordering.
        let err = Task::try_new(1e308, 1e-308).unwrap_err();
        match err {
            ModelError::NonFiniteAccel { cpu_time, gpu_time } => {
                assert_eq!(cpu_time, 1e308);
                assert_eq!(gpu_time, 1e-308);
            }
            other => panic!("expected NonFiniteAccel, got {other:?}"),
        }
        assert!(matches!(Task::try_new(1e-308, 1e308), Err(ModelError::NonFiniteAccel { .. })));
        // The checked accessor catches tasks assembled from raw fields.
        let smuggled = Task { cpu_time: f64::INFINITY, gpu_time: 1.0, priority: 0.0 };
        assert!(matches!(smuggled.try_accel_factor(), Err(ModelError::NonFiniteAccel { .. })));
        let zero_q = Task { cpu_time: 1.0, gpu_time: 0.0, priority: 0.0 };
        assert!(matches!(zero_q.try_accel_factor(), Err(ModelError::NonFiniteAccel { .. })));
        let ok = Task::new(3.0, 2.0);
        assert_eq!(ok.try_accel_factor().unwrap(), 1.5);
        // The error message names both times and the poisoned ratio.
        let msg = ModelError::NonFiniteAccel { cpu_time: 1.0, gpu_time: 0.0 }.to_string();
        assert!(msg.contains("positive and finite"), "{msg}");
        assert!(msg.contains("inf"), "{msg}");
    }

    #[test]
    fn instance_aggregates() {
        let inst = Instance::from_times(&[(2.0, 1.0), (3.0, 6.0)]);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.total_cpu_work(), 5.0);
        assert_eq!(inst.total_gpu_work(), 7.0);
        // min times are 1.0 and 3.0
        assert_eq!(inst.max_min_time(), 3.0);
    }

    #[test]
    fn instance_subset_preserves_tasks() {
        let inst = Instance::from_times(&[(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]);
        let (sub, map) = inst.subset(&[TaskId(2), TaskId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.task(TaskId(0)).cpu_time, 5.0);
        assert_eq!(sub.task(TaskId(1)).cpu_time, 1.0);
        assert_eq!(map, vec![TaskId(2), TaskId(0)]);
    }
}
