//! The scheduling model of the paper, generalized to `k` resource classes.
//!
//! The paper analyzes exactly two unrelated resource classes (CPUs and
//! GPUs). This module keeps that case canonical — [`Platform::new`] and
//! [`Task::new`] still build the two-class instantiation, and
//! [`compat::ResourceKind`] survives as the `k = 2` vocabulary — but the
//! underlying model is a runtime-sized list of classes: a [`ClassTable`]
//! names them, a [`Platform`] counts workers per class, and every [`Task`]
//! carries a per-class time vector. The acceleration factor ρ = p/q
//! generalizes to per-class-pair affinity ratios
//! ([`Task::affinity`]).

use std::fmt;

pub mod compat;

pub use compat::ResourceKind;

/// Compile-time cap on the number of resource classes.
///
/// Keeping the cap small lets [`Task`] and [`Platform`] stay `Copy` with
/// inline arrays instead of heap-allocated vectors — the kernel copies and
/// compares these structs in its hot loop. Four covers every platform the
/// roadmap names (CPU+GPU, CPU+GPU+FPGA, big.LITTLE, an accelerator pool).
pub const MAX_CLASSES: usize = 4;

/// Stable field names for per-class task times in error messages.
///
/// Classes 0 and 1 keep the paper's `p`/`q` vocabulary so the two-class
/// error strings are unchanged.
const TIME_FIELD: [&str; MAX_CLASSES] = ["cpu_time", "gpu_time", "time[2]", "time[3]"];

/// Identifier of a task; an index into the owning [`Instance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a resource class; an index into the platform's class list.
///
/// Class `0` is canonically the CPU pool and class `1` the GPU pool (the
/// paper's two classes); further classes are whatever the [`ClassTable`]
/// says they are. Compare directly against
/// [`ResourceKind`] — `class == ResourceKind::Cpu`
/// works through the [`compat`] bridge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl ClassId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for ClassId {
    #[inline]
    fn from(i: usize) -> Self {
        ClassId(u16::try_from(i).expect("class index fits in u16"))
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ClassId {
    /// Default class labels: the canonical two keep the paper's names,
    /// further classes are positional. A [`ClassTable`] gives real names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "CPU"),
            1 => write!(f, "GPU"),
            n => write!(f, "C{n}"),
        }
    }
}

/// Identifier of a worker (a single CPU core, GPU, or other device).
///
/// Workers are numbered by class blocks: ids `0..counts[0]` belong to
/// class 0, the next `counts[1]` to class 1, and so on. On a two-class
/// platform this is the original layout: `0..platform.cpus()` are CPUs,
/// the rest are GPUs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Why a [`Platform`], [`Task`] or [`ClassTable`] could not be constructed.
///
/// The `Display` output is stable: the panicking constructors delegate to
/// the fallible ones and reuse these messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// The platform has no worker of the named class.
    EmptyClass(ClassId),
    /// A task time is NaN, infinite, zero or negative.
    BadTaskTime { field: &'static str, value: f64 },
    /// A task priority is NaN or infinite.
    BadPriority { value: f64 },
    /// The acceleration factor ρ = p/q is not positive and finite: the
    /// times are individually representable but their ratio overflows,
    /// underflows to zero, or is NaN. A non-finite ρ would poison every
    /// ordering comparison in the ready queue. For `k > 2` the offending
    /// pair of times is reported in the two fields.
    NonFiniteAccel { cpu_time: f64, gpu_time: f64 },
    /// More classes than [`MAX_CLASSES`] (or fewer than two).
    BadClassCount { requested: usize },
    /// A `name=count` platform spec that does not parse.
    BadClassSpec { reason: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyClass(class) => write!(f, "platform needs at least one {class}"),
            ModelError::BadTaskTime { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ModelError::BadPriority { value } => {
                write!(f, "priority must be finite, got {value}")
            }
            ModelError::NonFiniteAccel { cpu_time, gpu_time } => {
                write!(
                    f,
                    "acceleration factor cpu_time/gpu_time must be positive and finite, \
                     got {}/{} = {}",
                    cpu_time,
                    gpu_time,
                    cpu_time / gpu_time
                )
            }
            ModelError::BadClassCount { requested } => {
                write!(f, "platform needs 2..={MAX_CLASSES} resource classes, got {requested}")
            }
            ModelError::BadClassSpec { reason } => write!(f, "invalid platform spec: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Runtime description of the resource classes: their names and worker
/// counts. This is the data that replaces the hard-wired CPU/GPU
/// dichotomy — a [`Platform`] is its anonymous (counts-only) projection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassTable {
    names: Vec<String>,
    counts: Vec<usize>,
}

impl ClassTable {
    /// Build a table from `(name, worker count)` pairs.
    pub fn new<S: AsRef<str>>(classes: &[(S, usize)]) -> Result<Self, ModelError> {
        if classes.len() < 2 || classes.len() > MAX_CLASSES {
            return Err(ModelError::BadClassCount { requested: classes.len() });
        }
        let mut names = Vec::with_capacity(classes.len());
        let mut counts = Vec::with_capacity(classes.len());
        for (i, (name, count)) in classes.iter().enumerate() {
            let name = name.as_ref();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(ModelError::BadClassSpec {
                    reason: format!("class name {name:?} must be non-empty [A-Za-z0-9_]"),
                });
            }
            if names.iter().any(|n: &String| n.eq_ignore_ascii_case(name)) {
                return Err(ModelError::BadClassSpec {
                    reason: format!("duplicate class name {name:?}"),
                });
            }
            // lint: allow(unchecked-arith): prefix deref of a class count, not arithmetic.
            if *count == 0 {
                return Err(ModelError::EmptyClass(ClassId::from(i)));
            }
            names.push(name.to_string());
            // lint: allow(unchecked-arith): prefix deref of a class count, not arithmetic.
            counts.push(*count);
        }
        Ok(ClassTable { names, counts })
    }

    /// The canonical two-class table of the paper: `cpu=m,gpu=n`.
    pub fn cpu_gpu(cpus: usize, gpus: usize) -> Result<Self, ModelError> {
        ClassTable::new(&[("cpu", cpus), ("gpu", gpus)])
    }

    /// Parse a `name=count[,name=count...]` spec, e.g. `cpu=16,gpu=4,fpga=2`.
    ///
    /// [`spec`](ClassTable::spec) is the inverse: `parse(t.spec()) == t`.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        let mut classes = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (name, count) = part.split_once('=').ok_or_else(|| ModelError::BadClassSpec {
                reason: format!("expected name=count, got {part:?}"),
            })?;
            let count: usize = count.trim().parse().map_err(|_| ModelError::BadClassSpec {
                reason: format!("bad worker count {:?} for class {:?}", count.trim(), name),
            })?;
            classes.push((name.trim().to_string(), count));
        }
        ClassTable::new(&classes)
    }

    /// Render back to the `name=count[,name=count...]` grammar.
    pub fn spec(&self) -> String {
        self.names
            .iter()
            .zip(&self.counts)
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    #[inline]
    pub fn k(&self) -> usize {
        self.names.len()
    }

    #[inline]
    pub fn name(&self, class: ClassId) -> &str {
        self.names.get(class.index()).expect("ClassId minted by this table")
    }

    #[inline]
    pub fn count(&self, class: ClassId) -> usize {
        // lint: allow(unchecked-arith): prefix deref of a class count, not arithmetic.
        *self.counts.get(class.index()).expect("ClassId minted by this table")
    }

    /// Look a class up by (case-insensitive) name.
    pub fn id_of(&self, name: &str) -> Option<ClassId> {
        self.names.iter().position(|n| n.eq_ignore_ascii_case(name)).map(ClassId::from)
    }

    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.k()).map(ClassId::from)
    }

    /// The anonymous worker-count projection used by the kernel.
    pub fn platform(&self) -> Platform {
        Platform::from_counts(&self.counts)
    }
}

/// A heterogeneous node: a worker count per resource class.
///
/// The canonical instantiation is the paper's `m` CPUs + `n` GPUs
/// ([`Platform::new`]); [`Platform::from_counts`] builds the general
/// `k`-class shape. Stays `Copy` via an inline count array (see
/// [`MAX_CLASSES`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Platform {
    counts: [usize; MAX_CLASSES],
    k: u8,
}

impl Platform {
    /// A two-class platform with `cpus` CPU workers and `gpus` GPU workers.
    ///
    /// Panics if either class is empty: the model (and every bound in the
    /// paper) assumes both classes are present. Use
    /// [`try_new`](Platform::try_new) to validate untrusted input.
    pub fn new(cpus: usize, gpus: usize) -> Self {
        match Platform::try_new(cpus, gpus) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Platform::new): rejects zero-worker classes with a
    /// typed error instead of panicking (or, downstream, starving the
    /// simulator of an entire resource class).
    pub fn try_new(cpus: usize, gpus: usize) -> Result<Self, ModelError> {
        Platform::try_from_counts(&[cpus, gpus])
    }

    /// A `k`-class platform from per-class worker counts. Panics on an
    /// empty class or an unsupported class count.
    pub fn from_counts(counts: &[usize]) -> Self {
        match Platform::try_from_counts(counts) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`from_counts`](Platform::from_counts): every class must
    /// have at least one worker and `2 <= k <= MAX_CLASSES`.
    pub fn try_from_counts(counts: &[usize]) -> Result<Self, ModelError> {
        if counts.len() < 2 || counts.len() > MAX_CLASSES {
            return Err(ModelError::BadClassCount { requested: counts.len() });
        }
        let mut inline = [0usize; MAX_CLASSES];
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                return Err(ModelError::EmptyClass(ClassId::from(i)));
            }
            inline[i] = c;
        }
        Ok(Platform { counts: inline, k: counts.len() as u8 })
    }

    /// Number of resource classes.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Worker count of class 0 (the paper's `m` CPUs).
    #[inline]
    pub fn cpus(&self) -> usize {
        self.counts[0]
    }

    /// Worker count of class 1 (the paper's `n` GPUs).
    #[inline]
    pub fn gpus(&self) -> usize {
        self.counts[1]
    }

    #[inline]
    pub fn workers(&self) -> usize {
        self.counts[..self.k()].iter().sum()
    }

    /// The resource class of a worker. Workers are numbered in class
    /// blocks: class 0 first, then class 1, and so on.
    #[inline]
    pub fn class_of(&self, w: WorkerId) -> ClassId {
        let mut rest = w.index();
        for c in 0..self.k() {
            if rest < self.counts[c] {
                return ClassId::from(c);
            }
            // lint: allow(unchecked-arith): worker-id geometry over fixed class sizes.
            rest -= self.counts[c];
        }
        panic!("worker {} out of range (platform has {})", w.0, self.workers())
    }

    /// Two-class compatibility accessor: [`class_of`](Platform::class_of)
    /// mapped onto [`ResourceKind`]. Panics on a `k > 2` platform — code
    /// that may see more classes must use `class_of`.
    #[inline]
    pub fn kind_of(&self, w: WorkerId) -> ResourceKind {
        debug_assert!(self.k() == 2, "kind_of on a {}-class platform; use class_of", self.k());
        if w.index() < self.counts[0] {
            ResourceKind::Cpu
        } else {
            ResourceKind::Gpu
        }
    }

    #[inline]
    pub fn count(&self, class: impl Into<ClassId>) -> usize {
        let class = class.into();
        assert!(class.index() < self.k(), "class {class} out of range (k = {})", self.k());
        self.counts[class.index()]
    }

    /// Worker-id range `[lo, hi)` of one class.
    #[inline]
    fn class_range(&self, class: ClassId) -> (usize, usize) {
        assert!(class.index() < self.k(), "class {class} out of range (k = {})", self.k());
        let lo: usize = self.counts[..class.index()].iter().sum();
        // lint: allow(unchecked-arith): worker-id geometry over fixed class sizes.
        (lo, lo + self.counts[class.index()])
    }

    /// All worker ids of one class, in increasing id order.
    pub fn workers_of(&self, class: impl Into<ClassId>) -> impl Iterator<Item = WorkerId> + '_ {
        let (lo, hi) = self.class_range(class.into());
        (lo..hi).map(|i| WorkerId(i as u32))
    }

    /// All worker ids, class 0 first.
    pub fn all_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers()).map(|i| WorkerId(i as u32))
    }

    /// All class ids, in index order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.k()).map(ClassId::from)
    }
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform").field("counts", &&self.counts[..self.k()]).finish()
    }
}

/// A task with unrelated processing times on each resource class.
///
/// The canonical two-class constructor [`Task::new`] takes the paper's
/// `(p_i, q_i)`; [`Task::from_times`] builds the general per-class time
/// vector. Stays `Copy` via an inline array (see [`MAX_CLASSES`]).
#[derive(Clone, Copy, PartialEq)]
pub struct Task {
    times: [f64; MAX_CLASSES],
    k: u8,
    /// Offline priority (e.g. a bottom-level rank); used only for
    /// tie-breaking. Larger means more urgent. Defaults to 0.
    pub priority: f64,
}

impl Task {
    /// Panics on NaN, infinite, zero or negative times. Use
    /// [`try_new`](Task::try_new) to validate untrusted input.
    pub fn new(cpu_time: f64, gpu_time: f64) -> Self {
        match Task::try_new(cpu_time, gpu_time) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Task::new): rejects NaN, infinite, zero and
    /// negative processing times with a typed error, and — even when both
    /// times are individually valid — a ratio ρ = p/q that overflows to
    /// infinity or underflows to zero (e.g. `1e308 / 1e-308`). A task that
    /// passes construction therefore always has positive finite affinity
    /// ratios, which the ready-queue ordering relies on.
    pub fn try_new(cpu_time: f64, gpu_time: f64) -> Result<Self, ModelError> {
        Task::try_from_times(&[cpu_time, gpu_time])
    }

    /// A `k`-class task from a per-class time vector. Panics on invalid
    /// times; see [`try_from_times`](Task::try_from_times).
    pub fn from_times(times: &[f64]) -> Self {
        match Task::try_from_times(times) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`from_times`](Task::from_times): every per-class time
    /// must be positive and finite, and every pairwise ratio must stay
    /// positive and finite (checked via the extreme pair: if
    /// `max/min` is finite, every other ratio is too).
    pub fn try_from_times(times: &[f64]) -> Result<Self, ModelError> {
        if times.len() < 2 || times.len() > MAX_CLASSES {
            return Err(ModelError::BadClassCount { requested: times.len() });
        }
        let mut inline = [0.0f64; MAX_CLASSES];
        for (i, &t) in times.iter().enumerate() {
            if !(t > 0.0 && t.is_finite()) {
                return Err(ModelError::BadTaskTime { field: TIME_FIELD[i], value: t });
            }
            inline[i] = t;
        }
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &t in times {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let rho = hi / lo;
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(ModelError::NonFiniteAccel { cpu_time: hi, gpu_time: lo });
        }
        Ok(Task { times: inline, k: times.len() as u8, priority: 0.0 })
    }

    /// Assemble a task from raw, **unvalidated** times. This is the
    /// escape hatch the validation-boundary tests use to smuggle
    /// non-finite values past [`try_new`](Task::try_new); production code
    /// must use the checked constructors.
    pub fn from_raw_times(times: &[f64], priority: f64) -> Self {
        assert!((2..=MAX_CLASSES).contains(&times.len()), "raw task needs 2..={MAX_CLASSES} times");
        let mut inline = [0.0f64; MAX_CLASSES];
        inline[..times.len()].copy_from_slice(times);
        Task { times: inline, k: times.len() as u8, priority }
    }

    pub fn with_priority(mut self, priority: f64) -> Self {
        self.priority = priority;
        self
    }

    /// Fallible [`with_priority`](Task::with_priority): rejects NaN and
    /// infinite priorities (they would poison every tie-break comparison).
    pub fn try_with_priority(mut self, priority: f64) -> Result<Self, ModelError> {
        if !priority.is_finite() {
            return Err(ModelError::BadPriority { value: priority });
        }
        self.priority = priority;
        Ok(self)
    }

    /// Number of resource classes this task has times for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Processing time on class 0 (`p_i` in the paper).
    #[inline]
    pub fn cpu_time(&self) -> f64 {
        self.times[0]
    }

    /// Processing time on class 1 (`q_i` in the paper).
    #[inline]
    pub fn gpu_time(&self) -> f64 {
        self.times[1]
    }

    /// The per-class time vector.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times[..self.k()]
    }

    /// Acceleration factor ρ = p/q of the canonical class pair. May be
    /// below 1 when the task runs faster on CPU than on GPU.
    ///
    /// Always positive and finite for tasks built through
    /// [`try_new`](Task::try_new) / [`new`](Task::new); tasks assembled
    /// from raw times can evade that guarantee, which is why the
    /// queue goes through [`try_accel_factor`](Task::try_accel_factor).
    #[inline]
    pub fn accel_factor(&self) -> f64 {
        self.times[0] / self.times[1]
    }

    /// Checked [`accel_factor`](Task::accel_factor): returns a typed error
    /// when ρ is NaN, infinite or non-positive instead of letting the
    /// poisoned value reach an ordering comparison. This is the accessor
    /// the ready queue uses, so a task smuggled past [`Task::try_new`]
    /// (raw times, unvalidated [`Instance::from_tasks`]) is rejected
    /// at the queue boundary rather than silently corrupting queue order.
    #[inline]
    pub fn try_accel_factor(&self) -> Result<f64, ModelError> {
        self.try_affinity(ClassId(0), ClassId(1))
    }

    /// Per-class-pair affinity ratio: `time_on(a) / time_on(b)` — how much
    /// faster the task runs on class `b` than on class `a`. The paper's
    /// ρ is `affinity(CPU, GPU)`.
    #[inline]
    pub fn affinity(&self, a: impl Into<ClassId>, b: impl Into<ClassId>) -> f64 {
        self.time_on(a) / self.time_on(b)
    }

    /// Checked [`affinity`](Task::affinity); see
    /// [`try_accel_factor`](Task::try_accel_factor).
    #[inline]
    pub fn try_affinity(&self, a: ClassId, b: ClassId) -> Result<f64, ModelError> {
        let (p, q) = (self.times[a.index()], self.times[b.index()]);
        let rho = p / q;
        if !(rho > 0.0 && rho.is_finite()) {
            return Err(ModelError::NonFiniteAccel { cpu_time: p, gpu_time: q });
        }
        Ok(rho)
    }

    /// Processing time on the given resource class.
    #[inline]
    pub fn time_on(&self, class: impl Into<ClassId>) -> f64 {
        let class = class.into();
        debug_assert!(class.index() < self.k(), "class {class} out of range (k = {})", self.k());
        self.times[class.index()]
    }

    /// `min` over per-class times — a trivial lower bound on the task's
    /// completion time.
    #[inline]
    pub fn min_time(&self) -> f64 {
        let mut lo = self.times[0];
        for &t in &self.times[1..self.k()] {
            lo = lo.min(t);
        }
        lo
    }

    /// `max` over per-class times.
    #[inline]
    pub fn max_time(&self) -> f64 {
        let mut hi = self.times[0];
        for &t in &self.times[1..self.k()] {
            hi = hi.max(t);
        }
        hi
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("times", &self.times())
            .field("priority", &self.priority)
            .finish()
    }
}

/// A set of independent tasks (the instance `I` of the paper).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Instance {
    tasks: Vec<Task>,
}

impl Instance {
    pub fn new() -> Self {
        Instance { tasks: Vec::new() }
    }

    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        Instance { tasks }
    }

    /// Convenience constructor from `(cpu_time, gpu_time)` pairs.
    pub fn from_times(times: &[(f64, f64)]) -> Self {
        Instance { tasks: times.iter().map(|&(p, q)| Task::new(p, q)).collect() }
    }

    /// Convenience constructor from per-class time rows (the `k`-class
    /// analogue of [`from_times`](Instance::from_times)).
    pub fn from_class_times(rows: &[&[f64]]) -> Self {
        Instance { tasks: rows.iter().map(|r| Task::from_times(r)).collect() }
    }

    /// Append a task, returning its id.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        self.tasks.push(task);
        id
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of resource classes the tasks carry times for (2 when
    /// empty: the canonical instantiation).
    #[inline]
    pub fn k(&self) -> usize {
        self.tasks.first().map_or(2, Task::k)
    }

    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        self.tasks.get(id.index()).expect("TaskId minted by this instance")
    }

    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Update the tie-breaking priority of one task.
    #[inline]
    pub fn set_priority(&mut self, id: TaskId, priority: f64) {
        self.tasks.get_mut(id.index()).expect("TaskId minted by this instance").priority = priority;
    }

    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(|i| TaskId(i as u32))
    }

    /// Total work if every task ran on the given class.
    pub fn total_work_on(&self, class: impl Into<ClassId>) -> f64 {
        let class = class.into();
        self.tasks.iter().map(|t| t.time_on(class)).sum()
    }

    /// Total work if every task ran on its CPU time.
    pub fn total_cpu_work(&self) -> f64 {
        self.tasks.iter().map(Task::cpu_time).sum()
    }

    /// Total work if every task ran on its GPU time.
    pub fn total_gpu_work(&self) -> f64 {
        self.tasks.iter().map(Task::gpu_time).sum()
    }

    /// `max_i min_c t_i,c` — a trivial lower bound on the optimal makespan
    /// (each task must run somewhere, at best on its favourite resource).
    pub fn max_min_time(&self) -> f64 {
        self.tasks.iter().map(Task::min_time).fold(0.0, f64::max)
    }

    /// Restrict to a subset of tasks (preserving times and priorities).
    /// Returns the sub-instance and the mapping from new ids to old ids.
    pub fn subset(&self, ids: &[TaskId]) -> (Instance, Vec<TaskId>) {
        let tasks = ids.iter().map(|&id| *self.task(id)).collect();
        (Instance { tasks }, ids.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_worker_classes() {
        let p = Platform::new(3, 2);
        assert_eq!(p.workers(), 5);
        assert_eq!(p.kind_of(WorkerId(0)), ResourceKind::Cpu);
        assert_eq!(p.kind_of(WorkerId(2)), ResourceKind::Cpu);
        assert_eq!(p.kind_of(WorkerId(3)), ResourceKind::Gpu);
        assert_eq!(p.kind_of(WorkerId(4)), ResourceKind::Gpu);
        let cpus: Vec<_> = p.workers_of(ResourceKind::Cpu).collect();
        assert_eq!(cpus, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        let gpus: Vec<_> = p.workers_of(ResourceKind::Gpu).collect();
        assert_eq!(gpus, vec![WorkerId(3), WorkerId(4)]);
        assert_eq!(p.count(ResourceKind::Cpu), 3);
        assert_eq!(p.count(ResourceKind::Gpu), 2);
    }

    #[test]
    fn three_class_platform_blocks_workers() {
        let p = Platform::from_counts(&[3, 2, 1]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.workers(), 6);
        assert_eq!(p.class_of(WorkerId(0)), ClassId(0));
        assert_eq!(p.class_of(WorkerId(2)), ClassId(0));
        assert_eq!(p.class_of(WorkerId(3)), ClassId(1));
        assert_eq!(p.class_of(WorkerId(4)), ClassId(1));
        assert_eq!(p.class_of(WorkerId(5)), ClassId(2));
        let third: Vec<_> = p.workers_of(ClassId(2)).collect();
        assert_eq!(third, vec![WorkerId(5)]);
        assert_eq!(p.count(ClassId(2)), 1);
        assert_eq!(p.classes().collect::<Vec<_>>(), vec![ClassId(0), ClassId(1), ClassId(2)]);
        // class_of agrees with kind_of on the two-class platform.
        let two = Platform::new(3, 2);
        for w in two.all_workers() {
            assert_eq!(ClassId::from(two.class_of(w).index()), ClassId::from(two.kind_of(w)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn platform_rejects_zero_cpus() {
        let _ = Platform::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn platform_rejects_zero_gpus() {
        let _ = Platform::new(1, 0);
    }

    #[test]
    fn platform_rejects_bad_class_counts() {
        assert_eq!(
            Platform::try_from_counts(&[1]),
            Err(ModelError::BadClassCount { requested: 1 })
        );
        assert_eq!(
            Platform::try_from_counts(&[1; MAX_CLASSES + 1]),
            Err(ModelError::BadClassCount { requested: MAX_CLASSES + 1 })
        );
        assert_eq!(Platform::try_from_counts(&[2, 0, 1]), Err(ModelError::EmptyClass(ClassId(1))));
        assert_eq!(
            ModelError::EmptyClass(ClassId(2)).to_string(),
            "platform needs at least one C2"
        );
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(28.8, 1.0);
        assert_eq!(t.accel_factor(), 28.8);
        assert_eq!(t.time_on(ResourceKind::Cpu), 28.8);
        assert_eq!(t.time_on(ResourceKind::Gpu), 1.0);
        assert_eq!(t.min_time(), 1.0);
        assert_eq!(t.max_time(), 28.8);
    }

    #[test]
    fn k_class_task_accessors() {
        let t = Task::from_times(&[6.0, 3.0, 2.0]);
        assert_eq!(t.k(), 3);
        assert_eq!(t.cpu_time(), 6.0);
        assert_eq!(t.gpu_time(), 3.0);
        assert_eq!(t.time_on(ClassId(2)), 2.0);
        assert_eq!(t.times(), &[6.0, 3.0, 2.0]);
        assert_eq!(t.affinity(ClassId(0), ClassId(2)), 3.0);
        assert_eq!(t.affinity(ClassId(2), ClassId(0)), 1.0 / 3.0);
        assert_eq!(t.accel_factor(), 2.0);
        assert_eq!(t.min_time(), 2.0);
        assert_eq!(t.max_time(), 6.0);
        // Two-class construction through both constructors agrees.
        assert_eq!(Task::from_times(&[2.0, 5.0]), Task::new(2.0, 5.0));
    }

    #[test]
    fn resource_kind_other_flips() {
        assert_eq!(ResourceKind::Cpu.other(), ResourceKind::Gpu);
        assert_eq!(ResourceKind::Gpu.other(), ResourceKind::Cpu);
    }

    #[test]
    fn class_id_bridges_to_resource_kind() {
        assert_eq!(ClassId::from(ResourceKind::Cpu), ClassId(0));
        assert_eq!(ClassId::from(ResourceKind::Gpu), ClassId(1));
        assert!(ClassId(0) == ResourceKind::Cpu);
        assert!(ResourceKind::Gpu == ClassId(1));
        assert!(ClassId(2) != ResourceKind::Cpu);
        assert_eq!(ClassId(0).to_string(), "CPU");
        assert_eq!(ClassId(1).to_string(), "GPU");
        assert_eq!(ClassId(3).to_string(), "C3");
    }

    #[test]
    #[should_panic(expected = "cpu_time")]
    fn task_rejects_nonpositive_time() {
        let _ = Task::new(0.0, 1.0);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(Platform::try_new(0, 1), Err(ModelError::EmptyClass(ResourceKind::Cpu.into())));
        assert_eq!(Platform::try_new(1, 0), Err(ModelError::EmptyClass(ResourceKind::Gpu.into())));
        assert!(Platform::try_new(2, 3).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Task::try_new(bad, 1.0),
                Err(ModelError::BadTaskTime { field: "cpu_time", .. })
            ));
            assert!(matches!(
                Task::try_new(1.0, bad),
                Err(ModelError::BadTaskTime { field: "gpu_time", .. })
            ));
            assert!(matches!(
                Task::try_from_times(&[1.0, 1.0, bad]),
                Err(ModelError::BadTaskTime { field: "time[2]", .. })
            ));
        }
        assert!(Task::try_new(1.0, 2.0).is_ok());
        assert!(matches!(
            Task::new(1.0, 1.0).try_with_priority(f64::NAN),
            Err(ModelError::BadPriority { .. })
        ));
        assert_eq!(Task::new(1.0, 1.0).try_with_priority(3.0).unwrap().priority, 3.0);
        // Display messages stay aligned with the panicking constructors.
        assert_eq!(
            ModelError::EmptyClass(ResourceKind::Cpu.into()).to_string(),
            "platform needs at least one CPU"
        );
        assert_eq!(
            ModelError::BadTaskTime { field: "cpu_time", value: -1.0 }.to_string(),
            "cpu_time must be positive and finite, got -1"
        );
    }

    #[test]
    fn ratio_overflow_is_rejected_at_construction() {
        // Both times pass the per-field checks, but p/q overflows to ∞
        // (or underflows to 0 the other way round). Construction must fail
        // with the typed error instead of smuggling a non-finite ρ into
        // the queue ordering.
        let err = Task::try_new(1e308, 1e-308).unwrap_err();
        match err {
            ModelError::NonFiniteAccel { cpu_time, gpu_time } => {
                assert_eq!(cpu_time, 1e308);
                assert_eq!(gpu_time, 1e-308);
            }
            other => panic!("expected NonFiniteAccel, got {other:?}"),
        }
        assert!(matches!(Task::try_new(1e-308, 1e308), Err(ModelError::NonFiniteAccel { .. })));
        // A hidden extreme pair in a k-class vector is caught too.
        assert!(matches!(
            Task::try_from_times(&[1.0, 1e308, 1e-308]),
            Err(ModelError::NonFiniteAccel { .. })
        ));
        // The checked accessor catches tasks assembled from raw times.
        let smuggled = Task::from_raw_times(&[f64::INFINITY, 1.0], 0.0);
        assert!(matches!(smuggled.try_accel_factor(), Err(ModelError::NonFiniteAccel { .. })));
        let zero_q = Task::from_raw_times(&[1.0, 0.0], 0.0);
        assert!(matches!(zero_q.try_accel_factor(), Err(ModelError::NonFiniteAccel { .. })));
        let ok = Task::new(3.0, 2.0);
        assert_eq!(ok.try_accel_factor().unwrap(), 1.5);
        // The error message names both times and the poisoned ratio.
        let msg = ModelError::NonFiniteAccel { cpu_time: 1.0, gpu_time: 0.0 }.to_string();
        assert!(msg.contains("positive and finite"), "{msg}");
        assert!(msg.contains("inf"), "{msg}");
    }

    #[test]
    fn instance_aggregates() {
        let inst = Instance::from_times(&[(2.0, 1.0), (3.0, 6.0)]);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.total_cpu_work(), 5.0);
        assert_eq!(inst.total_gpu_work(), 7.0);
        assert_eq!(inst.total_work_on(ResourceKind::Cpu), 5.0);
        assert_eq!(inst.k(), 2);
        // min times are 1.0 and 3.0
        assert_eq!(inst.max_min_time(), 3.0);
        let three = Instance::from_class_times(&[&[2.0, 1.0, 4.0], &[3.0, 6.0, 1.0]]);
        assert_eq!(three.k(), 3);
        assert_eq!(three.total_work_on(ClassId(2)), 5.0);
        assert_eq!(three.max_min_time(), 1.0);
    }

    #[test]
    fn instance_subset_preserves_tasks() {
        let inst = Instance::from_times(&[(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]);
        let (sub, map) = inst.subset(&[TaskId(2), TaskId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.task(TaskId(0)).cpu_time(), 5.0);
        assert_eq!(sub.task(TaskId(1)).cpu_time(), 1.0);
        assert_eq!(map, vec![TaskId(2), TaskId(0)]);
    }

    #[test]
    fn class_table_round_trips_the_spec_grammar() {
        let t = ClassTable::parse("cpu=16,gpu=4,fpga=2").unwrap();
        assert_eq!(t.k(), 3);
        assert_eq!(t.name(ClassId(2)), "fpga");
        assert_eq!(t.count(ClassId(0)), 16);
        assert_eq!(t.id_of("FPGA"), Some(ClassId(2)));
        assert_eq!(t.id_of("tpu"), None);
        assert_eq!(t.spec(), "cpu=16,gpu=4,fpga=2");
        assert_eq!(ClassTable::parse(&t.spec()).unwrap(), t);
        let p = t.platform();
        assert_eq!(p.k(), 3);
        assert_eq!((p.cpus(), p.gpus(), p.count(ClassId(2))), (16, 4, 2));
        assert_eq!(ClassTable::cpu_gpu(2, 1).unwrap().spec(), "cpu=2,gpu=1");
    }

    #[test]
    fn class_table_rejects_malformed_specs() {
        for bad in ["", "cpu", "cpu=1", "cpu=x,gpu=1", "cpu=1,cpu=2", "=3,gpu=1", "cpu=1,gpu=0"] {
            assert!(ClassTable::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = ClassTable::parse("cpu=1,gpu=0").unwrap_err();
        assert_eq!(err, ModelError::EmptyClass(ClassId(1)));
        assert!(ClassTable::parse("a=1,b=1,c=1,d=1,e=1").is_err(), "over MAX_CLASSES");
    }
}
