//! Self-contained SVG Gantt rendering of schedules (no dependencies).
//!
//! One row per worker, one rectangle per run; aborted (spoliated) runs are
//! drawn hatched red so the cost of spoliation is visible. Colors encode
//! the acceleration factor of the task: GPU-friendly tasks are warm, CPU
//! friendly tasks cold — exactly the affinity signal HeteroPrio schedules
//! by.

use crate::model::{Instance, Platform, ResourceKind};
use crate::schedule::Schedule;
use std::fmt::Write as _;

const ROW_H: f64 = 22.0;
const ROW_GAP: f64 = 4.0;
const LEFT_MARGIN: f64 = 70.0;
const TOP_MARGIN: f64 = 28.0;
const WIDTH: f64 = 900.0;

/// Map an acceleration factor to a fill color: log-scaled from blue
/// (ρ ≪ 1, CPU-friendly) through grey (ρ = 1) to orange-red (ρ ≫ 1).
fn accel_color(rho: f64) -> String {
    // Clamp log2(ρ) to [-5, 5] and interpolate.
    let x = (rho.log2().clamp(-5.0, 5.0) + 5.0) / 10.0;
    // lint: allow(cast-trunc): x ∈ [0, 1] keeps each channel inside u8 range; color quantization.
    let r = (60.0 + 195.0 * x) as u8;
    // lint: allow(cast-trunc): x ∈ [0, 1] keeps each channel inside u8 range; color quantization.
    let g = (90.0 + 40.0 * (1.0 - (2.0 * x - 1.0).abs())) as u8;
    // lint: allow(cast-trunc): x ∈ [0, 1] keeps each channel inside u8 range; color quantization.
    let b = (220.0 - 180.0 * x) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Render a schedule to an SVG document string.
pub fn to_svg(schedule: &Schedule, instance: &Instance, platform: &Platform) -> String {
    let horizon = schedule.makespan().max(1e-9);
    let scale = (WIDTH - LEFT_MARGIN - 10.0) / horizon;
    let rows = platform.workers();
    let height = TOP_MARGIN + rows as f64 * (ROW_H + ROW_GAP) + 30.0;

    let mut svg = String::with_capacity(4096);
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" viewBox="0 0 {WIDTH} {height}">"##
    );
    svg.push_str(
        r##"<defs><pattern id="abort" width="6" height="6" patternTransform="rotate(45)" patternUnits="userSpaceOnUse"><rect width="6" height="6" fill="#f3c1c1"/><line x1="0" y1="0" x2="0" y2="6" stroke="#c0392b" stroke-width="2"/></pattern></defs>"##,
    );
    let _ = write!(
        svg,
        r##"<text x="{LEFT_MARGIN}" y="16" font-family="sans-serif" font-size="12">makespan = {horizon:.2}</text>"##
    );

    // Worker rows and labels.
    for w in platform.all_workers() {
        let y = TOP_MARGIN + w.index() as f64 * (ROW_H + ROW_GAP);
        let kind = platform.kind_of(w);
        let _ = write!(
            svg,
            r##"<text x="4" y="{:.1}" font-family="sans-serif" font-size="11">{kind} {}</text>"##,
            y + ROW_H - 7.0,
            w.0
        );
        let _ = write!(
            svg,
            r##"<rect x="{LEFT_MARGIN}" y="{y:.1}" width="{:.1}" height="{ROW_H}" fill="#f6f6f6"/>"##,
            horizon * scale
        );
    }

    // Aborted runs first (under completed ones at the same spot).
    for run in &schedule.aborted {
        let y = TOP_MARGIN + run.worker.index() as f64 * (ROW_H + ROW_GAP);
        let x = LEFT_MARGIN + run.start * scale;
        let w = ((run.end - run.start) * scale).max(1.0);
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{ROW_H}" fill="url(#abort)" stroke="#c0392b" stroke-width="0.5"><title>{} aborted [{:.2}, {:.2}]</title></rect>"##,
            run.task, run.start, run.end
        );
    }
    for run in &schedule.runs {
        let y = TOP_MARGIN + run.worker.index() as f64 * (ROW_H + ROW_GAP);
        let x = LEFT_MARGIN + run.start * scale;
        let w = ((run.end - run.start) * scale).max(1.0);
        let rho = instance.task(run.task).accel_factor();
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{ROW_H}" fill="{}" stroke="#333" stroke-width="0.5"><title>{} [{:.2}, {:.2}] rho={rho:.2}</title></rect>"##,
            accel_color(rho),
            run.task,
            run.start,
            run.end
        );
        // lint: allow(float-ord): render heuristic — does a 10px label fit in the bar?
        if w > 26.0 {
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" fill="#fff">{}</text>"##,
                x + 3.0,
                y + ROW_H - 7.0,
                run.task
            );
        }
    }

    // Time axis ticks.
    let ticks = 8usize;
    let axis_y = TOP_MARGIN + rows as f64 * (ROW_H + ROW_GAP) + 12.0;
    for i in 0..=ticks {
        let t = horizon * i as f64 / ticks as f64;
        let x = LEFT_MARGIN + t * scale;
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{axis_y:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{t:.1}</text>"##
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Is a worker row drawn for GPUs? Convenience used by examples to decide
/// legend text.
pub fn legend(platform: &Platform) -> String {
    format!(
        "{} CPU rows (cold colors = CPU-friendly tasks), {} GPU rows (warm = GPU-friendly); hatched red = aborted (spoliated) work",
        platform.count(ResourceKind::Cpu),
        platform.count(ResourceKind::Gpu)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heteroprio::{heteroprio, HeteroPrioConfig};
    use crate::model::Instance;

    #[test]
    fn svg_contains_a_rect_per_run() {
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0), (1.0, 9.0)]);
        let plat = Platform::new(1, 1);
        let res = heteroprio(&inst, &plat, &HeteroPrioConfig::new());
        let svg = to_svg(&res.schedule, &inst, &plat);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        let completed = svg.matches("rho=").count();
        assert_eq!(completed, 3);
        let aborted = svg.matches("aborted [").count();
        assert_eq!(aborted, res.schedule.aborted.len());
        // One rect per run + per aborted run + per worker background + the
        // hatch-pattern rect.
        let expected_rects = 3 + aborted + plat.workers() + 1;
        assert_eq!(svg.matches("<rect").count(), expected_rects);
    }

    #[test]
    fn colors_span_the_affinity_scale() {
        let cold = accel_color(1.0 / 32.0);
        let neutral = accel_color(1.0);
        let warm = accel_color(32.0);
        assert_ne!(cold, warm);
        assert_ne!(cold, neutral);
        // Blue channel decreases with affinity.
        let blue = |c: &str| u8::from_str_radix(&c[5..7], 16).unwrap();
        assert!(blue(&cold) > blue(&neutral));
        assert!(blue(&neutral) > blue(&warm));
    }

    #[test]
    fn empty_schedule_still_renders() {
        let inst = Instance::new();
        let plat = Platform::new(2, 1);
        let svg = to_svg(&Schedule::new(), &inst, &plat);
        assert!(svg.contains("CPU 0"));
        assert!(svg.contains("GPU 2"));
    }

    #[test]
    fn legend_mentions_both_classes() {
        let l = legend(&Platform::new(3, 2));
        assert!(l.contains("3 CPU"));
        assert!(l.contains("2 GPU"));
    }
}
