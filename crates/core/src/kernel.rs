//! The unified event-driven scheduling kernel.
//!
//! One discrete-event loop drives every execution engine in the workspace:
//! the independent-task HeteroPrio ([`crate::heteroprio()`]), the online
//! release-dates variant ([`crate::online`]) and the DAG/fault simulator
//! (`heteroprio-simulator`). The kernel owns **time** (the completion, fault
//! and retry event heaps), **worker liveness**, and **trace emission**;
//! everything it does not own is injected through two traits:
//!
//! * a [`Workload`] answers "which tasks exist and when do they become
//!   ready" — all at time zero for independent tasks, at their release
//!   dates for the online variant, on predecessor completion for a DAG;
//! * a [`KernelPolicy`] answers "which task should this idle worker run"
//!   and "which running task should this idle worker spoliate" — the
//!   paper's Algorithm 1 queue discipline, or any pluggable policy.
//!
//! The split mirrors StarPU's core/scheduler separation (§2.1 of the paper):
//! the kernel enforces the protocol (a picked task must be ready, a
//! spoliation must cross resource classes and strictly improve the task's
//! completion time) and the frontends contribute only policy.
//!
//! # Determinism
//!
//! With [`FaultModel::none`] the kernel draws no random numbers and the
//! event stream is a pure function of the workload and policy; the zero
//! fault plan is byte-identical to a fault-free run. Stochastic execution
//! (jitter, task failures) uses a seeded RNG created only when a draw can
//! actually happen.
//!
//! # Durability
//!
//! Determinism is also the recovery story: because every state transition
//! is emitted as a trace event *before* its consequences are acted on, the
//! event stream is a write-ahead journal. [`run_durable`] injects crashes
//! ([`CrashPlan`](crate::durability::CrashPlan)) and captures periodic
//! [`KernelSnapshot`]s; [`resume`]
//! rebuilds a crashed run — from a snapshot plus the journal tail, or from
//! the journal alone — verifies the replay event-for-event against the
//! journal, and continues to completion. Policies participate through
//! [`SnapshotPolicy`].

use crate::durability::{schedule_from_events, DurabilityOptions, KernelSnapshot, ResumeError};
use crate::heteroprio::WorkerOrder;
use crate::model::{ClassId, Platform, TaskId, WorkerId};
use crate::schedule::{Schedule, TaskRun};
use crate::time::{strictly_less, F64Ord};
use heteroprio_metrics::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, NullRegistry, ScopedTimer,
};
use heteroprio_trace::{Decision, QueueEnd, SchedEvent, TraceSink, TraceSummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Names under which the kernel reports its metrics, for consumers that
/// read registry snapshots by name (the CLI's `--metrics` report, the perf
/// harness, tests).
pub mod metric {
    /// Heap events dispatched by the main loop (completions + failures).
    pub const EVENTS_TOTAL: &str = "kernel_events_total";
    /// Trace events pushed through the emission funnel. Cross-checked
    /// against `TraceSummary::events_recorded` to catch dropped events.
    pub const TRACE_EVENTS_TOTAL: &str = "kernel_trace_events_total";
    /// Tasks announced into the ready set (retries re-announce).
    pub const READY_PUSHES_TOTAL: &str = "kernel_ready_pushes_total";
    /// Successful policy picks out of the ready set.
    pub const READY_POPS_TOTAL: &str = "kernel_ready_pops_total";
    /// Successful spoliation aborts.
    pub const SPOLIATIONS_TOTAL: &str = "kernel_spoliations_total";
    /// Retry backoffs scheduled after failed attempts.
    pub const RETRIES_TOTAL: &str = "kernel_retries_total";
    /// Tasks completed.
    pub const TASKS_COMPLETED_TOTAL: &str = "kernel_tasks_completed_total";
    /// Current ready-set size (snapshot also carries `…_peak`).
    pub const READY_DEPTH: &str = "kernel_ready_depth";
    /// Current completion/failure event-heap size (snapshot also carries
    /// `…_peak`).
    pub const EVENT_HEAP_DEPTH: &str = "kernel_event_heap_depth";
    /// Latency of a single `KernelPolicy::pick` call, nanoseconds.
    pub const PICK_NS: &str = "kernel_pick_ns";
    /// Wall time of one assignment fixpoint, nanoseconds.
    pub const ASSIGN_NS: &str = "kernel_assign_ns";
    /// Wall time of the whole kernel run, nanoseconds.
    pub const RUN_NS: &str = "kernel_run_ns";
}

/// A task currently executing on some worker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunningTask {
    pub task: TaskId,
    pub start: f64,
    /// Expected completion time (estimate-based even under jitter: policies
    /// and spoliation decisions compare estimates, the heap carries reality).
    pub end: f64,
}

/// Retry policy for failed task attempts: capped exponential backoff with a
/// per-task attempt budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per task (first run included). When the
    /// `max_attempts`-th attempt fails the task is abandoned.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `min(backoff_cap, backoff_base · 2^(k-1))`.
    pub backoff_base: f64,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: f64,
}

impl RetryPolicy {
    pub const DEFAULT: RetryPolicy =
        RetryPolicy { max_attempts: 3, backoff_base: 1.0, backoff_cap: 64.0 };

    /// Widest doubling [`RetryPolicy::delay_after`] ever computes. The
    /// shift must be capped *before* the multiplier is built: `1u64 << 64`
    /// is undefined (a panic in debug, a wrap in release), and past 2^63
    /// the `backoff_cap` min dominates anyway.
    pub const MAX_BACKOFF_SHIFT: u32 = 63;

    /// Backoff delay after the `failures`-th failed attempt (1-based).
    /// Total for any `failures`, including `u32::MAX`: the exponent
    /// saturates at [`RetryPolicy::MAX_BACKOFF_SHIFT`] and the result is
    /// clamped to `backoff_cap`.
    pub fn delay_after(&self, failures: u32) -> f64 {
        let exp = failures.saturating_sub(1).min(Self::MAX_BACKOFF_SHIFT);
        (self.backoff_base * (1u64 << exp) as f64).min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// One expanded point on the worker-fault timeline (sorted by time; see
/// `expand_timeline` in `heteroprio-simulator`, which produces these from a
/// `FaultPlan`).
#[derive(Clone, Copy, Debug)]
pub struct TimelineEvent {
    pub time: f64,
    pub worker: u32,
    /// `true` for a recovery, `false` for a failure.
    pub up: bool,
    pub permanent: bool,
}

/// Fault machinery configuration: the pre-expanded worker down/up timeline,
/// stochastic execution noise, and the retry policy.
#[derive(Clone, Debug)]
pub struct FaultModel {
    /// Worker failures/recoveries, sorted by time (failures before
    /// recoveries at equal instants).
    pub timeline: Vec<TimelineEvent>,
    /// Per-attempt probability that a task fails mid-run.
    pub task_failure_prob: f64,
    /// Multiplicative execution-time noise `j ≥ 0`: actual durations are
    /// drawn log-uniformly from `[estimate/(1+j), estimate·(1+j)]`.
    pub exec_jitter: f64,
    /// Seed for the failure/jitter draws.
    pub seed: u64,
    /// Retry policy for failed task attempts.
    pub retry: RetryPolicy,
}

impl FaultModel {
    /// The zero model: no faults, no noise, no random draws — the kernel is
    /// then byte-identical to a fault-free run.
    pub fn none() -> Self {
        FaultModel {
            timeline: Vec::new(),
            task_failure_prob: 0.0,
            exec_jitter: 0.0,
            seed: 0,
            retry: RetryPolicy::DEFAULT,
        }
    }
}

/// Structured failure of a kernel run. The simulator converts these into its
/// public `SimError`.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A task exhausted its attempt budget; the run cannot complete.
    TaskAbandoned { task: u32, attempts: u32, time: f64 },
    /// Every worker is down with no recovery scheduled while tasks remain.
    AllWorkersDown { time: f64, remaining: usize },
    /// An injected [`CrashPlan`](crate::durability::CrashPlan) fired: the
    /// kernel "died" at simulated time `time` after emitting `events`
    /// trace events. Recovery continues via [`resume`].
    Crashed { time: f64, events: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TaskAbandoned { task, attempts, time } => {
                write!(f, "task {task} abandoned after {attempts} attempts at t={time}")
            }
            EngineError::AllWorkersDown { time, remaining } => {
                write!(f, "all workers down at t={time} with {remaining} tasks remaining")
            }
            EngineError::Crashed { time, events } => {
                write!(f, "injected crash at t={time} after {events} events")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Kernel knobs that are engine-shape, not policy: whether the trace
/// carries `PolicyDecision` events (the DAG simulator's vocabulary; the
/// independent-task engines speak `QueuePop` instead), and where
/// performance metrics go. The registry defaults to [`NullRegistry`], whose
/// no-op recording monomorphizes the instrumentation away entirely — the
/// metrics-off kernel is pinned byte-identical to the pre-metrics one.
pub struct KernelOptions<'m, M: MetricsRegistry + ?Sized = NullRegistry> {
    pub emit_decisions: bool,
    pub metrics: &'m M,
}

impl Default for KernelOptions<'static, NullRegistry> {
    fn default() -> Self {
        KernelOptions { emit_decisions: false, metrics: &NullRegistry }
    }
}

// Manual impls: derives would demand `M: Clone/Copy/Debug`, but only a
// shared reference to `M` is held.
impl<M: MetricsRegistry + ?Sized> Clone for KernelOptions<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M: MetricsRegistry + ?Sized> Copy for KernelOptions<'_, M> {}

impl<M: MetricsRegistry + ?Sized> std::fmt::Debug for KernelOptions<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelOptions")
            .field("emit_decisions", &self.emit_decisions)
            .field("metrics_enabled", &self.metrics.is_enabled())
            .finish()
    }
}

/// Pre-registered handles for every kernel metric, resolved once per run so
/// the hot path records through copyable ids only.
struct Meter<'m, M: MetricsRegistry + ?Sized> {
    m: &'m M,
    events_total: CounterId,
    trace_events: CounterId,
    ready_pushes: CounterId,
    ready_pops: CounterId,
    spoliations: CounterId,
    retries: CounterId,
    tasks_completed: CounterId,
    ready_depth: GaugeId,
    heap_depth: GaugeId,
    pick_ns: HistogramId,
    assign_ns: HistogramId,
    run_ns: HistogramId,
}

impl<'m, M: MetricsRegistry + ?Sized> Meter<'m, M> {
    fn new(m: &'m M) -> Self {
        Meter {
            m,
            events_total: m.counter(metric::EVENTS_TOTAL),
            trace_events: m.counter(metric::TRACE_EVENTS_TOTAL),
            ready_pushes: m.counter(metric::READY_PUSHES_TOTAL),
            ready_pops: m.counter(metric::READY_POPS_TOTAL),
            spoliations: m.counter(metric::SPOLIATIONS_TOTAL),
            retries: m.counter(metric::RETRIES_TOTAL),
            tasks_completed: m.counter(metric::TASKS_COMPLETED_TOTAL),
            ready_depth: m.gauge(metric::READY_DEPTH),
            heap_depth: m.gauge(metric::EVENT_HEAP_DEPTH),
            pick_ns: m.histogram(metric::PICK_NS),
            assign_ns: m.histogram(metric::ASSIGN_NS),
            run_ns: m.histogram(metric::RUN_NS),
        }
    }
}

impl<M: MetricsRegistry + ?Sized> Clone for Meter<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M: MetricsRegistry + ?Sized> Copy for Meter<'_, M> {}

/// What the kernel hands back after a completed run.
#[derive(Clone, Debug)]
pub struct KernelOutcome {
    pub schedule: Schedule,
    /// `T_FirstIdle`: first instant at which a worker asked for work and got
    /// none (from the trace summary).
    pub first_idle: Option<f64>,
    /// Number of successful spoliations (from the trace summary).
    pub spoliations: usize,
    /// Per-worker time accounting aggregated from the emitted event stream;
    /// already finished.
    pub summary: TraceSummary,
}

/// Task availability source: the kernel asks it which tasks exist, which are
/// ready initially, which arrive over time, and what a task costs on a
/// resource class.
pub trait Workload {
    /// Total number of tasks; the run ends when this many completed.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tasks ready at time zero, in announcement order.
    fn initial(&mut self) -> Vec<TaskId>;

    /// Time of the next externally-scheduled arrival (release date), if any.
    /// Dependency releases are *not* arrivals — they flow through
    /// [`Workload::on_complete`].
    fn next_arrival(&self) -> Option<f64> {
        None
    }

    /// Consume every arrival due at or before `now`, in announcement order.
    fn arrivals_due(&mut self, now: f64) -> Vec<TaskId> {
        let _ = now;
        Vec::new()
    }

    /// Allocation-free variant of [`Workload::arrivals_due`]: append the
    /// due arrivals to `out` (handed over empty). The kernel's steady-state
    /// loop calls this with a pooled buffer; workloads with arrivals should
    /// override it to avoid a `Vec` per event, the default delegates.
    fn arrivals_due_into(&mut self, now: f64, out: &mut Vec<TaskId>) {
        out.extend(self.arrivals_due(now));
    }

    /// `task` completed; return the tasks this makes ready (dependency
    /// release for DAG workloads, empty otherwise).
    fn on_complete(&mut self, task: TaskId) -> Vec<TaskId> {
        let _ = task;
        Vec::new()
    }

    /// Allocation-free variant of [`Workload::on_complete`]: append the
    /// released tasks to `out` (handed over empty). Called once per
    /// completion on the hot path; workloads that release successors
    /// should override it, the default delegates.
    fn on_complete_into(&mut self, task: TaskId, out: &mut Vec<TaskId>) {
        out.extend(self.on_complete(task));
    }

    /// Duration the kernel charges for `task` on class `class`. `ran_kind`
    /// records the class each completed task ran on, so DAG workloads can
    /// charge cross-class transfer penalties.
    fn duration(&self, task: TaskId, class: ClassId, ran_kind: &[Option<ClassId>]) -> f64;
}

/// Read-only view of the kernel state handed to policy callbacks.
pub struct KernelContext<'a> {
    pub now: f64,
    pub platform: &'a Platform,
    /// Indexed by worker; `None` when the worker is idle.
    pub running: &'a [Option<RunningTask>],
    /// Resource class each completed task ran on (`None` if not finished).
    pub ran_kind: &'a [Option<ClassId>],
    /// Liveness per worker: `false` while a worker is down.
    pub alive: &'a [bool],
}

/// A successful pick: the task to start, and — when the policy implements
/// the paper's double-ended queue — which end it came off, so the kernel
/// emits the `QueuePop` trace event the auditor's pop-order rule checks.
#[derive(Clone, Copy, Debug)]
pub struct Pick {
    pub task: TaskId,
    /// `Some(end)` emits `QueuePop`; `None` (generic policies) emits only
    /// the `PolicyDecision` when [`KernelOptions::emit_decisions`] is set.
    pub queue_end: Option<QueueEnd>,
}

/// A scheduling policy driven by the kernel.
///
/// Contract: a task announced via [`KernelPolicy::on_ready`] must eventually
/// be returned (exactly once) from [`KernelPolicy::pick`], unless the kernel
/// restarts it itself after a spoliation. The kernel asserts the protocol:
/// picked tasks must be ready, spoliations must cross resource classes,
/// target a busy worker, and strictly improve the task's completion time.
pub trait KernelPolicy {
    /// New tasks whose availability condition is satisfied.
    fn on_ready(&mut self, tasks: &[TaskId], ctx: &KernelContext<'_>);

    /// An idle worker asks for work. Returning `None` leaves it idle until
    /// the next event.
    fn pick(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<Pick>;

    /// An idle worker with no pick may spoliate a task running on the
    /// *other* resource class: return the victim worker.
    fn spoliation_victim(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<WorkerId> {
        let _ = (worker, ctx);
        None
    }

    /// Order in which simultaneously idle workers are served.
    fn worker_order(&self) -> WorkerOrder {
        WorkerOrder::GpusFirst
    }
}

/// A [`KernelPolicy`] that can be checkpointed and restored.
///
/// The only state a kernel policy may legally hold is a function of the
/// tasks announced to it (and the public kernel context), so a snapshot
/// needs just the ready set *in the policy's internal order* — restoring
/// is re-announcing that list. Policies whose queue position depends on
/// announcement order (insertion-ordered ties, FIFO sequence numbers)
/// are exact under this protocol precisely because the order is preserved.
pub trait SnapshotPolicy: KernelPolicy {
    /// Ready tasks in the policy's internal queue order (front first).
    fn ready_order(&self) -> Vec<TaskId>;

    /// Rebuild internal state from a snapshot's ready list. The default
    /// re-announces through [`KernelPolicy::on_ready`]; override only if
    /// the policy carries state that announcement cannot reconstruct.
    fn restore(&mut self, ready: &[TaskId], ctx: &KernelContext<'_>) {
        self.on_ready(ready, ctx);
    }
}

/// Lifecycle state of one task, exposed for
/// [`KernelSnapshot`] serialization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    Pending,
    Ready,
    Running,
    /// Lost to a worker failure or waiting out a retry backoff; will be
    /// re-announced as ready.
    Waiting,
    Done,
}

/// Drive `policy` over `workload` on `platform` to completion.
///
/// Panics on policy protocol violations: picking a task that is not ready,
/// spoliating an idle worker or one of the same class, a spoliation that
/// does not strictly improve the task's completion time, or a deadlock
/// (work remains, nothing runs, and the policy schedules nothing).
pub fn run<W: Workload, P: KernelPolicy, S: TraceSink, M: MetricsRegistry + ?Sized>(
    platform: &Platform,
    workload: &mut W,
    policy: &mut P,
    faults: FaultModel,
    options: KernelOptions<'_, M>,
    sink: &mut S,
) -> Result<KernelOutcome, EngineError> {
    let mut kernel = Kernel::new(platform, workload.len(), faults, options, sink);
    kernel.run(workload, policy)?;
    Ok(finish_outcome(kernel))
}

fn finish_outcome<S: TraceSink, M: MetricsRegistry + ?Sized>(
    kernel: Kernel<'_, S, M>,
) -> KernelOutcome {
    let mut summary = kernel.summary;
    summary.finish();
    KernelOutcome {
        schedule: kernel.schedule,
        first_idle: summary.first_idle,
        spoliations: summary.spoliation_count,
        summary,
    }
}

/// [`run`] with the durability plane attached: an injected
/// [`CrashPlan`](crate::durability::CrashPlan) and an optional checkpoint
/// cadence. Checkpoints are captured at quiescent points (after the
/// assignment fixpoint) and saved best-effort — the journal, fed through
/// `sink`, remains the authoritative recovery source, so a failed save is
/// latched in the store rather than aborting the run.
pub fn run_durable<W, P, S, M>(
    platform: &Platform,
    workload: &mut W,
    policy: &mut P,
    faults: FaultModel,
    options: KernelOptions<'_, M>,
    durability: DurabilityOptions<'_>,
    sink: &mut S,
) -> Result<KernelOutcome, EngineError>
where
    W: Workload,
    P: SnapshotPolicy,
    S: TraceSink,
    M: MetricsRegistry + ?Sized,
{
    let mut kernel = Kernel::new(platform, workload.len(), faults, options, sink);
    kernel.crash_at = durability.crash.at_event;
    kernel.checkpoint_every = durability.checkpoint_every;
    let mut store = durability.store;
    kernel.run_inner(workload, policy, None, &mut |k, p, now| {
        if let Some(store) = store.as_deref_mut() {
            let _ = store.save(&k.snapshot_of(p, now));
        }
    })?;
    Ok(finish_outcome(kernel))
}

/// Verifies the resumed kernel's emissions against the journaled record
/// while forwarding everything to the real sink. The first disagreement is
/// latched (emission itself cannot fail mid-run); [`resume`] turns it into
/// a typed [`ResumeError::Divergence`] at the end.
struct VerifySink<'v, S: TraceSink> {
    inner: &'v mut S,
    expected: &'v [SchedEvent],
    pos: usize,
    mismatch: Option<(usize, SchedEvent)>,
}

impl<S: TraceSink> TraceSink for VerifySink<'_, S> {
    fn emit(&mut self, event: SchedEvent) {
        if self.pos < self.expected.len() {
            if self.mismatch.is_none() && self.expected[self.pos] != event {
                self.mismatch = Some((self.pos, event));
            }
            self.pos += 1;
        }
        self.inner.emit(event);
    }

    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

/// Rebuild a crashed run from its recovered journal (and optionally a
/// checkpoint) and drive it to completion.
///
/// The caller re-supplies the same platform, workload, policy, fault model
/// and options as the recorded run; the kernel re-derives everything else.
/// Without a snapshot the whole journaled prefix deterministically
/// re-executes; with one, execution restarts at the snapshot instant and
/// only the tail past it re-executes. Either way every re-emitted event
/// inside the journaled range is checked against the journal record —
/// a mismatch means the supplied inputs differ from the recorded run and
/// yields [`ResumeError::Divergence`] instead of silent corruption. A
/// snapshot taken *after* the last surviving journal record (its tail was
/// lost with the page cache) is unusable and is ignored in favor of
/// journal-only replay.
///
/// `sink` receives the full event stream from t = 0: the journaled prefix
/// verbatim, then the continuation's events as they are produced. When
/// appending the resumed run to the same journal, wrap it in
/// `JournalSink::resuming(journal, journal.len())` so the prefix is not
/// re-appended.
#[allow(clippy::too_many_arguments)]
pub fn resume<W, P, S, M>(
    platform: &Platform,
    workload: &mut W,
    policy: &mut P,
    faults: FaultModel,
    options: KernelOptions<'_, M>,
    snapshot: Option<&KernelSnapshot>,
    journal: &[SchedEvent],
    sink: &mut S,
) -> Result<KernelOutcome, ResumeError>
where
    W: Workload,
    P: SnapshotPolicy,
    S: TraceSink,
    M: MetricsRegistry + ?Sized,
{
    let snap = snapshot.filter(|s| (s.events_seen as usize) <= journal.len());
    let (prefix, tail) = match snap {
        Some(s) => journal.split_at(s.events_seen as usize),
        None => journal.split_at(0),
    };
    // The forwarded prefix counts toward the trace-event metric so the
    // counter always equals "events delivered to the sink", whether they
    // came from the journal or from live execution.
    if !prefix.is_empty() {
        let counter = options.metrics.counter(metric::TRACE_EVENTS_TOTAL);
        options.metrics.inc_by(counter, prefix.len() as u64);
    }
    for e in prefix {
        sink.emit(*e);
    }
    let mut verify = VerifySink { inner: sink, expected: tail, pos: 0, mismatch: None };
    let mut kernel = Kernel::new(platform, workload.len(), faults, options, &mut verify);
    let run_result = match snap {
        Some(s) => kernel
            .restore_from(s, prefix, workload, policy)
            .map_err(ResumeError::BadSnapshot)
            .and_then(|()| {
                kernel
                    .run_inner(workload, policy, Some(s.now), &mut |_, _, _| {})
                    .map_err(ResumeError::from)
            }),
        None => {
            kernel.run_inner(workload, policy, None, &mut |_, _, _| {}).map_err(ResumeError::from)
        }
    };
    let outcome = finish_outcome(kernel);
    let produced = prefix.len() + verify.pos;
    if let Some((i, got)) = verify.mismatch {
        return Err(ResumeError::Divergence { index: prefix.len() + i, expected: tail[i], got });
    }
    run_result?;
    if verify.pos < tail.len() {
        return Err(ResumeError::ShortReplay { produced, journaled: journal.len() });
    }
    Ok(outcome)
}

/// Pooled scratch buffers for the steady-state loop. The fixpoint's idle
/// lists, the per-completion release list and the retry/arrival batches
/// are taken from this arena and returned cleared after use, so once the
/// pool is warm the event loop stops hitting the allocator entirely
/// (previously every fixpoint iteration and every completion allocated
/// fresh `Vec`s).
#[derive(Debug, Default)]
struct Scratch {
    /// Recycled between the fixpoint's consumed `idle` list and the
    /// `still_idle` list it builds (the two rotate roles each iteration).
    workers_a: Vec<WorkerId>,
    /// Holds spoliation victims (`newly_idle`) within one fixpoint pass.
    workers_b: Vec<WorkerId>,
    /// Successors released by a completion.
    released: Vec<TaskId>,
    /// Retry expiries / workload arrivals due at the current instant.
    due: Vec<TaskId>,
}

/// The one discrete-event loop in the workspace. Owns time, the
/// completion/fault/retry heaps, worker liveness, and trace emission.
struct Kernel<'a, S: TraceSink, M: MetricsRegistry + ?Sized> {
    platform: &'a Platform,
    ran_kind: Vec<Option<ClassId>>,
    state: Vec<TaskState>,
    running: Vec<Option<RunningTask>>,
    /// Event invalidation counters (bumped when a run is aborted).
    generation: Vec<u64>,
    /// Min-heap of (completion/failure time, worker, generation).
    events: BinaryHeap<Reverse<(F64Ord, u32, u64)>>,
    idle: Vec<WorkerId>,
    completed: usize,
    schedule: Schedule,
    sink: &'a mut S,
    summary: TraceSummary,
    /// Guards duplicate `WorkerIdleBegin` across fixpoint iterations.
    idle_announced: Vec<bool>,
    /// Liveness per worker (all `true` without a fault timeline).
    alive: Vec<bool>,
    /// Whether the heap event for a worker's current run is a failure.
    will_fail: Vec<bool>,
    /// Failed attempts per task.
    failures: Vec<u32>,
    faults: FaultModel,
    /// Cursor into the sorted fault timeline.
    timeline_pos: usize,
    /// Pending retries as `(ready_time, task)`.
    retries: BinaryHeap<Reverse<(F64Ord, u32)>>,
    /// Present iff the model draws random numbers (jitter or task
    /// failures); `None` keeps the zero model byte-identical to a
    /// fault-free run.
    rng: Option<StdRng>,
    options: KernelOptions<'a, M>,
    /// Pre-registered metric handles (all no-ops under [`NullRegistry`]).
    meter: Meter<'a, M>,
    /// Current ready-set size, mirrored into the [`metric::READY_DEPTH`]
    /// gauge.
    ready_depth: u64,
    /// Trace events emitted so far (= journal length when journaling).
    emitted: u64,
    /// Injected crash point: die after this many emitted events.
    crash_at: Option<u64>,
    /// Latched once the crash point is reached; from then on the kernel
    /// emits nothing (the journal ends exactly at the crash) and the run
    /// aborts with [`EngineError::Crashed`].
    crashed: bool,
    /// Simulated time at which the crash fired.
    crashed_time: f64,
    /// Capture a snapshot every this-many emitted events.
    checkpoint_every: Option<u64>,
    /// Emission count at the last checkpoint.
    last_checkpoint: u64,
    /// Reusable buffers for the hot loop (see [`Scratch`]).
    scratch: Scratch,
}

impl<'a, S: TraceSink, M: MetricsRegistry + ?Sized> Kernel<'a, S, M> {
    fn new(
        platform: &'a Platform,
        tasks: usize,
        faults: FaultModel,
        options: KernelOptions<'a, M>,
        sink: &'a mut S,
    ) -> Self {
        let summary = if sink.is_enabled() {
            TraceSummary::with_timeline(platform.workers())
        } else {
            TraceSummary::new(platform.workers())
        };
        let stochastic = faults.exec_jitter > 0.0 || faults.task_failure_prob > 0.0;
        let rng = stochastic.then(|| StdRng::seed_from_u64(faults.seed));
        Kernel {
            platform,
            ran_kind: vec![None; tasks],
            state: vec![TaskState::Pending; tasks],
            running: vec![None; platform.workers()],
            generation: vec![0; platform.workers()],
            events: BinaryHeap::new(),
            idle: platform.all_workers().collect(),
            completed: 0,
            schedule: Schedule::new(),
            sink,
            summary,
            idle_announced: vec![false; platform.workers()],
            alive: vec![true; platform.workers()],
            will_fail: vec![false; platform.workers()],
            failures: vec![0; tasks],
            faults,
            timeline_pos: 0,
            retries: BinaryHeap::new(),
            rng,
            meter: Meter::new(options.metrics),
            options,
            ready_depth: 0,
            emitted: 0,
            crash_at: None,
            crashed: false,
            crashed_time: 0.0,
            checkpoint_every: None,
            last_checkpoint: 0,
            scratch: Scratch::default(),
        }
    }

    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        // A fired crash silences the funnel: the journal holds exactly the
        // events emitted before the "process died", like a real crash.
        if self.crashed {
            return;
        }
        self.meter.m.inc(self.meter.trace_events);
        self.summary.record(&event);
        self.sink.emit(event);
        self.emitted = self.emitted.checked_add(1).expect("u64 event counter never saturates");
        if self.crash_at == Some(self.emitted) {
            self.crashed = true;
            self.crashed_time = event.time();
        }
    }

    #[inline]
    fn crash_check(&self) -> Result<(), EngineError> {
        if self.crashed {
            Err(EngineError::Crashed { time: self.crashed_time, events: self.emitted })
        } else {
            Ok(())
        }
    }

    fn context(&self, now: f64) -> KernelContext<'_> {
        KernelContext {
            now,
            platform: self.platform,
            running: &self.running,
            ran_kind: &self.ran_kind,
            alive: &self.alive,
        }
    }

    fn announce_ready<P: KernelPolicy>(&mut self, policy: &mut P, tasks: &[TaskId], now: f64) {
        if tasks.is_empty() {
            return;
        }
        for &t in tasks {
            debug_assert!(
                matches!(self.state[t.index()], TaskState::Pending | TaskState::Waiting),
                "announcing {t} in state {:?}",
                self.state[t.index()]
            );
            self.state[t.index()] = TaskState::Ready;
            self.emit(SchedEvent::TaskReady { time: now, task: t.0 });
        }
        self.meter.m.inc_by(self.meter.ready_pushes, tasks.len() as u64);
        self.ready_depth += tasks.len() as u64;
        self.meter.m.gauge_set(self.meter.ready_depth, self.ready_depth);
        policy.on_ready(tasks, &self.context(now));
    }

    fn start<W: Workload>(&mut self, workload: &W, w: WorkerId, task: TaskId, now: f64) {
        let estimate = workload.duration(task, self.platform.class_of(w), &self.ran_kind);
        let end = now + estimate;
        if self.idle_announced[w.index()] {
            self.idle_announced[w.index()] = false;
            self.emit(SchedEvent::WorkerIdleEnd { time: now, worker: w.0 });
        }
        self.emit(SchedEvent::TaskStart {
            time: now,
            task: task.0,
            worker: w.0,
            expected_end: end,
        });
        // The policy decides on the estimate; the heap event carries
        // reality: a jittered duration, cut short at the failure point if
        // this attempt is doomed. Draw order (jitter, then failure) is
        // fixed so traces are reproducible per seed.
        let mut actual = estimate;
        let mut fail_at = None;
        if let Some(rng) = self.rng.as_mut() {
            let j = self.faults.exec_jitter;
            if j > 0.0 {
                let (lo, hi) = ((1.0f64 / (1.0 + j)).ln(), (1.0f64 + j).ln());
                let u: f64 = rng.random_range(0.0..1.0);
                actual = estimate * (lo + u * (hi - lo)).exp();
            }
            let p = self.faults.task_failure_prob;
            if p > 0.0 && rng.random_bool(p) {
                let frac: f64 = rng.random_range(0.0..1.0);
                fail_at = Some(now + frac * actual);
            }
        }
        self.running[w.index()] = Some(RunningTask { task, start: now, end });
        self.will_fail[w.index()] = fail_at.is_some();
        self.state[task.index()] = TaskState::Running;
        let event_at = fail_at.unwrap_or(now + actual);
        self.events.push(Reverse((F64Ord::new(event_at), w.0, self.generation[w.index()])));
        self.meter.m.gauge_set(self.meter.heap_depth, self.events.len() as u64);
    }

    fn worker_sort_key(&self, order: WorkerOrder, w: WorkerId) -> (u16, u32) {
        let class = self.platform.class_of(w);
        // Class rank generalizes the two-class keys exactly: GpusFirst is
        // descending class index (accelerators first — on k = 2 the GPU
        // pool), CpusFirst ascending.
        let rank = match order {
            WorkerOrder::GpusFirst => (self.platform.k() - 1 - class.index()) as u16,
            WorkerOrder::CpusFirst => class.index() as u16,
            WorkerOrder::ById => 0,
        };
        (rank, w.0)
    }

    fn assign_fixpoint<W: Workload, P: KernelPolicy>(
        &mut self,
        workload: &W,
        policy: &mut P,
        now: f64,
    ) {
        let meter = self.meter;
        let _assign_span = ScopedTimer::start(meter.m, meter.assign_ns);
        loop {
            let order = policy.worker_order();
            let mut idle = std::mem::take(&mut self.idle);
            idle.sort_by_key(|&w| self.worker_sort_key(order, w));
            let mut acted = false;
            // Arena: the consumed idle list and the still-idle list it
            // builds rotate between two pooled buffers; spoliation victims
            // borrow a third. No allocation once the pool is warm.
            let mut still_idle = std::mem::take(&mut self.scratch.workers_a);
            let mut newly_idle = std::mem::take(&mut self.scratch.workers_b);
            debug_assert!(still_idle.is_empty() && newly_idle.is_empty());
            for &w in &idle {
                // The context's shared borrows conflict with emitting, so
                // the policy is consulted first and events follow.
                let (picked, victim) = {
                    let ctx = self.context(now);
                    let pick = {
                        let _pick_span = ScopedTimer::start(meter.m, meter.pick_ns);
                        policy.pick(w, &ctx)
                    };
                    match pick {
                        Some(pick) => (Some(pick), None),
                        None => (None, policy.spoliation_victim(w, &ctx)),
                    }
                };
                if let Some(pick) = picked {
                    let task = pick.task;
                    assert_eq!(
                        self.state[task.index()],
                        TaskState::Ready,
                        "policy picked {task}, which is not ready"
                    );
                    meter.m.inc(meter.ready_pops);
                    // A pop without a matching push is a kernel invariant
                    // violation (double pop / missed announce). Saturating
                    // here would silently pin the gauge at zero and hide
                    // the accounting bug, so underflow fails loudly like
                    // the other protocol asserts above.
                    self.ready_depth = self
                        .ready_depth
                        .checked_sub(1)
                        .expect("kernel invariant violated: ready_depth underflow on pop");
                    meter.m.gauge_set(meter.ready_depth, self.ready_depth);
                    if let Some(end) = pick.queue_end {
                        self.emit(SchedEvent::QueuePop {
                            time: now,
                            task: task.0,
                            worker: w.0,
                            end,
                        });
                    }
                    if self.options.emit_decisions {
                        self.emit(SchedEvent::PolicyDecision {
                            time: now,
                            worker: w.0,
                            decision: Decision::Pick(task.0),
                        });
                    }
                    self.start(workload, w, task, now);
                    acted = true;
                    continue;
                }
                // The idle transition is announced before the spoliation
                // outcome: T_FirstIdle counts the instant a worker found no
                // ready work, including workers that then steal (§2.1).
                let went_idle = !self.idle_announced[w.index()];
                if went_idle {
                    self.idle_announced[w.index()] = true;
                    self.emit(SchedEvent::WorkerIdleBegin { time: now, worker: w.0 });
                }
                if let Some(victim) = victim {
                    let my_class = self.platform.class_of(w);
                    assert_ne!(
                        self.platform.class_of(victim),
                        my_class,
                        "spoliation must cross resource classes"
                    );
                    let r = self.running[victim.index()]
                        .take()
                        .expect("policy spoliated an idle worker");
                    let new_end = now + workload.duration(r.task, my_class, &self.ran_kind);
                    assert!(
                        strictly_less(new_end, r.end),
                        "spoliation of {} must strictly improve completion ({new_end} vs {})",
                        r.task,
                        r.end
                    );
                    self.generation[victim.index()] += 1;
                    self.schedule.aborted.push(TaskRun {
                        task: r.task,
                        worker: victim,
                        start: r.start,
                        end: now,
                    });
                    if self.options.emit_decisions {
                        self.emit(SchedEvent::PolicyDecision {
                            time: now,
                            worker: w.0,
                            decision: Decision::Spoliate(victim.0),
                        });
                    }
                    self.emit(SchedEvent::Spoliation {
                        time: now,
                        task: r.task.0,
                        victim: victim.0,
                        thief: w.0,
                        wasted_work: now - r.start,
                    });
                    meter.m.inc(meter.spoliations);
                    self.start(workload, w, r.task, now);
                    newly_idle.push(victim);
                    acted = true;
                    continue;
                }
                if went_idle && self.options.emit_decisions {
                    self.emit(SchedEvent::PolicyDecision {
                        time: now,
                        worker: w.0,
                        decision: Decision::Idle,
                    });
                }
                still_idle.push(w);
            }
            self.idle = still_idle;
            self.idle.append(&mut newly_idle);
            idle.clear();
            self.scratch.workers_a = idle;
            self.scratch.workers_b = newly_idle;
            if !acted {
                return;
            }
        }
    }

    fn complete<W: Workload, P: KernelPolicy>(
        &mut self,
        workload: &mut W,
        policy: &mut P,
        w: WorkerId,
        now: f64,
    ) {
        let r = self.running[w.index()].take().expect("completion on idle worker");
        self.meter.m.inc(self.meter.tasks_completed);
        self.emit(SchedEvent::TaskComplete { time: now, task: r.task.0, worker: w.0 });
        self.schedule.runs.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.state[r.task.index()] = TaskState::Done;
        self.ran_kind[r.task.index()] = Some(self.platform.class_of(w));
        self.completed += 1;
        self.idle.push(w);
        let mut released = std::mem::take(&mut self.scratch.released);
        debug_assert!(released.is_empty());
        workload.on_complete_into(r.task, &mut released);
        self.announce_ready(policy, &released, now);
        released.clear();
        self.scratch.released = released;
    }

    /// A worker's current run ended: either it completed or — if the start
    /// drew a failure — the attempt failed partway through.
    fn finish_run<W: Workload, P: KernelPolicy>(
        &mut self,
        workload: &mut W,
        policy: &mut P,
        w: WorkerId,
        now: f64,
    ) -> Result<(), EngineError> {
        if self.will_fail[w.index()] {
            self.will_fail[w.index()] = false;
            self.task_fail(w, now)
        } else {
            self.complete(workload, policy, w, now);
            Ok(())
        }
    }

    /// A task attempt failed on `w`: progress is lost, the worker goes back
    /// to the idle pool, and the task retries after a backoff — unless its
    /// attempt budget is exhausted.
    fn task_fail(&mut self, w: WorkerId, now: f64) -> Result<(), EngineError> {
        let r = self.running[w.index()].take().expect("failure on idle worker");
        self.failures[r.task.index()] += 1;
        let attempt = self.failures[r.task.index()];
        self.emit(SchedEvent::TaskFailed {
            time: now,
            task: r.task.0,
            worker: w.0,
            lost_work: now - r.start,
            attempt,
        });
        self.schedule.aborted.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.state[r.task.index()] = TaskState::Waiting;
        self.idle.push(w);
        if attempt >= self.faults.retry.max_attempts {
            return Err(EngineError::TaskAbandoned {
                task: r.task.0,
                attempts: attempt,
                time: now,
            });
        }
        let delay = self.faults.retry.delay_after(attempt);
        self.meter.m.inc(self.meter.retries);
        self.emit(SchedEvent::TaskRetry { time: now, task: r.task.0, attempt, delay });
        self.retries.push(Reverse((F64Ord::new(now + delay), r.task.0)));
        Ok(())
    }

    fn worker_down<P: KernelPolicy>(&mut self, policy: &mut P, e: TimelineEvent, now: f64) {
        let w = WorkerId(e.worker);
        if !self.alive[w.index()] {
            return;
        }
        self.alive[w.index()] = false;
        self.idle.retain(|&x| x != w);
        // The summary closes the open idle interval at the WorkerDown
        // event itself; no separate IdleEnd is emitted for a dead worker.
        self.idle_announced[w.index()] = false;
        let lost = self.running[w.index()].take();
        self.will_fail[w.index()] = false;
        self.generation[w.index()] += 1;
        self.emit(SchedEvent::WorkerDown {
            time: now,
            worker: w.0,
            lost_task: lost.map(|r| r.task.0),
            permanent: e.permanent,
        });
        if let Some(r) = lost {
            self.schedule.aborted.push(TaskRun {
                task: r.task,
                worker: w,
                start: r.start,
                end: now,
            });
            // The in-flight task re-enters the ready set immediately at its
            // original priority; lost progress is not a retry attempt.
            self.state[r.task.index()] = TaskState::Waiting;
            self.announce_ready(policy, &[r.task], now);
        }
    }

    fn worker_up(&mut self, e: TimelineEvent, now: f64) {
        let w = WorkerId(e.worker);
        if self.alive[w.index()] {
            return;
        }
        self.alive[w.index()] = true;
        self.emit(SchedEvent::WorkerUp { time: now, worker: w.0 });
        self.idle.push(w);
        self.idle_announced[w.index()] = false;
    }

    /// Apply every timeline event due at or before `now`.
    fn process_faults_at<P: KernelPolicy>(&mut self, policy: &mut P, now: f64) {
        while let Some(&e) = self.faults.timeline.get(self.timeline_pos) {
            if e.time > now {
                break;
            }
            self.timeline_pos += 1;
            if e.up {
                self.worker_up(e, now);
            } else {
                self.worker_down(policy, e, now);
            }
        }
    }

    /// Re-announce every task whose retry backoff expired at `now`.
    fn process_retries_at<P: KernelPolicy>(&mut self, policy: &mut P, now: f64) {
        let mut due = std::mem::take(&mut self.scratch.due);
        debug_assert!(due.is_empty());
        while let Some(&Reverse((F64Ord(t), task))) = self.retries.peek() {
            if t > now {
                break;
            }
            self.retries.pop();
            due.push(TaskId(task));
        }
        self.announce_ready(policy, &due, now);
        due.clear();
        self.scratch.due = due;
    }

    /// Earliest pending instant across run completions/failures, the fault
    /// timeline, retry expiries, and workload arrivals. Stale heap entries
    /// are discarded.
    fn next_time<W: Workload>(&mut self, workload: &W) -> Option<f64> {
        while let Some(&Reverse((_, w, g))) = self.events.peek() {
            if self.generation[w as usize] == g {
                break;
            }
            self.events.pop();
        }
        let mut next: Option<f64> = self.events.peek().map(|&Reverse((F64Ord(t), _, _))| t);
        if let Some(e) = self.faults.timeline.get(self.timeline_pos) {
            next = Some(next.map_or(e.time, |t| t.min(e.time)));
        }
        if let Some(&Reverse((F64Ord(t), _))) = self.retries.peek() {
            next = Some(next.map_or(t, |x| x.min(t)));
        }
        if let Some(t) = workload.next_arrival() {
            next = Some(next.map_or(t, |x| x.min(t)));
        }
        next
    }

    fn run<W: Workload, P: KernelPolicy>(
        &mut self,
        workload: &mut W,
        policy: &mut P,
    ) -> Result<(), EngineError> {
        self.run_inner(workload, policy, None, &mut |_, _, _| {})
    }

    fn checkpoint_due(&self) -> bool {
        match self.checkpoint_every {
            Some(n) => !self.crashed && self.emitted.saturating_sub(self.last_checkpoint) >= n,
            None => false,
        }
    }

    /// The main loop, parameterized for durability: `resume_at` skips the
    /// t=0 prologue and picks up at a restored snapshot's time;
    /// `checkpoint` is invoked at quiescent points (post-fixpoint) when
    /// the checkpoint cadence is due.
    fn run_inner<W, P, F>(
        &mut self,
        workload: &mut W,
        policy: &mut P,
        resume_at: Option<f64>,
        checkpoint: &mut F,
    ) -> Result<(), EngineError>
    where
        W: Workload,
        P: KernelPolicy,
        F: FnMut(&Self, &P, f64),
    {
        let meter = self.meter;
        let _run_span = ScopedTimer::start(meter.m, meter.run_ns);
        let total = workload.len();
        let mut now = resume_at.unwrap_or(0.0);
        if resume_at.is_none() {
            let initial = workload.initial();
            self.announce_ready(policy, &initial, now);
            self.process_faults_at(policy, now);
            self.assign_fixpoint(workload, policy, now);
            self.crash_check()?;
            if self.checkpoint_due() {
                checkpoint(self, policy, now);
                self.last_checkpoint = self.emitted;
            }
        }
        while self.completed < total {
            let Some(t) = self.next_time(workload) else {
                if self.alive.iter().any(|&a| a) {
                    panic!("deadlock: tasks remain but nothing is running (policy bug?)");
                }
                return Err(EngineError::AllWorkersDown {
                    time: now,
                    remaining: total - self.completed,
                });
            };
            debug_assert!(t >= now);
            now = t;
            // Order at equal instants: arrivals enter the ready set first
            // (so completions at the same instant see them), then runs
            // finish (completions release successors), then workers
            // fail/recover, then retries re-enter the ready set, then idle
            // workers are offered work.
            let mut due = std::mem::take(&mut self.scratch.due);
            debug_assert!(due.is_empty());
            workload.arrivals_due_into(now, &mut due);
            self.announce_ready(policy, &due, now);
            due.clear();
            self.scratch.due = due;
            while let Some(&Reverse((F64Ord(t2), w2, g2))) = self.events.peek() {
                if self.generation[w2 as usize] != g2 {
                    self.events.pop();
                } else if t2 == now {
                    self.events.pop();
                    meter.m.inc(meter.events_total);
                    // A crash during the dispatch outranks the engine
                    // error the dispatch may have produced: state changes
                    // past the crash point never "happened".
                    let finished = self.finish_run(workload, policy, WorkerId(w2), now);
                    self.crash_check()?;
                    finished?;
                } else {
                    break;
                }
            }
            self.process_faults_at(policy, now);
            self.process_retries_at(policy, now);
            self.assign_fixpoint(workload, policy, now);
            self.crash_check()?;
            if self.checkpoint_due() {
                checkpoint(self, policy, now);
                self.last_checkpoint = self.emitted;
            }
        }
        self.crash_check()
    }

    /// Capture the complete kernel state at a quiescent point. `now` is
    /// the loop's current instant (snapshots are taken post-fixpoint).
    fn snapshot_of<P: SnapshotPolicy>(&self, policy: &P, now: f64) -> KernelSnapshot {
        let mut heap: Vec<(f64, u32, u64)> = self
            .events
            .iter()
            .filter(|&&Reverse((_, w, g))| self.generation[w as usize] == g)
            .map(|&Reverse((F64Ord(t), w, g))| (t, w, g))
            .collect();
        heap.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut retries: Vec<(f64, u32)> =
            self.retries.iter().map(|&Reverse((F64Ord(t), task))| (t, task)).collect();
        retries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        KernelSnapshot {
            now,
            events_seen: self.emitted,
            workers: self.platform.workers(),
            tasks: self.state.len(),
            state: self.state.clone(),
            ran_kind: self.ran_kind.clone(),
            running: self.running.clone(),
            generation: self.generation.clone(),
            heap,
            idle: self.idle.iter().map(|w| w.0).collect(),
            idle_announced: self.idle_announced.clone(),
            alive: self.alive.clone(),
            will_fail: self.will_fail.clone(),
            failures: self.failures.clone(),
            timeline_pos: self.timeline_pos,
            retries,
            rng: self.rng.as_ref().map(StdRng::state),
            ready: policy.ready_order(),
        }
    }

    /// Rebuild mid-run state from a snapshot plus the journaled event
    /// prefix it corresponds to. The prefix feeds the trace summary and
    /// the schedule (both are event-derived); the snapshot supplies
    /// everything else, including the actual heap instants and RNG state.
    fn restore_from<W: Workload, P: SnapshotPolicy>(
        &mut self,
        snap: &KernelSnapshot,
        prefix: &[SchedEvent],
        workload: &mut W,
        policy: &mut P,
    ) -> Result<(), String> {
        snap.validate()?;
        if snap.tasks != self.state.len() {
            return Err(format!(
                "snapshot has {} tasks, workload has {}",
                snap.tasks,
                self.state.len()
            ));
        }
        if snap.workers != self.platform.workers() {
            return Err(format!(
                "snapshot has {} workers, platform has {}",
                snap.workers,
                self.platform.workers()
            ));
        }
        if prefix.len() as u64 != snap.events_seen {
            return Err(format!(
                "snapshot was taken at event {}, but {} journaled events were supplied",
                snap.events_seen,
                prefix.len()
            ));
        }
        for e in prefix {
            self.summary.record(e);
        }
        self.schedule = schedule_from_events(prefix);
        self.state = snap.state.clone();
        self.ran_kind = snap.ran_kind.clone();
        self.running = snap.running.clone();
        self.generation = snap.generation.clone();
        self.events = snap.heap.iter().map(|&(t, w, g)| Reverse((F64Ord::new(t), w, g))).collect();
        self.idle = snap.idle.iter().map(|&w| WorkerId(w)).collect();
        self.completed = snap.state.iter().filter(|&&s| s == TaskState::Done).count();
        self.idle_announced = snap.idle_announced.clone();
        self.alive = snap.alive.clone();
        self.will_fail = snap.will_fail.clone();
        self.failures = snap.failures.clone();
        self.timeline_pos = snap.timeline_pos;
        self.retries =
            snap.retries.iter().map(|&(t, task)| Reverse((F64Ord::new(t), task))).collect();
        match (snap.rng, self.rng.as_mut()) {
            (Some(words), Some(rng)) => *rng = StdRng::from_state(words),
            (None, None) => {}
            (have, _) => {
                return Err(format!(
                    "snapshot {} RNG state but the fault model {} stochastic",
                    if have.is_some() { "carries" } else { "lacks" },
                    if have.is_some() { "is not" } else { "is" },
                ))
            }
        }
        self.emitted = snap.events_seen;
        self.last_checkpoint = snap.events_seen;
        self.ready_depth = snap.ready.len() as u64;
        // Replay the workload's own cursor: everything announced before
        // the snapshot has been consumed — initial tasks, arrivals up to
        // `now`, and the dependency releases of each completed task (in
        // completion order, read off the rebuilt schedule).
        let _ = workload.initial();
        let _ = workload.arrivals_due(snap.now);
        for run in &self.schedule.runs {
            let _ = workload.on_complete(run.task);
        }
        policy.restore(&snap.ready, &self.context(snap.now));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{CrashPlan, MemCheckpointStore};
    use crate::heteroprio::{
        heteroprio_durable, heteroprio_resume, heteroprio_traced, HeteroPrioConfig,
    };
    use crate::model::Instance;
    use heteroprio_trace::{Journal, JournalSink, MemJournal, VecSink};

    #[test]
    fn backoff_delay_is_total_and_capped() {
        let retry = RetryPolicy { max_attempts: u32::MAX, backoff_base: 0.5, backoff_cap: 1e6 };
        assert_eq!(retry.delay_after(0), 0.5);
        assert_eq!(retry.delay_after(1), 0.5);
        assert_eq!(retry.delay_after(2), 1.0);
        // Large failure counts saturate the shift (a shift of 64+ would
        // panic in debug builds) and clamp to the cap.
        for failures in [53, 63, 64, 65, 1_000, u32::MAX] {
            let d = retry.delay_after(failures);
            assert!(d.is_finite(), "delay_after({failures}) = {d}");
            assert_eq!(d, 1e6);
        }
        // Even when base · 2^63 overflows to infinity, the cap wins.
        let retry = RetryPolicy { max_attempts: 3, backoff_base: f64::MAX, backoff_cap: 7.0 };
        assert_eq!(retry.delay_after(u32::MAX), 7.0);
    }

    fn spoliation_instance() -> (Instance, Platform) {
        // Mixed affinities on 2 CPUs + 1 GPU: exercises queue pops from
        // both ends and at least one spoliation (a CPU parks on a
        // GPU-friendly 100/1 task; the GPU drains the queue and steals it).
        let inst = Instance::from_times(&[
            (100.0, 1.0),
            (100.0, 1.0),
            (100.0, 1.0),
            (1.0, 10.0),
            (2.0, 8.0),
            (90.0, 2.0),
        ]);
        (inst, Platform::new(2, 1))
    }

    #[test]
    fn every_crash_point_resumes_to_a_bit_identical_stream() {
        let (inst, plat) = spoliation_instance();
        let config = HeteroPrioConfig::new();
        let mut full = VecSink::new();
        let reference = heteroprio_traced(&inst, &plat, &config, &mut full);
        assert!(reference.spoliations > 0, "test instance should spoliate");
        let total = full.events.len() as u64;
        for crash_at in 1..=total {
            let mut journal = MemJournal::new();
            {
                let mut sink = JournalSink::new(&mut journal);
                let err = heteroprio_durable(
                    &inst,
                    &plat,
                    &config,
                    DurabilityOptions {
                        crash: CrashPlan::at_event(crash_at),
                        checkpoint_every: None,
                        store: None,
                    },
                    &mut sink,
                    &heteroprio_metrics::NullRegistry,
                )
                .expect_err("crash plan must fire");
                assert_eq!(err, EngineError::Crashed { time: err_time(&err), events: crash_at });
            }
            assert_eq!(journal.len() as u64, crash_at, "journal ends exactly at the crash");
            let prefix = journal.replay().expect("replay");
            let mut resumed = VecSink::new();
            let res = heteroprio_resume(
                &inst,
                &plat,
                &config,
                None,
                &prefix,
                &mut resumed,
                &heteroprio_metrics::NullRegistry,
            )
            .expect("resume");
            assert_eq!(resumed.events, full.events, "crash at {crash_at}");
            assert_eq!(res.schedule.runs, reference.schedule.runs);
            assert_eq!(res.schedule.aborted, reference.schedule.aborted);
        }
    }

    fn err_time(err: &EngineError) -> f64 {
        match *err {
            EngineError::Crashed { time, .. } => time,
            ref other => panic!("expected Crashed, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_resume_matches_and_survives_json_round_trip() {
        let (inst, plat) = spoliation_instance();
        let config = HeteroPrioConfig::new();
        let mut full = VecSink::new();
        let reference = heteroprio_traced(&inst, &plat, &config, &mut full);
        let total = full.events.len() as u64;
        for crash_at in 2..=total {
            let mut journal = MemJournal::new();
            let mut store = MemCheckpointStore::new();
            {
                let mut sink = JournalSink::new(&mut journal);
                heteroprio_durable(
                    &inst,
                    &plat,
                    &config,
                    DurabilityOptions {
                        crash: CrashPlan::at_event(crash_at),
                        checkpoint_every: Some(2),
                        store: Some(&mut store),
                    },
                    &mut sink,
                    &heteroprio_metrics::NullRegistry,
                )
                .expect_err("crash plan must fire");
            }
            let prefix = journal.replay().expect("replay");
            // The persisted form round-trips through JSON, like the real
            // file-backed store.
            let snapshot = store
                .latest
                .as_ref()
                .map(|s| KernelSnapshot::parse(&s.to_json()).expect("snapshot round trip"));
            let mut resumed = VecSink::new();
            let res = heteroprio_resume(
                &inst,
                &plat,
                &config,
                snapshot.as_ref(),
                &prefix,
                &mut resumed,
                &heteroprio_metrics::NullRegistry,
            )
            .expect("resume");
            assert_eq!(resumed.events, full.events, "crash at {crash_at}");
            assert_eq!(res.schedule.runs, reference.schedule.runs);
            assert_eq!(res.schedule.aborted, reference.schedule.aborted);
        }
    }

    #[test]
    fn divergent_inputs_are_reported_not_silently_accepted() {
        let (inst, plat) = spoliation_instance();
        let config = HeteroPrioConfig::new();
        let mut full = VecSink::new();
        heteroprio_traced(&inst, &plat, &config, &mut full);
        // Resume against a different instance: replay must flag the
        // divergence instead of producing a plausible-looking schedule.
        let other = Instance::from_times(&[(1.0, 8.0), (2.0, 6.0), (4.0, 4.0)]);
        let result = heteroprio_resume(
            &other,
            &plat,
            &config,
            None,
            &full.events,
            &mut heteroprio_trace::NullSink,
            &heteroprio_metrics::NullRegistry,
        );
        assert!(
            matches!(
                result,
                Err(ResumeError::Divergence { .. }) | Err(ResumeError::ShortReplay { .. })
            ),
            "got {result:?}"
        );
    }

    #[test]
    fn resume_of_a_complete_journal_reproduces_the_run() {
        let (inst, plat) = spoliation_instance();
        let config = HeteroPrioConfig::new();
        let mut full = VecSink::new();
        let reference = heteroprio_traced(&inst, &plat, &config, &mut full);
        let mut resumed = VecSink::new();
        let res = heteroprio_resume(
            &inst,
            &plat,
            &config,
            None,
            &full.events,
            &mut resumed,
            &heteroprio_metrics::NullRegistry,
        )
        .expect("resume");
        assert_eq!(resumed.events, full.events);
        assert_eq!(res.schedule.runs, reference.schedule.runs);
    }
}
