//! Schedule representation, validation and per-resource metrics.

use crate::model::{ClassId, Instance, Platform, TaskId, WorkerId};
use crate::time::{approx_eq, approx_le, tol, F64Ord};
use heteroprio_trace::{sort_causal, SchedEvent};
use std::fmt;

/// One execution interval of a task on a worker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRun {
    pub task: TaskId,
    pub worker: WorkerId,
    pub start: f64,
    pub end: f64,
}

impl TaskRun {
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete schedule: every task has exactly one *completed* run; aborted
/// runs (spoliation victims) are recorded separately and consume their
/// worker's time without producing work.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    pub runs: Vec<TaskRun>,
    pub aborted: Vec<TaskRun>,
}

/// Why a schedule failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    MissingTask(TaskId),
    DuplicateTask(TaskId),
    UnknownTask(TaskId),
    UnknownWorker(WorkerId),
    NegativeInterval { task: TaskId, start: f64, end: f64 },
    WrongDuration { task: TaskId, expected: f64, actual: f64 },
    Overlap { worker: WorkerId, first: TaskId, second: TaskId, at: f64 },
    AbortedTooLong { task: TaskId, limit: f64, actual: f64 },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingTask(t) => write!(f, "task {t} never completes"),
            ScheduleError::DuplicateTask(t) => write!(f, "task {t} completes more than once"),
            ScheduleError::UnknownTask(t) => write!(f, "run references unknown task {t}"),
            ScheduleError::UnknownWorker(w) => write!(f, "run references unknown worker {w:?}"),
            ScheduleError::NegativeInterval { task, start, end } => {
                write!(f, "task {task} has an empty or reversed interval [{start}, {end}]")
            }
            ScheduleError::WrongDuration { task, expected, actual } => {
                write!(f, "task {task} runs for {actual}, expected {expected}")
            }
            ScheduleError::Overlap { worker, first, second, at } => {
                write!(f, "worker {worker:?} runs {first} and {second} simultaneously at t={at}")
            }
            ScheduleError::AbortedTooLong { task, limit, actual } => {
                write!(f, "aborted run of {task} lasts {actual}, at least its full time {limit}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Completion time of the whole schedule (0 for an empty one).
    /// Aborted runs are included: a worker burning time on a task that is
    /// later restarted elsewhere is still busy.
    pub fn makespan(&self) -> f64 {
        self.runs.iter().chain(&self.aborted).map(|r| r.end).fold(0.0, f64::max)
    }

    /// The completed run of a task, if any.
    pub fn run_of(&self, task: TaskId) -> Option<&TaskRun> {
        self.runs.iter().find(|r| r.task == task)
    }

    /// Total productive (completed-run) time on one resource class.
    pub fn busy_time(&self, platform: &Platform, class: impl Into<ClassId>) -> f64 {
        let class = class.into();
        self.runs
            .iter()
            .filter(|r| platform.class_of(r.worker) == class)
            .map(TaskRun::duration)
            .sum()
    }

    /// Total time spent on runs that were later aborted, per class.
    pub fn aborted_time(&self, platform: &Platform, class: impl Into<ClassId>) -> f64 {
        let class = class.into();
        self.aborted
            .iter()
            .filter(|r| platform.class_of(r.worker) == class)
            .map(TaskRun::duration)
            .sum()
    }

    /// Idle time of a resource class over `[0, horizon]`.
    ///
    /// Following the paper's footnote, work performed on aborted runs counts
    /// as idle time, so all schedulers are charged for the same total work.
    pub fn idle_time(&self, platform: &Platform, class: impl Into<ClassId>, horizon: f64) -> f64 {
        let class = class.into();
        let capacity = horizon * platform.count(class) as f64;
        (capacity - self.busy_time(platform, class)).max(0.0)
    }

    /// Tasks assigned (completed) per resource class.
    pub fn tasks_on(&self, platform: &Platform, class: impl Into<ClassId>) -> Vec<TaskId> {
        let class = class.into();
        self.runs.iter().filter(|r| platform.class_of(r.worker) == class).map(|r| r.task).collect()
    }

    /// The paper's §6.2 "equivalent acceleration factor" of the set of tasks
    /// assigned to one resource class: `Σ p_i / Σ q_i` over completed runs,
    /// where `q_i` generalizes to each task's best time on a non-spill class
    /// (identical to the GPU time when `k = 2`). `None` when the class
    /// received no task.
    pub fn equivalent_accel_factor(
        &self,
        instance: &Instance,
        platform: &Platform,
        class: impl Into<ClassId>,
    ) -> Option<f64> {
        let tasks = self.tasks_on(platform, class);
        if tasks.is_empty() {
            return None;
        }
        let p: f64 = tasks.iter().map(|&t| instance.task(t).time_on(ClassId(0))).sum();
        let q: f64 = tasks
            .iter()
            .map(|&t| {
                let task = instance.task(t);
                (1..task.k()).map(|c| task.time_on(ClassId(c as u16))).fold(f64::INFINITY, f64::min)
            })
            .sum();
        Some(p / q)
    }

    /// Number of spoliated (aborted then restarted) tasks.
    pub fn spoliation_count(&self) -> usize {
        self.aborted.len()
    }

    /// Reconstruct a best-effort [`SchedEvent`] stream from the finished
    /// schedule, for schedulers that were not traced live (HEFT and the
    /// other static heuristics).
    ///
    /// The stream contains a `TaskStart`/`TaskComplete` pair per completed
    /// run, a `TaskStart`/`Spoliation` pair per aborted run (the thief is
    /// the worker of the task's completed run), and `WorkerIdleBegin`/`End`
    /// covering every gap on every worker over `[0, makespan]`. Queue and
    /// policy events (`TaskReady`, `QueuePop`, `PolicyDecision`) cannot be
    /// recovered post-hoc — that transient information is exactly what live
    /// tracing adds. Events are returned in causal order.
    pub fn to_events(&self, platform: &Platform) -> Vec<SchedEvent> {
        let makespan = self.makespan();
        let mut events =
            Vec::with_capacity(2 * (self.runs.len() + self.aborted.len() + platform.workers()));
        for r in &self.runs {
            events.push(SchedEvent::TaskStart {
                time: r.start,
                task: r.task.0,
                worker: r.worker.0,
                expected_end: r.end,
            });
            events.push(SchedEvent::TaskComplete {
                time: r.end,
                task: r.task.0,
                worker: r.worker.0,
            });
        }
        for a in &self.aborted {
            let thief = self.run_of(a.task).map_or(a.worker.0, |r| r.worker.0);
            // A zero-duration abort (spoliated the instant it started) gets
            // only the Spoliation event: at equal timestamps the causal sort
            // puts Spoliation before TaskStart, and the orphaned start would
            // corrupt the aggregator's open-run tracking.
            if a.duration() > 0.0 {
                events.push(SchedEvent::TaskStart {
                    time: a.start,
                    task: a.task.0,
                    worker: a.worker.0,
                    expected_end: a.end,
                });
            }
            events.push(SchedEvent::Spoliation {
                time: a.end,
                task: a.task.0,
                victim: a.worker.0,
                thief,
                wasted_work: a.duration(),
            });
        }
        for w in platform.all_workers() {
            let mut busy: Vec<(f64, f64)> = self
                .runs
                .iter()
                .chain(&self.aborted)
                .filter(|r| r.worker == w)
                .map(|r| (r.start, r.end))
                .collect();
            busy.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut cursor = 0.0;
            for (start, end) in busy {
                if start > cursor {
                    events.push(SchedEvent::WorkerIdleBegin { time: cursor, worker: w.0 });
                    events.push(SchedEvent::WorkerIdleEnd { time: start, worker: w.0 });
                }
                cursor = cursor.max(end);
            }
            if cursor < makespan {
                events.push(SchedEvent::WorkerIdleBegin { time: cursor, worker: w.0 });
                events.push(SchedEvent::WorkerIdleEnd { time: makespan, worker: w.0 });
            }
        }
        sort_causal(&mut events);
        events
    }

    /// Check structural validity against an instance and platform:
    /// every task completes exactly once with the right duration, runs on a
    /// known worker, no two runs (completed or aborted) overlap on a worker,
    /// and aborted runs are strictly shorter than the task's full time.
    pub fn validate(&self, instance: &Instance, platform: &Platform) -> Result<(), ScheduleError> {
        self.validate_with_overhead(instance, platform, 0.0)
    }

    /// Like [`Schedule::validate`], but each run may last up to
    /// `max_overhead` longer than the task's nominal time — for schedules
    /// produced under an execution-cost model (e.g. cross-class transfer
    /// penalties) where durations exceed the calibrated times.
    ///
    /// Validation is the composition of the named checks below (which the
    /// audit layer also calls individually, so the rules live in one place).
    pub fn validate_with_overhead(
        &self,
        instance: &Instance,
        platform: &Platform,
        max_overhead: f64,
    ) -> Result<(), ScheduleError> {
        self.check_membership(instance, platform)?;
        self.check_completeness(instance)?;
        self.check_durations(instance, platform, max_overhead)?;
        self.check_overlap(platform)
    }

    /// Structure-only validation: completeness, known ids, positive
    /// intervals and per-worker non-overlap — but no duration checks.
    /// This is the right check for executions under a fault plan, where
    /// stochastic execution times decouple actual durations from the
    /// calibrated estimates and failed attempts cut runs short.
    pub fn validate_structure(
        &self,
        instance: &Instance,
        platform: &Platform,
    ) -> Result<(), ScheduleError> {
        self.check_membership(instance, platform)?;
        self.check_completeness(instance)?;
        self.check_overlap(platform)
    }

    /// Every run (completed or aborted) references a known task and worker
    /// and spans a sane interval: strictly positive for completed runs,
    /// non-negative for aborted ones (a spoliation can land the very instant
    /// a run starts).
    pub fn check_membership(
        &self,
        instance: &Instance,
        platform: &Platform,
    ) -> Result<(), ScheduleError> {
        for r in &self.runs {
            if r.task.index() >= instance.len() {
                return Err(ScheduleError::UnknownTask(r.task));
            }
            if r.worker.index() >= platform.workers() {
                return Err(ScheduleError::UnknownWorker(r.worker));
            }
            // Deliberate negated comparison: rejects NaN endpoints too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(r.end > r.start) {
                return Err(ScheduleError::NegativeInterval {
                    task: r.task,
                    start: r.start,
                    end: r.end,
                });
            }
        }
        for r in &self.aborted {
            if r.task.index() >= instance.len() {
                return Err(ScheduleError::UnknownTask(r.task));
            }
            if r.worker.index() >= platform.workers() {
                return Err(ScheduleError::UnknownWorker(r.worker));
            }
            if r.end < r.start {
                return Err(ScheduleError::NegativeInterval {
                    task: r.task,
                    start: r.start,
                    end: r.end,
                });
            }
        }
        Ok(())
    }

    /// Every task of the instance completes exactly once: no duplicates, no
    /// missing tasks. Assumes task ids are in range (see
    /// [`Schedule::check_membership`]); out-of-range ids are reported as
    /// unknown here too rather than panicking.
    pub fn check_completeness(&self, instance: &Instance) -> Result<(), ScheduleError> {
        let mut seen = vec![false; instance.len()];
        for r in &self.runs {
            if r.task.index() >= instance.len() {
                return Err(ScheduleError::UnknownTask(r.task));
            }
            let slot = seen.get_mut(r.task.index()).expect("range-checked above");
            if *slot {
                return Err(ScheduleError::DuplicateTask(r.task));
            }
            *slot = true;
        }
        for (i, s) in seen.iter().enumerate() {
            if !s {
                return Err(ScheduleError::MissingTask(TaskId(i as u32)));
            }
        }
        Ok(())
    }

    /// Completed runs last their task's calibrated time on the worker's
    /// class (up to `max_overhead` extra), and aborted runs stop strictly
    /// before the task would have completed (otherwise they should have
    /// completed). Meaningless under stochastic execution times — fault
    /// runs use [`Schedule::validate_structure`] which skips this check.
    pub fn check_durations(
        &self,
        instance: &Instance,
        platform: &Platform,
        max_overhead: f64,
    ) -> Result<(), ScheduleError> {
        for r in &self.runs {
            let expected = instance.task(r.task).time_on(platform.class_of(r.worker));
            let within_band = approx_eq(r.duration(), expected)
                || (r.duration() >= expected && approx_le(r.duration(), expected + max_overhead));
            if !within_band {
                return Err(ScheduleError::WrongDuration {
                    task: r.task,
                    expected,
                    actual: r.duration(),
                });
            }
        }
        for r in &self.aborted {
            let full = instance.task(r.task).time_on(platform.class_of(r.worker)) + max_overhead;
            if r.duration() >= full + tol(r.duration(), full) {
                return Err(ScheduleError::AbortedTooLong {
                    task: r.task,
                    limit: full,
                    actual: r.duration(),
                });
            }
        }
        Ok(())
    }

    /// No two runs (completed or aborted) overlap on the same worker.
    pub fn check_overlap(&self, platform: &Platform) -> Result<(), ScheduleError> {
        let mut per_worker: Vec<Vec<&TaskRun>> = vec![Vec::new(); platform.workers()];
        for r in self.runs.iter().chain(&self.aborted) {
            per_worker
                .get_mut(r.worker.index())
                .expect("worker ids bounded by platform.workers()")
                .push(r);
        }
        for (w, runs) in per_worker.iter_mut().enumerate() {
            // Sort by (start, end) so zero-length aborted runs sort before a
            // run starting at the same instant.
            runs.sort_by_key(|r| (F64Ord::new(r.start), F64Ord::new(r.end)));
            for pair in runs.windows(2) {
                let [a, b] = *pair else { unreachable!("windows(2) yields pairs") };
                if !approx_le(a.end, b.start) {
                    return Err(ScheduleError::Overlap {
                        worker: WorkerId(w as u32),
                        first: a.task,
                        second: b.task,
                        at: b.start,
                    });
                }
            }
        }
        Ok(())
    }

    /// Render a small schedule as an ASCII Gantt chart (for examples and the
    /// Figure 1 reproduction). One row per worker; `#` marks completed work,
    /// `x` marks aborted work.
    pub fn render_ascii(&self, platform: &Platform, width: usize) -> String {
        let horizon = self.makespan().max(1e-12);
        let scale = width as f64 / horizon;
        let mut out = String::new();
        for w in platform.all_workers() {
            let kind = platform.class_of(w);
            let mut row = vec![b'.'; width];
            let mut labels: Vec<(usize, String)> = Vec::new();
            for r in self.runs.iter().chain(&self.aborted).filter(|r| r.worker == w) {
                // lint: allow(cast-trunc): render quantization to character cells; clamped below.
                let s = ((r.start * scale) as usize).min(width - 1);
                // lint: allow(cast-trunc): render quantization to character cells; clamped below.
                let e = ((r.end * scale).ceil() as usize).clamp(s + 1, width);
                let mark = if self.runs.iter().any(|c| std::ptr::eq(c, r)) { b'#' } else { b'x' };
                for c in row.get_mut(s..e).into_iter().flatten() {
                    *c = mark;
                }
                labels.push((s, format!("{}", r.task)));
            }
            labels.sort_by_key(|&(s, _)| s);
            let tags: Vec<String> = labels.into_iter().map(|(_, l)| l).collect();
            out.push_str(&format!(
                "{kind} {:>3} |{}| {}\n",
                w.0,
                String::from_utf8(row).expect("row holds only ASCII marks"),
                tags.join(" ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ResourceKind, Task};

    fn simple_setup() -> (Instance, Platform) {
        let inst = Instance::from_times(&[(2.0, 1.0), (4.0, 2.0)]);
        let plat = Platform::new(1, 1);
        (inst, plat)
    }

    #[test]
    fn valid_schedule_passes() {
        let (inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 2.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(1), start: 0.0, end: 2.0 },
            ],
            aborted: vec![],
        };
        sched.validate(&inst, &plat).unwrap();
        assert_eq!(sched.makespan(), 2.0);
    }

    #[test]
    fn missing_task_fails() {
        let (inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 2.0 }],
            aborted: vec![],
        };
        assert_eq!(sched.validate(&inst, &plat), Err(ScheduleError::MissingTask(TaskId(1))));
    }

    #[test]
    fn duplicate_task_fails() {
        let (inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 2.0 },
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 2.0, end: 4.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(1), start: 0.0, end: 2.0 },
            ],
            aborted: vec![],
        };
        assert_eq!(sched.validate(&inst, &plat), Err(ScheduleError::DuplicateTask(TaskId(0))));
    }

    #[test]
    fn wrong_duration_fails() {
        let (inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 3.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(1), start: 0.0, end: 2.0 },
            ],
            aborted: vec![],
        };
        assert!(matches!(sched.validate(&inst, &plat), Err(ScheduleError::WrongDuration { .. })));
    }

    #[test]
    fn overlap_fails() {
        let (inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 2.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(0), start: 1.0, end: 5.0 },
            ],
            aborted: vec![],
        };
        assert!(matches!(sched.validate(&inst, &plat), Err(ScheduleError::Overlap { .. })));
    }

    #[test]
    fn aborted_run_must_be_partial() {
        let (inst, plat) = simple_setup();
        let mut sched = Schedule {
            runs: vec![
                // task 0 spoliated from CPU (2.0) to GPU: aborted at 1.0, reran on GPU.
                TaskRun { task: TaskId(0), worker: WorkerId(1), start: 1.0, end: 2.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(0), start: 2.0, end: 6.0 },
            ],
            aborted: vec![TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 1.0 }],
        };
        sched.validate(&inst, &plat).unwrap();
        // An "aborted" run as long as the full task is invalid.
        sched.aborted[0].end = 2.5;
        assert!(matches!(sched.validate(&inst, &plat), Err(ScheduleError::AbortedTooLong { .. })));
    }

    #[test]
    fn structure_validation_ignores_durations_but_not_structure() {
        let (inst, plat) = simple_setup();
        // Jittered durations: wrong for strict validation, fine structurally.
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 3.7 },
                TaskRun { task: TaskId(1), worker: WorkerId(1), start: 0.0, end: 0.9 },
            ],
            aborted: vec![TaskRun { task: TaskId(1), worker: WorkerId(0), start: 4.0, end: 99.0 }],
        };
        assert!(sched.validate(&inst, &plat).is_err());
        sched.validate_structure(&inst, &plat).unwrap();
        // Structural defects still fail: overlap...
        let mut bad = sched.clone();
        bad.runs[1] = TaskRun { task: TaskId(1), worker: WorkerId(0), start: 1.0, end: 2.0 };
        assert!(matches!(bad.validate_structure(&inst, &plat), Err(ScheduleError::Overlap { .. })));
        // ...and missing tasks.
        let mut bad = sched.clone();
        bad.runs.pop();
        assert_eq!(
            bad.validate_structure(&inst, &plat),
            Err(ScheduleError::MissingTask(TaskId(1)))
        );
    }

    #[test]
    fn metrics_account_for_aborts() {
        let (_inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(1), start: 1.0, end: 2.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(0), start: 2.0, end: 6.0 },
            ],
            aborted: vec![TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 1.0 }],
        };
        assert_eq!(sched.makespan(), 6.0);
        assert_eq!(sched.busy_time(&plat, ResourceKind::Cpu), 4.0);
        assert_eq!(sched.aborted_time(&plat, ResourceKind::Cpu), 1.0);
        // idle counts the aborted hour as idle: 6*1 - 4 = 2
        assert_eq!(sched.idle_time(&plat, ResourceKind::Cpu, 6.0), 2.0);
        assert_eq!(sched.spoliation_count(), 1);
    }

    #[test]
    fn equivalent_accel_factor_matches_definition() {
        let mut inst = Instance::new();
        inst.push(Task::new(10.0, 1.0));
        inst.push(Task::new(2.0, 2.0));
        let plat = Platform::new(1, 1);
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(1), start: 0.0, end: 1.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(0), start: 0.0, end: 2.0 },
            ],
            aborted: vec![],
        };
        let gpu = sched.equivalent_accel_factor(&inst, &plat, ResourceKind::Gpu).unwrap();
        assert_eq!(gpu, 10.0);
        let cpu = sched.equivalent_accel_factor(&inst, &plat, ResourceKind::Cpu).unwrap();
        assert_eq!(cpu, 1.0);
    }

    #[test]
    fn ascii_render_mentions_every_worker() {
        let (_inst, plat) = simple_setup();
        let sched = Schedule {
            runs: vec![
                TaskRun { task: TaskId(0), worker: WorkerId(0), start: 0.0, end: 2.0 },
                TaskRun { task: TaskId(1), worker: WorkerId(1), start: 0.0, end: 2.0 },
            ],
            aborted: vec![],
        };
        let art = sched.render_ascii(&plat, 40);
        assert!(art.contains("CPU"));
        assert!(art.contains("GPU"));
        assert!(art.contains("T0"));
        assert!(art.contains("T1"));
    }
}
