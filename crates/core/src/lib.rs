//! # heteroprio-core
//!
//! Core model and algorithm of the IPDPS 2017 paper *"Approximation Proofs
//! of a Fast and Efficient List Scheduling Algorithm for Task-Based Runtime
//! Systems on Multicores and GPUs"* (Beaumont, Eyraud-Dubois, Kumar).
//!
//! The crate provides:
//!
//! * the scheduling **model**: independent tasks with unrelated processing
//!   times `p` (CPU) and `q` (GPU) on a platform of `m` CPUs and `n` GPUs
//!   ([`Instance`], [`Platform`], [`Task`]);
//! * a **schedule** representation with validation and the paper's
//!   evaluation metrics (makespan, per-class idle time with aborted work
//!   counted as idle, equivalent acceleration factors) ([`Schedule`]);
//! * the **HeteroPrio** algorithm for independent tasks — affinity-ordered
//!   double-ended queue plus the spoliation mechanism — with every choice
//!   Algorithm 1 leaves open exposed as configuration ([`heteroprio()`](heteroprio::heteroprio),
//!   [`HeteroPrioConfig`]);
//! * classic Graham **list scheduling** on identical machines ([`list`]),
//!   the substrate of Lemma 6 and of the Figure 4 construction;
//! * the event-driven **kernel** shared by every execution engine in the
//!   workspace ([`kernel`]): one discrete-event loop owning time, the
//!   completion/fault/retry heaps, worker liveness and trace emission,
//!   driven by pluggable [`kernel::Workload`] / [`kernel::KernelPolicy`]
//!   implementations.
//!
//! ```
//! use heteroprio_core::{heteroprio, HeteroPrioConfig, Instance, Platform};
//!
//! // Two GPU-friendly tasks on 1 CPU + 1 GPU: the list phase parks one on
//! // the CPU, then the GPU finishes and spoliates it.
//! let instance = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
//! let platform = Platform::new(1, 1);
//! let result = heteroprio(&instance, &platform, &HeteroPrioConfig::new());
//! assert_eq!(result.makespan(), 2.0);
//! assert_eq!(result.spoliations, 1);
//! ```

#![forbid(unsafe_code)]

pub mod durability;
pub mod gantt;
pub mod heteroprio;
pub mod kernel;
pub mod list;
pub mod model;
pub mod online;
pub mod parallel;
pub mod queue;
pub mod schedule;
pub mod theory;
pub mod time;

pub use durability::{
    schedule_from_events, CheckpointStore, CrashPlan, DurabilityOptions, FileCheckpointStore,
    KernelSnapshot, MemCheckpointStore, MeteredJournal, ResumeError,
};
pub use heteroprio::{
    heteroprio, heteroprio_durable, heteroprio_metered, heteroprio_resume, heteroprio_traced,
    sorted_queue, HeteroPrioConfig, HeteroPrioResult, QueueTieBreak, SpoliationTieBreak,
    WorkerOrder,
};
pub use model::{
    ClassId, ClassTable, Instance, ModelError, Platform, ResourceKind, Task, TaskId, WorkerId,
    MAX_CLASSES,
};
pub use online::{heteroprio_online, heteroprio_online_traced};
pub use queue::{AffinityQueue, ClassQueue};
pub use schedule::{Schedule, ScheduleError, TaskRun};
pub use theory::{is_tight, known_lower_bound, proven_upper_bound};
pub use time::PHI;
