//! The HeteroPrio algorithm for a set of independent tasks (Algorithm 1 of
//! the paper), including the spoliation mechanism.
//!
//! Ready tasks sit in a single queue sorted by non-increasing acceleration
//! factor ρ = p/q. An idle GPU pops from the *front* (most GPU-friendly
//! task), an idle CPU pops from the *back*. When the queue is empty, an idle
//! worker examines the tasks currently running on the *other* resource class
//! in decreasing order of expected completion time, and **spoliates** the
//! first one whose completion it can strictly improve: the victim run is
//! aborted (all progress lost — this is not preemption) and the task restarts
//! on the idle worker.
//!
//! Algorithm 1 leaves three choices unspecified; each tightness proof in the
//! paper resolves them adversarially ("consider the following *valid*
//! HeteroPrio schedule"), so they are explicit knobs here:
//!
//! * which idle worker acts first ([`WorkerOrder`]),
//! * the queue order among tasks with equal ρ ([`QueueTieBreak`]),
//! * the spoliation order among victims with equal completion time
//!   ([`SpoliationTieBreak`]).
//!
//! The event loop itself lives in [`crate::kernel`]; this module contributes
//! the Algorithm 1 queue discipline as a [`KernelPolicy`] over an
//! all-ready-at-zero [`Workload`].

use crate::durability::{DurabilityOptions, KernelSnapshot, ResumeError};
use crate::kernel::{
    self, EngineError, FaultModel, KernelContext, KernelOptions, KernelPolicy, Pick, RunningTask,
    SnapshotPolicy, Workload,
};
use crate::model::{ClassId, Instance, Platform, ResourceKind, TaskId, WorkerId};
use crate::queue::ClassQueue;
use crate::schedule::Schedule;
use crate::time::{strictly_less, F64Ord};
use heteroprio_metrics::{MetricsRegistry, NullRegistry};
use heteroprio_trace::{NullSink, QueueEnd, TraceSink, TraceSummary};
use std::collections::VecDeque;

/// Order in which simultaneously idle workers are given the chance to act.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WorkerOrder {
    /// GPUs pick first (the StarPU-like default: serve the scarce, fast
    /// resource first).
    #[default]
    GpusFirst,
    /// CPUs pick first.
    CpusFirst,
    /// Strictly by worker id (CPUs are ids `0..m`, so CPUs first by class).
    ById,
}

/// Ordering of the ready queue among tasks with equal acceleration factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueTieBreak {
    /// The paper's §2.2 rule: among ties with ρ ≥ 1 the highest-priority task
    /// comes first (so GPUs, popping the front, see it first); among ties
    /// with ρ < 1 the lowest-priority task comes first (so CPUs, popping the
    /// back, see the highest priority first).
    #[default]
    Priority,
    /// Stable order: ties keep their instance order. Used by the worst-case
    /// constructions, which pick an adversarial insertion order.
    InsertionOrder,
}

/// Ordering among spoliation candidates with equal expected completion time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpoliationTieBreak {
    /// Highest priority first (the paper's DAG-mode rule), then lowest id.
    #[default]
    PriorityThenId,
    /// Lowest task id first.
    IdAscending,
    /// Highest task id first.
    IdDescending,
}

/// Configuration of the unspecified choices in Algorithm 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeteroPrioConfig {
    /// Disable to obtain the pure list schedule `S_HP^NS` of the paper.
    pub disable_spoliation: bool,
    pub worker_order: WorkerOrder,
    pub queue_tie: QueueTieBreak,
    pub spoliation_tie: SpoliationTieBreak,
}

impl HeteroPrioConfig {
    /// The default configuration, with spoliation enabled.
    pub fn new() -> Self {
        HeteroPrioConfig::default()
    }

    /// The pure list-schedule variant (no spoliation) — the paper's
    /// `S_HP^NS`, and the §3 cautionary tale about list scheduling on
    /// unrelated resources.
    pub fn without_spoliation() -> Self {
        HeteroPrioConfig { disable_spoliation: true, ..Default::default() }
    }
}

/// Outcome of a HeteroPrio run.
#[derive(Clone, Debug)]
pub struct HeteroPrioResult {
    pub schedule: Schedule,
    /// `T_FirstIdle`: the first instant at which some worker found the queue
    /// empty. `None` when every worker was busy until its last completion
    /// (never happens if there are fewer tasks than workers).
    /// Derived from [`TraceSummary::first_idle`].
    pub first_idle: Option<f64>,
    /// Number of successful spoliations. Derived from
    /// [`TraceSummary::spoliation_count`].
    pub spoliations: usize,
    /// Per-worker time accounting and spoliation totals aggregated from the
    /// event stream the run emitted.
    pub summary: TraceSummary,
}

impl HeteroPrioResult {
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }
}

/// Build the ready queue: non-increasing acceleration factor, ties per
/// `tie`. Exposed for reuse by the DAG-mode policy in
/// `heteroprio-schedulers`.
/// The sort keys are computed once per task and cached, not re-derived in
/// the comparator: on a million-task queue the comparator runs tens of
/// millions of times, and the two `accel_factor()` divisions per call used
/// to dominate the build cost. Negating a float is an exact reversal of
/// `total_cmp`'s order (the sign-bit flip mirrors the total order,
/// including ±0.0), so sorting ascending by `F64Ord(-ρ)` is bit-identical
/// to the old descending `ρ.total_cmp` comparator.
pub fn sorted_queue(instance: &Instance, ids: &[TaskId], tie: QueueTieBreak) -> VecDeque<TaskId> {
    match tie {
        QueueTieBreak::InsertionOrder => {
            // Equal-ρ tasks keep their order in `ids`: the input position
            // is part of the (total) key, so equal-ρ ties resolve to FIFO
            // under either sort algorithm — identical to the old stable
            // ρ-only comparator.
            let mut keyed: Vec<(F64Ord, usize)> = ids
                .iter()
                .enumerate()
                .map(|(pos, &id)| (F64Ord(-instance.task(id).accel_factor()), pos))
                .collect();
            sort_total(&mut keyed);
            keyed
                .into_iter()
                .map(|(_, pos)| *ids.get(pos).expect("pos from enumerate over ids"))
                .collect()
        }
        QueueTieBreak::Priority => {
            // Equal ρ: for ρ >= 1 put high priority first (GPU side), for
            // ρ < 1 put low priority first (so the back of the queue,
            // served to CPUs, holds the highest priority). Encoded in the
            // key: ascending -priority ≡ descending priority under
            // total_cmp, with TaskId as the final total tie-break.
            let mut keyed: Vec<(F64Ord, F64Ord, TaskId)> = ids
                .iter()
                .map(|&id| {
                    let t = instance.task(id);
                    let rho = t.accel_factor();
                    // lint: allow(float-ord): orientation branch, not arithmetic — ρ = 1
                    // exactly is a documented policy choice (GPU-side tie rule applies).
                    let oriented = if rho >= 1.0 { -t.priority } else { t.priority };
                    (F64Ord(-rho), F64Ord(oriented), id)
                })
                .collect();
            sort_total(&mut keyed);
            keyed.into_iter().map(|(_, _, id)| id).collect()
        }
    }
}

/// Sort by a total key, picking the algorithm from the input's run
/// structure. Generated instances arrive as a handful of long already-
/// sorted runs of identical tasks, which the stable merge sort detects
/// and merges in near-linear time; disordered million-task queues are
/// better served by the unstable pattern-defeating sort's smaller
/// constants and lack of a merge buffer. The key is total, so both
/// algorithms produce the same order — the dispatch is purely a
/// performance choice and cannot perturb the schedule.
fn sort_total<T: Ord>(keyed: &mut [T]) {
    const MAX_RUNS: usize = 32;
    let mut runs = 1usize;
    for w in keyed.windows(2) {
        let [a, b] = w else { unreachable!("windows(2) yields pairs") };
        if b < a {
            runs += 1;
            if runs > MAX_RUNS {
                break;
            }
        }
    }
    if runs <= MAX_RUNS {
        keyed.sort();
    } else {
        keyed.sort_unstable();
    }
}

/// The paper's spoliation victim scan for idle worker `w`: tasks running on
/// *any other* resource class, in decreasing order of expected completion
/// time (ties per `tie`), first one strictly improvable. On the canonical
/// two-class platform "any other class" is exactly the paper's "the other
/// resource class"; for `k ≥ 3` the decreasing-completion scan *is* the
/// argmax over other classes (the victim whose run the thief improves the
/// most urgently). Shared by the offline and online queue policies.
pub(crate) fn scan_victim(
    instance: &Instance,
    tie: SpoliationTieBreak,
    w: WorkerId,
    ctx: &KernelContext<'_>,
) -> Option<WorkerId> {
    let my_class = ctx.platform.class_of(w);
    let mut candidates: Vec<(WorkerId, RunningTask)> = ctx
        .platform
        .all_workers()
        .filter(|&v| ctx.platform.class_of(v) != my_class)
        .filter_map(|v| ctx.running.get(v.index()).copied().flatten().map(|r| (v, r)))
        .collect();
    candidates.sort_by(|(_, a), (_, b)| {
        b.end.total_cmp(&a.end).then_with(|| {
            let ta = instance.task(a.task);
            let tb = instance.task(b.task);
            match tie {
                SpoliationTieBreak::PriorityThenId => {
                    tb.priority.total_cmp(&ta.priority).then(a.task.cmp(&b.task))
                }
                SpoliationTieBreak::IdAscending => a.task.cmp(&b.task),
                SpoliationTieBreak::IdDescending => b.task.cmp(&a.task),
            }
        })
    });
    for (v, r) in candidates {
        let new_end = ctx.now + instance.task(r.task).time_on(my_class);
        if strictly_less(new_end, r.end) {
            return Some(v);
        }
    }
    None
}

/// All tasks of an [`Instance`] ready at time zero, no dependencies.
struct IndependentWorkload<'a> {
    instance: &'a Instance,
}

impl Workload for IndependentWorkload<'_> {
    fn len(&self) -> usize {
        self.instance.len()
    }

    fn initial(&mut self) -> Vec<TaskId> {
        self.instance.ids().collect()
    }

    fn duration(&self, task: TaskId, class: ClassId, _ran_kind: &[Option<ClassId>]) -> f64 {
        self.instance.task(task).time_on(class)
    }
}

/// The ready structure of the independent-task policy.
///
/// The canonical two-class platform keeps Algorithm 1's double-ended
/// sorted queue verbatim (its pops and `QueueEnd` annotations are pinned
/// by the parity suites); a `k ≥ 3` platform uses the per-class-pair
/// [`ClassQueue`], whose argmax pop degenerates to the same front/back
/// discipline at `k = 2`.
enum ReadyQueue {
    Deque(VecDeque<TaskId>),
    Classes(Box<ClassQueue>),
}

impl ReadyQueue {
    fn new(platform: &Platform, config: &HeteroPrioConfig) -> Self {
        if platform.k() == 2 {
            ReadyQueue::Deque(VecDeque::new())
        } else {
            ReadyQueue::Classes(Box::new(ClassQueue::new(platform.k(), config.queue_tie)))
        }
    }
}

/// Algorithm 1's affinity-ordered queue as a [`KernelPolicy`].
struct IndependentPolicy<'a> {
    instance: &'a Instance,
    config: HeteroPrioConfig,
    queue: ReadyQueue,
}

impl KernelPolicy for IndependentPolicy<'_> {
    fn on_ready(&mut self, tasks: &[TaskId], _ctx: &KernelContext<'_>) {
        // Independent tasks: everything arrives in one batch at t = 0 (plus
        // kernel restarts after spoliation, which re-enter through `pick`'s
        // own bookkeeping — the kernel restarts stolen tasks directly, so
        // this is called exactly once).
        match &mut self.queue {
            ReadyQueue::Deque(q) => {
                *q = sorted_queue(self.instance, tasks, self.config.queue_tie);
            }
            ReadyQueue::Classes(q) => {
                let mut fresh = ClassQueue::new(q.k(), self.config.queue_tie);
                for &t in tasks {
                    fresh.push(self.instance, t);
                }
                **q = fresh;
            }
        }
    }

    fn pick(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<Pick> {
        match &mut self.queue {
            ReadyQueue::Deque(q) => {
                let (popped, end) = match ctx.platform.kind_of(worker) {
                    ResourceKind::Gpu => (q.pop_front(), QueueEnd::Front),
                    ResourceKind::Cpu => (q.pop_back(), QueueEnd::Back),
                };
                popped.map(|task| Pick { task, queue_end: Some(end) })
            }
            // The pair-queue pop reports which end of the winning pair it
            // came from, but the auditor's pop-order rule is a two-class
            // certificate — leave the annotation off so k ≥ 3 traces make
            // no claim the rule could misread.
            ReadyQueue::Classes(q) => q
                .pop(ctx.platform.class_of(worker))
                .map(|(task, _side)| Pick { task, queue_end: None }),
        }
    }

    fn spoliation_victim(&mut self, worker: WorkerId, ctx: &KernelContext<'_>) -> Option<WorkerId> {
        if self.config.disable_spoliation {
            return None;
        }
        scan_victim(self.instance, self.config.spoliation_tie, worker, ctx)
    }

    fn worker_order(&self) -> WorkerOrder {
        self.config.worker_order
    }
}

impl SnapshotPolicy for IndependentPolicy<'_> {
    fn ready_order(&self) -> Vec<TaskId> {
        match &self.queue {
            ReadyQueue::Deque(q) => q.iter().copied().collect(),
            ReadyQueue::Classes(q) => q.iter().collect(),
        }
    }
    // The default `restore` (re-announce via `on_ready`) is exact here:
    // `sorted_queue` is a deterministic total order under Priority ties and
    // a stable sort under InsertionOrder ties, so feeding back the saved
    // queue order reproduces it.
}

/// Run HeteroPrio (Algorithm 1) on an instance of independent tasks.
pub fn heteroprio(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
) -> HeteroPrioResult {
    heteroprio_traced(instance, platform, config, &mut NullSink)
}

/// [`heteroprio`] with a trace sink: every scheduling decision is emitted as
/// a [`SchedEvent`](heteroprio_trace::SchedEvent). The run is generic over
/// the sink, so passing [`NullSink`] compiles the tracing away entirely.
pub fn heteroprio_traced<S: TraceSink>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
) -> HeteroPrioResult {
    heteroprio_metered(instance, platform, config, sink, &NullRegistry)
}

/// [`heteroprio_traced`] with a metrics registry: kernel perf counters,
/// queue-depth gauges and pick-latency histograms are recorded into
/// `metrics`. [`NullRegistry`] compiles the instrumentation away, exactly
/// like [`NullSink`] does for tracing.
pub fn heteroprio_metered<S: TraceSink, M: MetricsRegistry + ?Sized>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
    metrics: &M,
) -> HeteroPrioResult {
    let mut workload = IndependentWorkload { instance };
    let mut policy =
        IndependentPolicy { instance, config: *config, queue: ReadyQueue::new(platform, config) };
    let outcome = kernel::run(
        platform,
        &mut workload,
        &mut policy,
        FaultModel::none(),
        KernelOptions { emit_decisions: false, metrics },
        sink,
    )
    .expect("fault-free run cannot fail");
    HeteroPrioResult {
        schedule: outcome.schedule,
        first_idle: outcome.first_idle,
        spoliations: outcome.spoliations,
        summary: outcome.summary,
    }
}

/// [`heteroprio_metered`] through the durability plane: crash injection and
/// checkpoint capture (see [`kernel::run_durable`]). Journaling is the
/// caller's sink choice — pass a
/// [`JournalSink`](heteroprio_trace::JournalSink).
pub fn heteroprio_durable<S: TraceSink, M: MetricsRegistry + ?Sized>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    durability: DurabilityOptions<'_>,
    sink: &mut S,
    metrics: &M,
) -> Result<HeteroPrioResult, EngineError> {
    let mut workload = IndependentWorkload { instance };
    let mut policy =
        IndependentPolicy { instance, config: *config, queue: ReadyQueue::new(platform, config) };
    let outcome = kernel::run_durable(
        platform,
        &mut workload,
        &mut policy,
        FaultModel::none(),
        KernelOptions { emit_decisions: false, metrics },
        durability,
        sink,
    )?;
    Ok(HeteroPrioResult {
        schedule: outcome.schedule,
        first_idle: outcome.first_idle,
        spoliations: outcome.spoliations,
        summary: outcome.summary,
    })
}

/// Resume a crashed [`heteroprio_durable`] run from its recovered journal
/// (and optionally a checkpoint); see [`kernel::resume`] for the contract.
pub fn heteroprio_resume<S: TraceSink, M: MetricsRegistry + ?Sized>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    snapshot: Option<&KernelSnapshot>,
    journal: &[heteroprio_trace::SchedEvent],
    sink: &mut S,
    metrics: &M,
) -> Result<HeteroPrioResult, ResumeError> {
    let mut workload = IndependentWorkload { instance };
    let mut policy =
        IndependentPolicy { instance, config: *config, queue: ReadyQueue::new(platform, config) };
    let outcome = kernel::resume(
        platform,
        &mut workload,
        &mut policy,
        FaultModel::none(),
        KernelOptions { emit_decisions: false, metrics },
        snapshot,
        journal,
        sink,
    )?;
    Ok(HeteroPrioResult {
        schedule: outcome.schedule,
        first_idle: outcome.first_idle,
        spoliations: outcome.spoliations,
        summary: outcome.summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Task;
    use crate::time::{approx_eq, PHI};

    fn run(instance: &Instance, platform: &Platform) -> HeteroPrioResult {
        let res = heteroprio(instance, platform, &HeteroPrioConfig::new());
        res.schedule.validate(instance, platform).expect("valid schedule");
        res
    }

    #[test]
    fn single_task_runs_on_best_fit_side_of_queue() {
        // One GPU-friendly task: with one CPU and one GPU idle, GPUs-first
        // order hands it to the GPU.
        let inst = Instance::from_times(&[(10.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn gpu_takes_front_cpu_takes_back() {
        // Two tasks, one accelerated (ρ=10), one decelerated (ρ=0.1).
        let inst = Instance::from_times(&[(10.0, 1.0), (1.0, 10.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert!(approx_eq(res.makespan(), 1.0));
        let gpu_run = res.schedule.run_of(TaskId(0)).unwrap();
        assert_eq!(plat.kind_of(gpu_run.worker), ResourceKind::Gpu);
        let cpu_run = res.schedule.run_of(TaskId(1)).unwrap();
        assert_eq!(plat.kind_of(cpu_run.worker), ResourceKind::Cpu);
    }

    #[test]
    fn spoliation_rescues_bad_cpu_assignment() {
        // Two tasks both much faster on GPU. The list phase puts one on the
        // CPU (it never idles while the queue is non-empty); once the GPU
        // finishes its own task it spoliates the CPU's.
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert_eq!(res.spoliations, 1);
        assert!(approx_eq(res.makespan(), 2.0), "makespan {}", res.makespan());
        assert_eq!(res.schedule.aborted.len(), 1);
    }

    #[test]
    fn without_spoliation_list_schedule_can_be_terrible() {
        // Same instance without spoliation: CPU grinds for 100 time units.
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = heteroprio(&inst, &plat, &HeteroPrioConfig::without_spoliation());
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), 100.0));
    }

    #[test]
    fn theorem8_instance_reaches_phi() {
        // X: (p=φ, q=1), Y: (p=1, q=1/φ); both ρ=φ. Adversarial insertion
        // order [Y, X]: GPU takes Y from the front, CPU takes X from the
        // back. GPU idles at 1/φ but spoliating X would not strictly improve
        // its completion (1/φ + 1 = φ). Makespan φ while OPT = 1.
        let inst = Instance::from_times(&[(1.0, 1.0 / PHI), (PHI, 1.0)]);
        let plat = Platform::new(1, 1);
        let cfg = HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            ..HeteroPrioConfig::new()
        };
        let res = heteroprio(&inst, &plat, &cfg);
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), PHI), "makespan {}", res.makespan());
        assert_eq!(res.spoliations, 0);
    }

    #[test]
    fn theorem8_other_tie_order_is_optimal() {
        // Insertion order [X, Y] instead: GPU takes X, CPU takes Y → OPT = 1.
        let inst = Instance::from_times(&[(PHI, 1.0), (1.0, 1.0 / PHI)]);
        let plat = Platform::new(1, 1);
        let cfg = HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            ..HeteroPrioConfig::new()
        };
        let res = heteroprio(&inst, &plat, &cfg);
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn first_idle_is_recorded() {
        let inst = Instance::from_times(&[(2.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        // One of the two workers has nothing to do at t=0.
        assert_eq!(res.first_idle, Some(0.0));
    }

    #[test]
    fn busy_platform_has_late_first_idle() {
        // 2 CPUs + 1 GPU, 3 equal tasks of unit length on each resource:
        // everyone busy until t=1.
        let inst = Instance::from_times(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let plat = Platform::new(2, 1);
        let res = run(&inst, &plat);
        assert_eq!(res.first_idle, Some(1.0));
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn priority_tie_break_orders_queue_both_ways() {
        // Accelerated ties (ρ=2): higher priority must sit closer to the
        // front. Decelerated ties (ρ=0.5): higher priority closer to the back.
        let mut inst = Instance::new();
        let a = inst.push(Task::new(2.0, 1.0).with_priority(1.0));
        let b = inst.push(Task::new(2.0, 1.0).with_priority(5.0));
        let c = inst.push(Task::new(1.0, 2.0).with_priority(1.0));
        let d = inst.push(Task::new(1.0, 2.0).with_priority(5.0));
        let q = sorted_queue(&inst, &[a, b, c, d], QueueTieBreak::Priority);
        assert_eq!(Vec::from(q), vec![b, a, c, d]);
    }

    #[test]
    fn spoliation_cascade_terminates() {
        // A pathological soup of tasks with wildly asymmetric times; mostly a
        // termination / validity smoke test.
        let inst = Instance::from_times(&[
            (50.0, 1.0),
            (50.0, 1.0),
            (1.0, 50.0),
            (1.0, 50.0),
            (10.0, 10.0),
            (3.0, 7.0),
            (7.0, 3.0),
        ]);
        let plat = Platform::new(2, 2);
        let res = run(&inst, &plat);
        assert!(res.makespan() > 0.0);
    }

    #[test]
    fn all_tasks_complete_exactly_once_many_workers() {
        let tasks: Vec<(f64, f64)> = (1..=40).map(|i| (i as f64, (41 - i) as f64)).collect();
        let inst = Instance::from_times(&tasks);
        let plat = Platform::new(6, 3);
        let res = run(&inst, &plat);
        assert_eq!(res.schedule.runs.len(), 40);
    }

    #[test]
    fn cpus_first_changes_tie_resolution() {
        // With one task and CPUs-first order, the CPU grabs it even though
        // the GPU would be faster; the GPU then spoliates immediately at t=0,
        // so makespan is still the GPU time but with one abort recorded.
        let inst = Instance::from_times(&[(10.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let cfg =
            HeteroPrioConfig { worker_order: WorkerOrder::CpusFirst, ..HeteroPrioConfig::new() };
        let res = heteroprio(&inst, &plat, &cfg);
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), 1.0));
        assert_eq!(res.spoliations, 1);
    }
}
