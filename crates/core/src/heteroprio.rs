//! The HeteroPrio algorithm for a set of independent tasks (Algorithm 1 of
//! the paper), including the spoliation mechanism.
//!
//! Ready tasks sit in a single queue sorted by non-increasing acceleration
//! factor ρ = p/q. An idle GPU pops from the *front* (most GPU-friendly
//! task), an idle CPU pops from the *back*. When the queue is empty, an idle
//! worker examines the tasks currently running on the *other* resource class
//! in decreasing order of expected completion time, and **spoliates** the
//! first one whose completion it can strictly improve: the victim run is
//! aborted (all progress lost — this is not preemption) and the task restarts
//! on the idle worker.
//!
//! Algorithm 1 leaves three choices unspecified; each tightness proof in the
//! paper resolves them adversarially ("consider the following *valid*
//! HeteroPrio schedule"), so they are explicit knobs here:
//!
//! * which idle worker acts first ([`WorkerOrder`]),
//! * the queue order among tasks with equal ρ ([`QueueTieBreak`]),
//! * the spoliation order among victims with equal completion time
//!   ([`SpoliationTieBreak`]).

use crate::model::{Instance, Platform, ResourceKind, TaskId, WorkerId};
use crate::schedule::{Schedule, TaskRun};
use crate::time::{strictly_less, F64Ord};
use heteroprio_trace::{NullSink, QueueEnd, SchedEvent, TraceSink, TraceSummary};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Order in which simultaneously idle workers are given the chance to act.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WorkerOrder {
    /// GPUs pick first (the StarPU-like default: serve the scarce, fast
    /// resource first).
    #[default]
    GpusFirst,
    /// CPUs pick first.
    CpusFirst,
    /// Strictly by worker id (CPUs are ids `0..m`, so CPUs first by class).
    ById,
}

/// Ordering of the ready queue among tasks with equal acceleration factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueTieBreak {
    /// The paper's §2.2 rule: among ties with ρ ≥ 1 the highest-priority task
    /// comes first (so GPUs, popping the front, see it first); among ties
    /// with ρ < 1 the lowest-priority task comes first (so CPUs, popping the
    /// back, see the highest priority first).
    #[default]
    Priority,
    /// Stable order: ties keep their instance order. Used by the worst-case
    /// constructions, which pick an adversarial insertion order.
    InsertionOrder,
}

/// Ordering among spoliation candidates with equal expected completion time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpoliationTieBreak {
    /// Highest priority first (the paper's DAG-mode rule), then lowest id.
    #[default]
    PriorityThenId,
    /// Lowest task id first.
    IdAscending,
    /// Highest task id first.
    IdDescending,
}

/// Configuration of the unspecified choices in Algorithm 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeteroPrioConfig {
    /// Disable to obtain the pure list schedule `S_HP^NS` of the paper.
    pub disable_spoliation: bool,
    pub worker_order: WorkerOrder,
    pub queue_tie: QueueTieBreak,
    pub spoliation_tie: SpoliationTieBreak,
}

impl HeteroPrioConfig {
    /// The default configuration, with spoliation enabled.
    pub fn new() -> Self {
        HeteroPrioConfig::default()
    }

    /// The pure list-schedule variant (no spoliation) — the paper's
    /// `S_HP^NS`, and the §3 cautionary tale about list scheduling on
    /// unrelated resources.
    pub fn without_spoliation() -> Self {
        HeteroPrioConfig { disable_spoliation: true, ..Default::default() }
    }
}

/// Outcome of a HeteroPrio run.
#[derive(Clone, Debug)]
pub struct HeteroPrioResult {
    pub schedule: Schedule,
    /// `T_FirstIdle`: the first instant at which some worker found the queue
    /// empty. `None` when every worker was busy until its last completion
    /// (never happens if there are fewer tasks than workers).
    /// Derived from [`TraceSummary::first_idle`].
    pub first_idle: Option<f64>,
    /// Number of successful spoliations. Derived from
    /// [`TraceSummary::spoliation_count`].
    pub spoliations: usize,
    /// Per-worker time accounting and spoliation totals aggregated from the
    /// event stream the run emitted.
    pub summary: TraceSummary,
}

impl HeteroPrioResult {
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }
}

#[derive(Clone, Copy, Debug)]
struct Running {
    task: TaskId,
    start: f64,
    end: f64,
}

/// Build the ready queue: non-increasing acceleration factor, ties per
/// `tie`. Exposed for reuse by the DAG-mode policy in
/// `heteroprio-schedulers`.
pub fn sorted_queue(instance: &Instance, ids: &[TaskId], tie: QueueTieBreak) -> VecDeque<TaskId> {
    let mut q: Vec<TaskId> = ids.to_vec();
    match tie {
        QueueTieBreak::InsertionOrder => {
            q.sort_by(|&a, &b| {
                let ra = instance.task(a).accel_factor();
                let rb = instance.task(b).accel_factor();
                rb.total_cmp(&ra)
            });
        }
        QueueTieBreak::Priority => {
            q.sort_by(|&a, &b| {
                let ta = instance.task(a);
                let tb = instance.task(b);
                let ra = ta.accel_factor();
                let rb = tb.accel_factor();
                rb.total_cmp(&ra)
                    .then_with(|| {
                        // Equal ρ: for ρ >= 1 put high priority first (GPU side),
                        // for ρ < 1 put low priority first (so the back of the
                        // queue, served to CPUs, holds the highest priority).
                        let ord = tb.priority.total_cmp(&ta.priority);
                        // lint: allow(float-ord): orientation branch, not arithmetic — ρ = 1
                        // exactly is a documented policy choice (GPU-side tie rule applies).
                        if ra >= 1.0 {
                            ord
                        } else {
                            ord.reverse()
                        }
                    })
                    .then(a.cmp(&b))
            });
        }
    }
    q.into()
}

/// Run HeteroPrio (Algorithm 1) on an instance of independent tasks.
pub fn heteroprio(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
) -> HeteroPrioResult {
    heteroprio_traced(instance, platform, config, &mut NullSink)
}

/// [`heteroprio`] with a trace sink: every scheduling decision is emitted as
/// a [`SchedEvent`]. The run is generic over the sink, so passing
/// [`NullSink`] compiles the tracing away entirely.
pub fn heteroprio_traced<S: TraceSink>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
) -> HeteroPrioResult {
    let ids: Vec<TaskId> = instance.ids().collect();
    let mut sim = Sim::new(instance, platform, config, sink);
    for &t in &ids {
        sim.emit(SchedEvent::TaskReady { time: 0.0, task: t.0 });
    }
    sim.queue = sorted_queue(instance, &ids, config.queue_tie);
    sim.run();
    let mut summary = sim.summary;
    summary.finish();
    HeteroPrioResult {
        schedule: sim.schedule,
        first_idle: summary.first_idle,
        spoliations: summary.spoliation_count,
        summary,
    }
}

/// Event-driven simulation state for Algorithm 1.
struct Sim<'a, S: TraceSink> {
    instance: &'a Instance,
    platform: &'a Platform,
    config: &'a HeteroPrioConfig,
    queue: VecDeque<TaskId>,
    running: Vec<Option<Running>>,
    /// Event invalidation counters (bumped when a run is aborted).
    generation: Vec<u64>,
    /// Min-heap of (completion time, worker, generation).
    events: BinaryHeap<Reverse<(F64Ord, u32, u64)>>,
    idle: Vec<WorkerId>,
    completed: usize,
    schedule: Schedule,
    sink: &'a mut S,
    summary: TraceSummary,
    /// Whether a `WorkerIdleBegin` has been emitted and not yet closed.
    idle_announced: Vec<bool>,
}

impl<'a, S: TraceSink> Sim<'a, S> {
    fn new(
        instance: &'a Instance,
        platform: &'a Platform,
        config: &'a HeteroPrioConfig,
        sink: &'a mut S,
    ) -> Self {
        let summary = if sink.is_enabled() {
            TraceSummary::with_timeline(platform.workers())
        } else {
            TraceSummary::new(platform.workers())
        };
        Sim {
            instance,
            platform,
            config,
            queue: VecDeque::new(),
            running: vec![None; platform.workers()],
            generation: vec![0; platform.workers()],
            events: BinaryHeap::new(),
            idle: platform.all_workers().collect(),
            completed: 0,
            schedule: Schedule::new(),
            sink,
            summary,
            idle_announced: vec![false; platform.workers()],
        }
    }

    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.summary.record(&event);
        self.sink.emit(event);
    }

    fn worker_sort_key(&self, w: WorkerId) -> (u8, u32) {
        let kind = self.platform.kind_of(w);
        let class = match self.config.worker_order {
            WorkerOrder::GpusFirst => match kind {
                ResourceKind::Gpu => 0,
                ResourceKind::Cpu => 1,
            },
            WorkerOrder::CpusFirst => match kind {
                ResourceKind::Cpu => 0,
                ResourceKind::Gpu => 1,
            },
            WorkerOrder::ById => 0,
        };
        (class, w.0)
    }

    fn start(&mut self, w: WorkerId, task: TaskId, now: f64) {
        let dur = self.instance.task(task).time_on(self.platform.kind_of(w));
        let end = now + dur;
        if self.idle_announced[w.index()] {
            self.idle_announced[w.index()] = false;
            self.emit(SchedEvent::WorkerIdleEnd { time: now, worker: w.0 });
        }
        self.emit(SchedEvent::TaskStart {
            time: now,
            task: task.0,
            worker: w.0,
            expected_end: end,
        });
        self.running[w.index()] = Some(Running { task, start: now, end });
        self.events.push(Reverse((F64Ord::new(end), w.0, self.generation[w.index()])));
    }

    /// Pick a spoliation victim for idle worker `w` at time `now`:
    /// tasks running on the other class, in decreasing order of expected
    /// completion time (ties per config), first one strictly improvable.
    fn pick_victim(&self, w: WorkerId, now: f64) -> Option<WorkerId> {
        let my_kind = self.platform.kind_of(w);
        let mut candidates: Vec<(WorkerId, Running)> = self
            .platform
            .workers_of(my_kind.other())
            .filter_map(|v| self.running[v.index()].map(|r| (v, r)))
            .collect();
        candidates.sort_by(|(_, a), (_, b)| {
            b.end.total_cmp(&a.end).then_with(|| {
                let ta = self.instance.task(a.task);
                let tb = self.instance.task(b.task);
                match self.config.spoliation_tie {
                    SpoliationTieBreak::PriorityThenId => {
                        tb.priority.total_cmp(&ta.priority).then(a.task.cmp(&b.task))
                    }
                    SpoliationTieBreak::IdAscending => a.task.cmp(&b.task),
                    SpoliationTieBreak::IdDescending => b.task.cmp(&a.task),
                }
            })
        });
        for (v, r) in candidates {
            let new_end = now + self.instance.task(r.task).time_on(my_kind);
            if strictly_less(new_end, r.end) {
                return Some(v);
            }
        }
        None
    }

    /// Let every idle worker act (queue pop or spoliation) until no action is
    /// possible at the current instant.
    fn assign_fixpoint(&mut self, now: f64) {
        loop {
            let mut idle = std::mem::take(&mut self.idle);
            idle.sort_by_key(|&w| self.worker_sort_key(w));
            self.idle = idle;
            let mut acted = false;
            let mut still_idle: Vec<WorkerId> = Vec::new();
            let mut newly_idle: Vec<WorkerId> = Vec::new();
            let workers: Vec<WorkerId> = self.idle.drain(..).collect();
            for w in workers {
                let kind = self.platform.kind_of(w);
                let (popped, end) = match kind {
                    ResourceKind::Gpu => (self.queue.pop_front(), QueueEnd::Front),
                    ResourceKind::Cpu => (self.queue.pop_back(), QueueEnd::Back),
                };
                if let Some(task) = popped {
                    self.emit(SchedEvent::QueuePop { time: now, task: task.0, worker: w.0, end });
                    self.start(w, task, now);
                    acted = true;
                    continue;
                }
                // Queue empty: this worker is (at least momentarily) idle.
                // The WorkerIdleBegin precedes any spoliation attempt, so
                // T_FirstIdle covers thieves that steal work immediately.
                if !self.idle_announced[w.index()] {
                    self.idle_announced[w.index()] = true;
                    self.emit(SchedEvent::WorkerIdleBegin { time: now, worker: w.0 });
                }
                if !self.config.disable_spoliation {
                    if let Some(victim) = self.pick_victim(w, now) {
                        let r = self.running[victim.index()].take().expect("victim running");
                        self.generation[victim.index()] += 1; // invalidate its event
                        self.schedule.aborted.push(TaskRun {
                            task: r.task,
                            worker: victim,
                            start: r.start,
                            end: now,
                        });
                        self.emit(SchedEvent::Spoliation {
                            time: now,
                            task: r.task.0,
                            victim: victim.0,
                            thief: w.0,
                            wasted_work: now - r.start,
                        });
                        self.start(w, r.task, now);
                        newly_idle.push(victim);
                        acted = true;
                        continue;
                    }
                }
                still_idle.push(w);
            }
            self.idle = still_idle;
            self.idle.extend(newly_idle);
            if !acted {
                return;
            }
        }
    }

    fn run(&mut self) {
        let total = self.instance.len();
        let mut now = 0.0;
        self.assign_fixpoint(now);
        while self.completed < total {
            // Advance to the next valid completion event.
            let (t, w) = loop {
                let Reverse((F64Ord(t), w, generation)) =
                    self.events.pop().expect("tasks remain but nothing is running");
                if self.generation[w as usize] == generation {
                    break (t, WorkerId(w));
                }
            };
            debug_assert!(t >= now);
            now = t;
            self.complete(w, now);
            // Drain any other completions at exactly the same instant so the
            // idle set is processed coherently in configured order.
            while let Some(&Reverse((F64Ord(t2), w2, g2))) = self.events.peek() {
                if t2 == now && self.generation[w2 as usize] == g2 {
                    self.events.pop();
                    self.complete(WorkerId(w2), now);
                } else if self.generation[w2 as usize] != g2 {
                    self.events.pop();
                } else {
                    break;
                }
            }
            self.assign_fixpoint(now);
        }
    }

    fn complete(&mut self, w: WorkerId, now: f64) {
        let r = self.running[w.index()].take().expect("completion of empty worker");
        self.schedule.runs.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.emit(SchedEvent::TaskComplete { time: now, task: r.task.0, worker: w.0 });
        self.completed += 1;
        self.idle.push(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Task;
    use crate::time::{approx_eq, PHI};

    fn run(instance: &Instance, platform: &Platform) -> HeteroPrioResult {
        let res = heteroprio(instance, platform, &HeteroPrioConfig::new());
        res.schedule.validate(instance, platform).expect("valid schedule");
        res
    }

    #[test]
    fn single_task_runs_on_best_fit_side_of_queue() {
        // One GPU-friendly task: with one CPU and one GPU idle, GPUs-first
        // order hands it to the GPU.
        let inst = Instance::from_times(&[(10.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn gpu_takes_front_cpu_takes_back() {
        // Two tasks, one accelerated (ρ=10), one decelerated (ρ=0.1).
        let inst = Instance::from_times(&[(10.0, 1.0), (1.0, 10.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert!(approx_eq(res.makespan(), 1.0));
        let gpu_run = res.schedule.run_of(TaskId(0)).unwrap();
        assert_eq!(plat.kind_of(gpu_run.worker), ResourceKind::Gpu);
        let cpu_run = res.schedule.run_of(TaskId(1)).unwrap();
        assert_eq!(plat.kind_of(cpu_run.worker), ResourceKind::Cpu);
    }

    #[test]
    fn spoliation_rescues_bad_cpu_assignment() {
        // Two tasks both much faster on GPU. The list phase puts one on the
        // CPU (it never idles while the queue is non-empty); once the GPU
        // finishes its own task it spoliates the CPU's.
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        assert_eq!(res.spoliations, 1);
        assert!(approx_eq(res.makespan(), 2.0), "makespan {}", res.makespan());
        assert_eq!(res.schedule.aborted.len(), 1);
    }

    #[test]
    fn without_spoliation_list_schedule_can_be_terrible() {
        // Same instance without spoliation: CPU grinds for 100 time units.
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = heteroprio(&inst, &plat, &HeteroPrioConfig::without_spoliation());
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), 100.0));
    }

    #[test]
    fn theorem8_instance_reaches_phi() {
        // X: (p=φ, q=1), Y: (p=1, q=1/φ); both ρ=φ. Adversarial insertion
        // order [Y, X]: GPU takes Y from the front, CPU takes X from the
        // back. GPU idles at 1/φ but spoliating X would not strictly improve
        // its completion (1/φ + 1 = φ). Makespan φ while OPT = 1.
        let inst = Instance::from_times(&[(1.0, 1.0 / PHI), (PHI, 1.0)]);
        let plat = Platform::new(1, 1);
        let cfg = HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            ..HeteroPrioConfig::new()
        };
        let res = heteroprio(&inst, &plat, &cfg);
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), PHI), "makespan {}", res.makespan());
        assert_eq!(res.spoliations, 0);
    }

    #[test]
    fn theorem8_other_tie_order_is_optimal() {
        // Insertion order [X, Y] instead: GPU takes X, CPU takes Y → OPT = 1.
        let inst = Instance::from_times(&[(PHI, 1.0), (1.0, 1.0 / PHI)]);
        let plat = Platform::new(1, 1);
        let cfg = HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            ..HeteroPrioConfig::new()
        };
        let res = heteroprio(&inst, &plat, &cfg);
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn first_idle_is_recorded() {
        let inst = Instance::from_times(&[(2.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let res = run(&inst, &plat);
        // One of the two workers has nothing to do at t=0.
        assert_eq!(res.first_idle, Some(0.0));
    }

    #[test]
    fn busy_platform_has_late_first_idle() {
        // 2 CPUs + 1 GPU, 3 equal tasks of unit length on each resource:
        // everyone busy until t=1.
        let inst = Instance::from_times(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let plat = Platform::new(2, 1);
        let res = run(&inst, &plat);
        assert_eq!(res.first_idle, Some(1.0));
        assert!(approx_eq(res.makespan(), 1.0));
    }

    #[test]
    fn priority_tie_break_orders_queue_both_ways() {
        // Accelerated ties (ρ=2): higher priority must sit closer to the
        // front. Decelerated ties (ρ=0.5): higher priority closer to the back.
        let mut inst = Instance::new();
        let a = inst.push(Task::new(2.0, 1.0).with_priority(1.0));
        let b = inst.push(Task::new(2.0, 1.0).with_priority(5.0));
        let c = inst.push(Task::new(1.0, 2.0).with_priority(1.0));
        let d = inst.push(Task::new(1.0, 2.0).with_priority(5.0));
        let q = sorted_queue(&inst, &[a, b, c, d], QueueTieBreak::Priority);
        assert_eq!(Vec::from(q), vec![b, a, c, d]);
    }

    #[test]
    fn spoliation_cascade_terminates() {
        // A pathological soup of tasks with wildly asymmetric times; mostly a
        // termination / validity smoke test.
        let inst = Instance::from_times(&[
            (50.0, 1.0),
            (50.0, 1.0),
            (1.0, 50.0),
            (1.0, 50.0),
            (10.0, 10.0),
            (3.0, 7.0),
            (7.0, 3.0),
        ]);
        let plat = Platform::new(2, 2);
        let res = run(&inst, &plat);
        assert!(res.makespan() > 0.0);
    }

    #[test]
    fn all_tasks_complete_exactly_once_many_workers() {
        let tasks: Vec<(f64, f64)> = (1..=40).map(|i| (i as f64, (41 - i) as f64)).collect();
        let inst = Instance::from_times(&tasks);
        let plat = Platform::new(6, 3);
        let res = run(&inst, &plat);
        assert_eq!(res.schedule.runs.len(), 40);
    }

    #[test]
    fn cpus_first_changes_tie_resolution() {
        // With one task and CPUs-first order, the CPU grabs it even though
        // the GPU would be faster; the GPU then spoliates immediately at t=0,
        // so makespan is still the GPU time but with one abort recorded.
        let inst = Instance::from_times(&[(10.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let cfg =
            HeteroPrioConfig { worker_order: WorkerOrder::CpusFirst, ..HeteroPrioConfig::new() };
        let res = heteroprio(&inst, &plat, &cfg);
        res.schedule.validate(&inst, &plat).unwrap();
        assert!(approx_eq(res.makespan(), 1.0));
        assert_eq!(res.spoliations, 1);
    }
}
