//! Classic Graham list scheduling on identical machines.
//!
//! Used by Lemma 6 (any list schedule of tasks that are "large" on the other
//! resource is at most `(2 - 1/n) · OPT`), by the Figure 4 reproduction
//! (optimal vs worst-case list schedule of the `T2` set on `n = 6k`
//! homogeneous processors), and as a building block of DualHP's per-class
//! packing.

use crate::time::F64Ord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a homogeneous list schedule.
#[derive(Clone, Debug)]
pub struct ListSchedule {
    /// `assignment[i]` = machine of the i-th task (in list order).
    pub assignment: Vec<usize>,
    /// `start[i]` of the i-th task (in list order).
    pub starts: Vec<f64>,
    /// Final load of each machine.
    pub loads: Vec<f64>,
}

impl ListSchedule {
    pub fn makespan(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }
}

/// Greedy list schedule: tasks are taken in list order; each goes to the
/// machine that becomes available first (ties to the lowest machine id),
/// which is exactly "the next free machine takes the next task".
pub fn list_schedule(durations: &[f64], machines: usize) -> ListSchedule {
    assert!(machines > 0, "need at least one machine");
    let mut heap: BinaryHeap<Reverse<(F64Ord, usize)>> =
        (0..machines).map(|m| Reverse((F64Ord::new(0.0), m))).collect();
    let mut assignment = Vec::with_capacity(durations.len());
    let mut starts = Vec::with_capacity(durations.len());
    let mut loads = vec![0.0; machines];
    for &d in durations {
        assert!(d >= 0.0 && d.is_finite(), "durations must be non-negative");
        let Reverse((F64Ord(free_at), m)) = heap.pop().expect("non-empty heap");
        assignment.push(m);
        starts.push(free_at);
        let load = loads.get_mut(m).expect("machine id from the heap");
        *load = free_at + d;
        heap.push(Reverse((F64Ord::new(*load), m)));
    }
    ListSchedule { assignment, starts, loads }
}

/// Makespan of the Longest-Processing-Time-first list schedule, a classic
/// `4/3 - 1/(3n)` approximation for identical machines. Used as a reference
/// point in tests and by the exact solver's upper bound.
pub fn lpt_makespan(durations: &[f64], machines: usize) -> f64 {
    let mut sorted = durations.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    list_schedule(&sorted, machines).makespan()
}

/// Simple lower bound for identical machines: max(Σd / n, max d).
pub fn homogeneous_lower_bound(durations: &[f64], machines: usize) -> f64 {
    let total: f64 = durations.iter().sum();
    let longest = durations.iter().copied().fold(0.0, f64::max);
    (total / machines as f64).max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::approx_eq;

    #[test]
    fn single_machine_sums() {
        let ls = list_schedule(&[1.0, 2.0, 3.0], 1);
        assert!(approx_eq(ls.makespan(), 6.0));
        assert_eq!(ls.assignment, vec![0, 0, 0]);
        assert_eq!(ls.starts, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn greedy_balances_two_machines() {
        let ls = list_schedule(&[3.0, 3.0, 2.0, 2.0], 2);
        assert!(approx_eq(ls.makespan(), 5.0));
    }

    #[test]
    fn graham_worst_case_example() {
        // Classic: 2 machines, tasks [1,1,2] in list order → makespan 3,
        // optimal 2. Ratio 3/2 = 2 - 1/2.
        let ls = list_schedule(&[1.0, 1.0, 2.0], 2);
        assert!(approx_eq(ls.makespan(), 3.0));
        assert!(approx_eq(lpt_makespan(&[1.0, 1.0, 2.0], 2), 2.0));
    }

    #[test]
    fn list_schedule_respects_graham_bound() {
        // Any list order is within (2 - 1/n) of the lower bound.
        let durations: Vec<f64> = (1..=30).map(|i| ((i * 7919) % 13 + 1) as f64).collect();
        for &n in &[1usize, 2, 3, 5, 8] {
            let lb = homogeneous_lower_bound(&durations, n);
            let ms = list_schedule(&durations, n).makespan();
            let bound = (2.0 - 1.0 / n as f64) * lb;
            assert!(ms <= bound + 1e-9, "n={n}: {ms} > {bound}");
        }
    }

    #[test]
    fn lpt_never_worse_than_arbitrary_order_here() {
        let durations = vec![5.0, 1.0, 1.0, 1.0, 4.0, 3.0];
        let arbitrary = list_schedule(&durations, 2).makespan();
        let lpt = lpt_makespan(&durations, 2);
        assert!(lpt <= arbitrary + 1e-12);
    }

    #[test]
    fn empty_task_list_is_empty_schedule() {
        let ls = list_schedule(&[], 3);
        assert_eq!(ls.makespan(), 0.0);
        assert!(ls.assignment.is_empty());
    }
}
