//! Floating-point time utilities.
//!
//! All processing times and schedule instants in this workspace are `f64`
//! seconds. Algorithmic decisions that gate on time comparisons (spoliation
//! improvement tests, binary searches, validation) must tolerate the rounding
//! noise that exact-arithmetic constructions such as the golden-ratio
//! instances of Theorems 8 and 11 produce: there, "no improvement" cases are
//! exact ties in the reals (e.g. `1/phi + 1 == phi`) that land within one ulp
//! in `f64`. A relative epsilon keeps those ties ties.

use std::cmp::Ordering;

/// Relative tolerance used by all time comparisons.
pub const REL_EPS: f64 = 1e-9;

/// Absolute floor for the tolerance, so comparisons near zero behave.
pub const ABS_EPS: f64 = 1e-12;

/// The golden ratio φ = (1+√5)/2, ubiquitous in the paper's bounds.
pub const PHI: f64 = 1.618033988749894848204586834365638118_f64;

/// Tolerance scaled to the magnitude of the operands.
#[inline]
pub fn tol(a: f64, b: f64) -> f64 {
    ABS_EPS + REL_EPS * a.abs().max(b.abs()).max(1.0)
}

/// `a` is strictly less than `b`, beyond rounding noise.
#[inline]
pub fn strictly_less(a: f64, b: f64) -> bool {
    a < b - tol(a, b)
}

/// `a <= b` up to rounding noise.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + tol(a, b)
}

/// `a == b` up to rounding noise.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= tol(a, b)
}

/// Total-order wrapper for finite `f64` keys in heaps and sorts.
///
/// Panics (in debug builds) if constructed from a NaN; processing times and
/// schedule instants are always finite in this workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64Ord(pub f64);

impl F64Ord {
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN time");
        F64Ord(v)
    }
}

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_satisfies_its_fixed_point() {
        // φ² = φ + 1 and 1/φ = φ - 1.
        assert!(approx_eq(PHI * PHI, PHI + 1.0));
        assert!(approx_eq(1.0 / PHI, PHI - 1.0));
    }

    #[test]
    fn golden_ratio_tie_is_a_tie() {
        // The Theorem 8 "no spoliation" test: 1/φ + 1 vs φ must not count as
        // a strict improvement in either direction.
        let a = 1.0 / PHI + 1.0;
        let b = PHI;
        assert!(!strictly_less(a, b));
        assert!(!strictly_less(b, a));
        assert!(approx_eq(a, b));
    }

    #[test]
    fn strict_comparisons_behave() {
        assert!(strictly_less(1.0, 2.0));
        assert!(!strictly_less(2.0, 1.0));
        assert!(!strictly_less(1.0, 1.0 + 1e-12));
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(1.1, 1.0));
    }

    #[test]
    fn tolerance_scales_with_magnitude() {
        let big = 1e12;
        assert!(approx_eq(big, big + 1.0)); // 1.0 is below rel tolerance at 1e12
        assert!(!approx_eq(1.0, 1.0 + 1e-3));
    }

    #[test]
    fn f64ord_orders_totally() {
        let mut v = vec![F64Ord::new(3.0), F64Ord::new(-1.0), F64Ord::new(2.0)];
        v.sort();
        assert_eq!(v, vec![F64Ord::new(-1.0), F64Ord::new(2.0), F64Ord::new(3.0)]);
    }
}
