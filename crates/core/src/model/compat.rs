//! Two-class compatibility layer: the paper's CPU/GPU vocabulary as the
//! canonical `k = 2` instantiation of the class model.
//!
//! [`ResourceKind`] is the only place the `Cpu`/`Gpu` dichotomy is allowed
//! to appear as code (the `hardcoded-class` lint rule enforces this
//! outside tests): everything else converts through [`ClassId`] and works
//! for any `k`. The bridge is bidirectional for comparisons —
//! `class == ResourceKind::Cpu` and `ResourceKind::Gpu == class` both
//! work — and one-way (`From<ResourceKind> for ClassId`) for conversion,
//! because a `ClassId` above 1 has no `ResourceKind` spelling.

use super::ClassId;
use std::fmt;

/// One of the two canonical resource classes (`k = 2`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResourceKind {
    Cpu,
    Gpu,
}

impl ResourceKind {
    /// The other resource class (spoliation always crosses classes).
    #[inline]
    pub fn other(self) -> ResourceKind {
        match self {
            ResourceKind::Cpu => ResourceKind::Gpu,
            ResourceKind::Gpu => ResourceKind::Cpu,
        }
    }

    /// The class index this kind maps to: CPU is class 0, GPU class 1.
    #[inline]
    pub fn class(self) -> ClassId {
        match self {
            ResourceKind::Cpu => ClassId(0),
            ResourceKind::Gpu => ClassId(1),
        }
    }

    pub const BOTH: [ResourceKind; 2] = [ResourceKind::Cpu, ResourceKind::Gpu];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => write!(f, "CPU"),
            ResourceKind::Gpu => write!(f, "GPU"),
        }
    }
}

impl From<ResourceKind> for ClassId {
    #[inline]
    fn from(kind: ResourceKind) -> ClassId {
        kind.class()
    }
}

impl PartialEq<ResourceKind> for ClassId {
    #[inline]
    fn eq(&self, other: &ResourceKind) -> bool {
        *self == other.class()
    }
}

impl PartialEq<ClassId> for ResourceKind {
    #[inline]
    fn eq(&self, other: &ClassId) -> bool {
        self.class() == *other
    }
}
