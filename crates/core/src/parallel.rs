//! The workspace's one sanctioned worker pool.
//!
//! Rayon (and since the offline-build fix, crossbeam too) is not part of
//! this workspace's dependency budget; a scoped-thread worker pool over
//! `std::sync::mpsc` channels covers every fan-out need so far (a few
//! dozen coarse-grained simulation jobs per sweep).
//!
//! This module and the metrics registry slab are the only places the
//! `unfenced-concurrency` lint allows threads and shared-state primitives:
//! results are reassembled in submission order, so callers stay
//! deterministic no matter how the workers interleave. ROADMAP item 2's
//! worker-parallel kernel loop is expected to grow here, inside the same
//! fence, rather than sprouting ad-hoc `thread::spawn` calls in the
//! kernel.

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// Map `f` over `items` in parallel, preserving order. Uses up to
/// `available_parallelism` worker threads (capped by the item count).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread::available_parallelism().map_or(4, |p| p.get()).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // mpsc receivers are single-consumer, so workers share the work queue
    // through a mutex; jobs are coarse enough that contention is noise.
    let (tx_work, rx_work) = mpsc::channel::<(usize, T)>();
    let (tx_res, rx_res) = mpsc::channel::<(usize, R)>();
    for (i, item) in items.into_iter().enumerate() {
        tx_work.send((i, item)).expect("send work");
    }
    drop(tx_work);
    let rx_work = Mutex::new(rx_work);
    thread::scope(|s| {
        for _ in 0..threads {
            let rx = &rx_work;
            let tx = tx_res.clone();
            let f = &f;
            s.spawn(move || loop {
                let job = rx.lock().expect("work queue lock").try_recv();
                match job {
                    Ok((i, item)) => tx.send((i, f(item))).expect("send result"),
                    Err(_) => break, // queue drained (sender already dropped)
                }
            });
        }
        drop(tx_res);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = rx_res.recv() {
            *results.get_mut(i).expect("worker index in range") = Some(r);
        }
        results.into_iter().map(|r| r.expect("all jobs completed")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_is_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = parallel_map(vec![41], |i: i32| i + 1);
        assert_eq!(out, vec![42]);
    }
}
