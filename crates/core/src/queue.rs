//! The affinity-ordered double-ended ready queue at HeteroPrio's heart.
//!
//! Tasks are ordered by non-increasing acceleration factor; GPUs pop from
//! the front (most accelerated), CPUs from the back. Ties follow
//! [`QueueTieBreak`]: the paper's priority rule (§2.2) keeps the
//! highest-priority task closest to the end of the queue served by the
//! resource class that wants it, falling back to insertion order.
//!
//! Used by the independent-task algorithm, the online (release-dates)
//! variant, and the DAG-mode policy in `heteroprio-schedulers`.
//!
//! # Bucketed representation
//!
//! The paper only ever consumes the queue from its two ends, so a full
//! balanced-tree total order is more structure than Algorithm 1 needs.
//! Keys are instead quantized into **log-spaced acceleration buckets** —
//! one per octave of ρ, derived from the raw IEEE-754 exponent, which is
//! monotone in ρ for the positive finite values construction guarantees.
//! Each bucket is a [`VecDeque`] kept sorted by the *exact* key
//! `(−ρ, tie, seq, id)`; an occupancy bitmap finds the extreme non-empty
//! buckets in a few word scans. Pushes are an `O(1)` append whenever keys
//! arrive in within-bucket order (the common case: ready batches arrive in
//! ascending id/seq order and real workloads have few distinct ρ per
//! octave); out-of-order keys take the **exact-ρ spill path**, an ordered
//! insert that restores the sorted invariant. Pops take from the front of
//! the first or the back of the last occupied bucket.
//!
//! Because every bucket is exactly sorted and bucket index is monotone in
//! the key, the concatenation of buckets *is* the old `BTreeSet` total
//! order: pop and iteration order are bit-identical to the tree-based
//! implementation (pinned by `matches_sorted_queue_on_static_sets` below,
//! the `queue_parity` proptests, and the `kernel_parity` suite).

use crate::heteroprio::QueueTieBreak;
use crate::model::{ClassId, Instance, ResourceKind, TaskId};
use crate::time::F64Ord;
use std::collections::{BTreeSet, VecDeque};

/// Key ordering: ascending = the GPU end of the queue.
type Key = (F64Ord, F64Ord, u64, TaskId);

/// One bucket per f64 exponent value: sign (always 0 for a valid ρ) plus
/// the 11 exponent bits.
const BUCKET_BITS: u32 = 12;
/// Number of log-spaced buckets (covers every positive finite ρ).
const BUCKET_COUNT: usize = 1 << BUCKET_BITS;
/// Words in the occupancy bitmap.
const OCC_WORDS: usize = BUCKET_COUNT / 64;

/// Bucket index for an acceleration factor, **descending** in ρ so that
/// ascending bucket order matches ascending key order (the GPU end first).
///
/// For positive finite floats the IEEE-754 bit pattern is monotone in the
/// value, so the top `BUCKET_BITS` bits (sign + exponent) quantize ρ into
/// log-spaced octaves without touching `log2` (whose libm rounding is not
/// guaranteed monotone).
#[inline]
fn bucket_of(rho: f64) -> usize {
    let bits = rho.to_bits();
    let raw = (bits >> (64 - BUCKET_BITS)) as usize;
    // lint: allow(unchecked-arith): raw is the top BUCKET_BITS bits, so
    // raw <= BUCKET_COUNT - 1 by construction; const overflow is a
    // compile error.
    (BUCKET_COUNT - 1) - raw
}

/// A dynamic ready queue ordered by acceleration factor.
#[derive(Clone, Debug)]
pub struct AffinityQueue {
    tie: QueueTieBreak,
    /// `BUCKET_COUNT` sorted runs, allocated on first push (a fresh queue
    /// costs nothing). Invariant: each deque is sorted ascending by `Key`,
    /// and all keys in bucket `b` precede all keys in bucket `b + 1`.
    buckets: Vec<VecDeque<Key>>,
    /// Bit `b` set iff `buckets[b]` is non-empty.
    occupancy: [u64; OCC_WORDS],
    len: usize,
    seq: u64,
}

impl Default for AffinityQueue {
    fn default() -> Self {
        AffinityQueue::new(QueueTieBreak::default())
    }
}

impl AffinityQueue {
    pub fn new(tie: QueueTieBreak) -> Self {
        AffinityQueue { tie, buckets: Vec::new(), occupancy: [0; OCC_WORDS], len: 0, seq: 0 }
    }

    fn key(&mut self, instance: &Instance, task: TaskId) -> Key {
        let t = instance.task(task);
        // Validated construction guarantees a positive finite ρ; a task
        // smuggled in through raw public fields or an unvalidated
        // `Instance::from_tasks` is rejected here, before the poisoned
        // value can reach `F64Ord` and corrupt the queue order.
        let rho = match t.try_accel_factor() {
            Ok(rho) => rho,
            Err(e) => panic!("cannot queue {task}: {e}"),
        };
        let tie = match self.tie {
            QueueTieBreak::Priority => {
                // lint: allow(float-ord): orientation branch, not arithmetic — ρ = 1 exactly
                // is a documented policy choice (GPU-side tie rule applies).
                if rho >= 1.0 {
                    -t.priority
                } else {
                    t.priority
                }
            }
            QueueTieBreak::InsertionOrder => 0.0,
        };
        let seq = self.seq;
        self.seq = self.seq.checked_add(1).expect("u64 push sequence never saturates");
        (F64Ord::new(-rho), F64Ord::new(tie), seq, task)
    }

    /// Insert a ready task.
    pub fn push(&mut self, instance: &Instance, task: TaskId) {
        let key = self.key(instance, task);
        if self.buckets.is_empty() {
            self.buckets.resize_with(BUCKET_COUNT, VecDeque::new);
        }
        let b = bucket_of(-(key.0).0);
        let dq = self.buckets.get_mut(b).expect("bucket_of yields b < BUCKET_COUNT");
        match dq.back() {
            // Exact-ρ spill path: the new key lands *inside* the bucket's
            // sorted run (a finer ρ in the same octave, a higher-priority
            // tie, or a re-announced task) — an ordered insert keeps the
            // within-bucket order exact, so pop order stays bit-identical
            // to the tree-based total order.
            Some(last) if *last > key => {
                let pos = dq.partition_point(|k| k < &key);
                dq.insert(pos, key);
            }
            // Common case: FIFO arrival within a ρ/tie group appends.
            _ => dq.push_back(key),
        }
        *self.occupancy.get_mut(b / 64).expect("occupancy sized to BUCKET_COUNT/64") |=
            1 << (b % 64);
        self.len += 1;
    }

    /// Checked bucket accessor; `b` always comes from `bucket_of` or the
    /// occupancy bitmap, both bounded by `BUCKET_COUNT`.
    #[inline]
    fn bucket_mut(&mut self, b: usize) -> &mut VecDeque<Key> {
        self.buckets.get_mut(b).expect("bucket index from occupancy bitmap")
    }

    /// Lowest occupied bucket index (the GPU end), if any.
    #[inline]
    fn first_occupied(&self) -> Option<usize> {
        self.occupancy
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
    }

    /// Highest occupied bucket index (the CPU end), if any.
    #[inline]
    fn last_occupied(&self) -> Option<usize> {
        self.occupancy
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + 63 - w.leading_zeros() as usize)
    }

    /// Pop the task best suited to a worker of class `kind`: the most
    /// accelerated task for a GPU, the least accelerated for a CPU.
    pub fn pop(&mut self, kind: ResourceKind) -> Option<TaskId> {
        let (b, key) = match kind {
            ResourceKind::Gpu => {
                let b = self.first_occupied()?;
                (b, self.bucket_mut(b).pop_front().expect("occupied bucket is non-empty"))
            }
            ResourceKind::Cpu => {
                let b = self.last_occupied()?;
                (b, self.bucket_mut(b).pop_back().expect("occupied bucket is non-empty"))
            }
        };
        if self.bucket_mut(b).is_empty() {
            *self.occupancy.get_mut(b / 64).expect("occupancy sized to BUCKET_COUNT/64") &=
                !(1 << (b % 64));
        }
        self.len -= 1;
        Some(key.3)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tasks from the GPU end to the CPU end, for snapshot capture.
    /// Re-pushing them in this order reproduces the queue exactly: fresh
    /// sequence numbers are assigned ascending in iteration order, which
    /// preserves every FIFO tie.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.buckets.iter().flat_map(|dq| dq.iter().map(|&(_, _, _, task)| task))
    }
}

/// Which end of an affinity-ordered pair queue a pop came from.
///
/// `Front` is the accelerated end (the paper's GPU side of the pair),
/// `Back` the decelerated end. Reported so callers can emit the queue-end
/// trace annotation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PopSide {
    Front,
    Back,
}

/// The ready queue generalized to `k` resource classes: one
/// affinity-ordered queue per unordered class pair `{a, b}`, keyed by the
/// pair ratio `ρ_ab = t_a / t_b`. A worker of class `c` pops the candidate
/// with the largest relative speedup on `c` across the `k − 1` pairs that
/// involve `c` — the argmax generalization of "GPUs pop the front, CPUs
/// the back".
///
/// On the canonical two-class platform there is exactly one pair, and the
/// structure *is* the bucketed [`AffinityQueue`] (same keys, same pops:
/// bit-identical order, pinned by `two_class_matches_affinity_queue`
/// below). For `k ≥ 3` every task sits in `k−1` relevant pairs, so each
/// pair holds an exact sorted set and a pop eagerly removes the task's
/// entries from the other pairs (`O(k² log n)`, still cheap for the class
/// counts [`MAX_CLASSES`](crate::model::MAX_CLASSES) allows).
#[derive(Clone, Debug)]
pub struct ClassQueue {
    tie: QueueTieBreak,
    k: usize,
    /// `k == 2` fast path: the single pair, bucketed.
    two: Option<AffinityQueue>,
    /// `k ≥ 3`: one sorted set per pair `(a, b)`, `a < b`, indexed by
    /// [`ClassQueue::pair_index`]. Ascending key order = class-`b` end.
    pairs: Vec<BTreeSet<Key>>,
    /// Per-task keys currently sitting in `pairs` (by task index), so a
    /// pop can remove the task from every other pair exactly.
    keys: Vec<Option<Vec<Key>>>,
    live: usize,
    seq: u64,
}

impl ClassQueue {
    /// A queue for platforms with `k` resource classes.
    pub fn new(k: usize, tie: QueueTieBreak) -> Self {
        assert!(k >= 2, "class queue needs at least two classes");
        let (two, pairs) = if k == 2 {
            (Some(AffinityQueue::new(tie)), Vec::new())
        } else {
            (None, vec![BTreeSet::new(); k * (k - 1) / 2])
        };
        ClassQueue { tie, k, two, pairs, keys: Vec::new(), live: 0, seq: 0 }
    }

    /// Number of classes this queue was sized for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Index of the pair `{a, b}` (`a < b`) in row-major upper-triangular
    /// order.
    #[inline]
    fn pair_index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < self.k);
        a * (2 * self.k - a - 1) / 2 + (b - a - 1)
    }

    /// Insert a ready task.
    pub fn push(&mut self, instance: &Instance, task: TaskId) {
        if let Some(two) = &mut self.two {
            two.push(instance, task);
            return;
        }
        let t = instance.task(task);
        let seq = self.seq;
        self.seq = self.seq.checked_add(1).expect("u64 push sequence never saturates");
        let mut keys = Vec::with_capacity(self.k - 1);
        for a in 0..self.k {
            for b in (a + 1)..self.k {
                let rho = match t.try_affinity(ClassId::from(a), ClassId::from(b)) {
                    Ok(rho) => rho,
                    Err(e) => panic!("cannot queue {task}: {e}"),
                };
                let tie = match self.tie {
                    QueueTieBreak::Priority => {
                        // lint: allow(float-ord): orientation branch, not arithmetic — the
                        // pair ratio exactly 1 takes the accelerated-side tie rule, same
                        // boundary choice as the two-class queue.
                        if rho >= 1.0 {
                            -t.priority
                        } else {
                            t.priority
                        }
                    }
                    QueueTieBreak::InsertionOrder => 0.0,
                };
                let key = (F64Ord::new(-rho), F64Ord::new(tie), seq, task);
                let idx = self.pair_index(a, b);
                self.pairs.get_mut(idx).expect("pair_index < pair count").insert(key);
                keys.push(key);
            }
        }
        if self.keys.len() <= task.index() {
            self.keys.resize(task.index() + 1, None);
        }
        *self.keys.get_mut(task.index()).expect("resized above") = Some(keys);
        self.live += 1;
    }

    /// Pop the task best suited to a worker of class `class`: the argmax
    /// of the relative speedup `t_other / t_class` over every pair that
    /// involves `class` (strictly-greater comparison, lowest other-class
    /// index winning ties). Returns the chosen task and which end of its
    /// winning pair queue it came from.
    pub fn pop(&mut self, class: impl Into<ClassId>) -> Option<(TaskId, PopSide)> {
        let class = class.into();
        if let Some(two) = &mut self.two {
            return match class.index() {
                0 => two.pop(ResourceKind::Cpu).map(|t| (t, PopSide::Back)),
                1 => two.pop(ResourceKind::Gpu).map(|t| (t, PopSide::Front)),
                c => panic!("class C{c} out of range on a two-class queue"),
            };
        }
        let c = class.index();
        assert!(c < self.k, "class {class} out of range (k = {})", self.k);
        let mut best: Option<(f64, usize, PopSide, Key)> = None;
        for d in 0..self.k {
            if d == c {
                continue;
            }
            let (a, b) = (c.min(d), c.max(d));
            let idx = self.pair_index(a, b);
            let set = self.pairs.get(idx).expect("pair_index < pair count");
            // Ascending key order is descending ρ_ab = t_a / t_b: the
            // first element favours class b most, the last class a most.
            let (key, side) =
                if c == b { (set.first(), PopSide::Front) } else { (set.last(), PopSide::Back) };
            let Some(&key) = key else { continue };
            let rho = -(key.0).0;
            let advantage = match side {
                PopSide::Front => rho,
                PopSide::Back => 1.0 / rho,
            };
            // lint: allow(float-ord): argmax selection over positive finite
            // ratios; construction rejects NaN before keys are built.
            let better = match &best {
                None => true,
                Some((adv, ..)) => advantage > *adv,
            };
            if better {
                best = Some((advantage, idx, side, key));
            }
        }
        let (_, winner_idx, side, key) = best?;
        let task = key.3;
        self.pairs.get_mut(winner_idx).expect("pair_index < pair count").remove(&key);
        let keys = self
            .keys
            .get_mut(task.index())
            .and_then(Option::take)
            .expect("popped task has recorded keys");
        for (idx, k) in Self::pair_indices(self.k).zip(&keys) {
            if idx != winner_idx {
                self.pairs.get_mut(idx).expect("pair_index < pair count").remove(k);
            }
        }
        self.live -= 1;
        Some((task, side))
    }

    /// Pair indices in the push order (`(0,1), (0,2), …`), matching the
    /// layout of the per-task key vectors.
    fn pair_indices(k: usize) -> impl Iterator<Item = usize> {
        (0..k).flat_map(move |a| ((a + 1)..k).map(move |b| a * (2 * k - a - 1) / 2 + (b - a - 1)))
    }

    pub fn len(&self) -> usize {
        match &self.two {
            Some(two) => two.len(),
            None => self.live,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tasks in snapshot order. On a two-class queue this is the exact
    /// accelerated-to-decelerated order of the underlying
    /// [`AffinityQueue`]; for `k ≥ 3` it is the `(0, 1)` pair's order —
    /// re-pushing reproduces every pair's ρ order exactly and the `(0, 1)`
    /// pair's FIFO ties, which is the strongest order a single linear
    /// snapshot can preserve across `k−1` interleaved tie spaces.
    pub fn iter(&self) -> Box<dyn Iterator<Item = TaskId> + '_> {
        match &self.two {
            Some(two) => Box::new(two.iter()),
            None => Box::new(
                self.pairs
                    .first()
                    .expect("k >= 3 queue has pairs")
                    .iter()
                    .map(|&(_, _, _, task)| task),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Task;

    #[test]
    fn gpu_gets_most_accelerated_cpu_least() {
        let inst = Instance::from_times(&[(8.0, 1.0), (1.0, 8.0), (2.0, 2.0)]);
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(0)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(1)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(2)));
        assert!(q.is_empty());
        assert_eq!(q.pop(ResourceKind::Gpu), None);
    }

    #[test]
    fn priority_rule_orients_ties_by_side() {
        let mut inst = Instance::new();
        let lo_acc = inst.push(Task::new(2.0, 1.0).with_priority(1.0));
        let hi_acc = inst.push(Task::new(2.0, 1.0).with_priority(9.0));
        let lo_dec = inst.push(Task::new(1.0, 2.0).with_priority(1.0));
        let hi_dec = inst.push(Task::new(1.0, 2.0).with_priority(9.0));
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        // Among accelerated ties the GPU sees the high priority first;
        // among decelerated ties the CPU sees the high priority first.
        assert_eq!(q.pop(ResourceKind::Gpu), Some(hi_acc));
        assert_eq!(q.pop(ResourceKind::Gpu), Some(lo_acc));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(hi_dec));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(lo_dec));
    }

    #[test]
    fn insertion_order_breaks_ties_fifo_per_side() {
        let inst = Instance::from_times(&[(2.0, 1.0), (2.0, 1.0), (2.0, 1.0)]);
        let mut q = AffinityQueue::new(QueueTieBreak::InsertionOrder);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(0)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(2)));
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(1)));
    }

    #[test]
    fn matches_sorted_queue_on_static_sets() {
        use crate::heteroprio::sorted_queue;
        let inst =
            Instance::from_times(&[(3.0, 1.0), (1.0, 3.0), (4.0, 4.0), (9.0, 1.0), (2.0, 5.0)]);
        let ids: Vec<TaskId> = inst.ids().collect();
        for tie in [QueueTieBreak::Priority, QueueTieBreak::InsertionOrder] {
            let reference = sorted_queue(&inst, &ids, tie);
            let mut q = AffinityQueue::new(tie);
            for &id in &ids {
                q.push(&inst, id);
            }
            // Draining from the GPU side must reproduce the sorted order.
            let mut drained = Vec::new();
            while let Some(t) = q.pop(ResourceKind::Gpu) {
                drained.push(t);
            }
            assert_eq!(drained, Vec::from(reference), "{tie:?}");
        }
    }

    #[test]
    fn rho_exactly_one_uses_gpu_side_priority_rule_on_both_queues() {
        use crate::heteroprio::sorted_queue;
        // ρ = 1.0 exactly sits on the orientation boundary of the priority
        // tie rule. Both the static sort and the dynamic queue must apply
        // the GPU-side rule (`ρ >= 1`): highest priority closest to the
        // front. Pin the order on both so the two code paths cannot drift.
        let mut inst = Instance::new();
        let lo = inst.push(Task::new(3.0, 3.0).with_priority(1.0));
        let hi = inst.push(Task::new(3.0, 3.0).with_priority(9.0));
        let mid = inst.push(Task::new(3.0, 3.0).with_priority(5.0));
        let ids: Vec<TaskId> = inst.ids().collect();

        // Static queue: descending priority at ρ = 1.
        let sorted = sorted_queue(&inst, &ids, QueueTieBreak::Priority);
        assert_eq!(Vec::from(sorted), vec![hi, mid, lo]);

        // Dynamic queue agrees, draining from either end.
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        for &id in &ids {
            q.push(&inst, id);
        }
        assert_eq!(q.pop(ResourceKind::Gpu), Some(hi), "GPU sees the highest priority first");
        assert_eq!(q.pop(ResourceKind::Cpu), Some(lo), "CPU end holds the lowest priority");
        assert_eq!(q.pop(ResourceKind::Gpu), Some(mid));

        // Mixed ρ around the boundary: ρ = 1 tasks still group together
        // and sit between accelerated and decelerated tasks.
        let mut inst2 = Instance::new();
        let fast = inst2.push(Task::new(4.0, 1.0));
        let one_hi = inst2.push(Task::new(2.0, 2.0).with_priority(7.0));
        let one_lo = inst2.push(Task::new(2.0, 2.0).with_priority(2.0));
        let slow = inst2.push(Task::new(1.0, 4.0));
        let ids2: Vec<TaskId> = inst2.ids().collect();
        let expect = vec![fast, one_hi, one_lo, slow];
        assert_eq!(Vec::from(sorted_queue(&inst2, &ids2, QueueTieBreak::Priority)), expect);
        let mut q2 = AffinityQueue::new(QueueTieBreak::Priority);
        for &id in &ids2 {
            q2.push(&inst2, id);
        }
        let mut drained = Vec::new();
        while let Some(t) = q2.pop(ResourceKind::Gpu) {
            drained.push(t);
        }
        assert_eq!(drained, expect);
    }

    #[test]
    fn non_finite_accel_factor_is_rejected_at_the_queue_boundary() {
        // A task smuggled past validation (public fields) must be rejected
        // with the typed ModelError message, not silently mis-ordered.
        let inst = Instance::from_tasks(vec![Task::from_raw_times(&[1e308, 1e-308], 0.0)]);
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(&inst, TaskId(0));
        }))
        .expect_err("push of a non-finite-rho task must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("positive and finite"), "unexpected panic message: {msg}");
    }

    #[test]
    fn interleaved_push_pop_preserves_exact_order() {
        // Exercise the spill path: push high-ρ tasks after lower-ρ ones in
        // the same octave, interleaved with pops from both ends, and check
        // against a straightforward sorted model.
        let inst = Instance::from_times(&[
            (3.0, 2.0), // ρ = 1.5
            (7.0, 4.0), // ρ = 1.75  (same octave as 1.5)
            (2.0, 1.0), // ρ = 2
            (5.0, 4.0), // ρ = 1.25  (same octave again)
            (9.0, 8.0), // ρ = 1.125
        ]);
        let mut q = AffinityQueue::new(QueueTieBreak::InsertionOrder);
        q.push(&inst, TaskId(0));
        q.push(&inst, TaskId(1)); // spill: 1.75 sorts before 1.5
        q.push(&inst, TaskId(2)); // different octave
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(2)));
        q.push(&inst, TaskId(3)); // appends after 1.5
        q.push(&inst, TaskId(4)); // appends after 1.25
        let mut front_drain = Vec::new();
        while let Some(t) = q.pop(ResourceKind::Gpu) {
            front_drain.push(t);
        }
        assert_eq!(front_drain, vec![TaskId(1), TaskId(0), TaskId(3), TaskId(4)]);
    }

    #[test]
    fn two_class_matches_affinity_queue() {
        // The generalized queue at k = 2 *is* the bucketed AffinityQueue:
        // identical pops from both ends, interleaved with pushes.
        let inst = Instance::from_times(&[
            (3.0, 1.0),
            (1.0, 3.0),
            (4.0, 4.0),
            (9.0, 1.0),
            (2.0, 5.0),
            (3.0, 1.0),
            (7.0, 4.0),
        ]);
        for tie in [QueueTieBreak::Priority, QueueTieBreak::InsertionOrder] {
            let mut reference = AffinityQueue::new(tie);
            let mut general = ClassQueue::new(2, tie);
            for id in inst.ids() {
                reference.push(&inst, id);
                general.push(&inst, id);
            }
            assert_eq!(general.len(), reference.len());
            let mut side = ResourceKind::Gpu;
            while let Some(expect) = reference.pop(side) {
                let class = ClassId::from(side);
                let got = general.pop(class);
                let want_side =
                    if side == ResourceKind::Gpu { PopSide::Front } else { PopSide::Back };
                assert_eq!(got, Some((expect, want_side)), "{tie:?}");
                side = side.other();
            }
            assert!(general.is_empty());
        }
    }

    #[test]
    fn three_class_pop_takes_argmax_relative_speedup() {
        // Times per class (cpu, gpu, fpga).
        let inst = Instance::from_class_times(&[
            &[8.0, 1.0, 4.0], // T0: best on gpu (8× vs cpu)
            &[2.0, 4.0, 1.0], // T1: best on fpga (4× vs gpu)
            &[1.0, 6.0, 6.0], // T2: best on cpu
        ]);
        let mut q = ClassQueue::new(3, QueueTieBreak::Priority);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        assert_eq!(q.len(), 3);
        // The GPU's best relative speedup is T0 (ρ_cpu,gpu = 8).
        let (t, _) = q.pop(ClassId(1)).unwrap();
        assert_eq!(t, TaskId(0));
        // The FPGA's best remaining is T1 (ρ_gpu,fpga = 4).
        let (t, _) = q.pop(ClassId(2)).unwrap();
        assert_eq!(t, TaskId(1));
        // The CPU takes what favours it most.
        let (t, _) = q.pop(ClassId(0)).unwrap();
        assert_eq!(t, TaskId(2));
        assert!(q.is_empty());
        assert_eq!(q.pop(ClassId(0)), None);
    }

    #[test]
    fn three_class_pop_removes_task_from_every_pair() {
        // After a pop, the task must be gone from all pair queues: popping
        // for the other classes never yields it again, and a re-push (the
        // spoliation path) resurrects it cleanly.
        let inst = Instance::from_class_times(&[&[4.0, 1.0, 2.0], &[4.0, 2.0, 1.0]]);
        let mut q = ClassQueue::new(3, QueueTieBreak::Priority);
        q.push(&inst, TaskId(0));
        q.push(&inst, TaskId(1));
        let (first, _) = q.pop(ClassId(1)).unwrap();
        assert_eq!(first, TaskId(0), "GPU favours T0 (4x over CPU)");
        assert_eq!(q.len(), 1);
        let (second, _) = q.pop(ClassId(2)).unwrap();
        assert_eq!(second, TaskId(1), "T0 must not reappear from another pair");
        assert!(q.is_empty());
        // Spoliation re-push: the task returns and is poppable again.
        q.push(&inst, TaskId(0));
        assert_eq!(q.pop(ClassId(0)).unwrap().0, TaskId(0));
    }

    #[test]
    fn iter_order_survives_snapshot_style_rebuild() {
        // The snapshot protocol re-pushes iter() output in order with fresh
        // sequence numbers; the rebuilt queue must drain identically.
        let inst = Instance::from_times(&[
            (2.0, 1.0),
            (2.0, 1.0),
            (6.0, 4.0),
            (1.0, 2.0),
            (3.0, 3.0),
            (2.0, 1.0),
        ]);
        for tie in [QueueTieBreak::Priority, QueueTieBreak::InsertionOrder] {
            let mut q = AffinityQueue::new(tie);
            for id in inst.ids() {
                q.push(&inst, id);
            }
            let _ = q.pop(ResourceKind::Cpu);
            let saved: Vec<TaskId> = q.iter().collect();
            let mut rebuilt = AffinityQueue::new(tie);
            for &t in &saved {
                rebuilt.push(&inst, t);
            }
            assert_eq!(rebuilt.iter().collect::<Vec<_>>(), saved, "{tie:?}");
            while let Some(expect) = q.pop(ResourceKind::Gpu) {
                assert_eq!(rebuilt.pop(ResourceKind::Gpu), Some(expect), "{tie:?}");
            }
            assert!(rebuilt.is_empty());
        }
    }
}
