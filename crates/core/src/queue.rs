//! The affinity-ordered double-ended ready queue at HeteroPrio's heart.
//!
//! Tasks are ordered by non-increasing acceleration factor; GPUs pop from
//! the front (most accelerated), CPUs from the back. Ties follow
//! [`QueueTieBreak`]: the paper's priority rule (§2.2) keeps the
//! highest-priority task closest to the end of the queue served by the
//! resource class that wants it, falling back to insertion order.
//!
//! Used by the independent-task algorithm, the online (release-dates)
//! variant, and the DAG-mode policy in `heteroprio-schedulers`.

use crate::heteroprio::QueueTieBreak;
use crate::model::{Instance, ResourceKind, TaskId};
use crate::time::F64Ord;
use std::collections::BTreeSet;

/// Key ordering: ascending = the GPU end of the queue.
type Key = (F64Ord, F64Ord, u64, TaskId);

/// A dynamic ready queue ordered by acceleration factor.
#[derive(Clone, Debug, Default)]
pub struct AffinityQueue {
    tie: QueueTieBreak,
    set: BTreeSet<Key>,
    seq: u64,
}

impl AffinityQueue {
    pub fn new(tie: QueueTieBreak) -> Self {
        AffinityQueue { tie, set: BTreeSet::new(), seq: 0 }
    }

    fn key(&mut self, instance: &Instance, task: TaskId) -> Key {
        let t = instance.task(task);
        let rho = t.accel_factor();
        let tie = match self.tie {
            QueueTieBreak::Priority => {
                // lint: allow(float-ord): orientation branch, not arithmetic — ρ = 1 exactly
                // is a documented policy choice (GPU-side tie rule applies).
                if rho >= 1.0 {
                    -t.priority
                } else {
                    t.priority
                }
            }
            QueueTieBreak::InsertionOrder => 0.0,
        };
        let seq = self.seq;
        self.seq += 1;
        (F64Ord::new(-rho), F64Ord::new(tie), seq, task)
    }

    /// Insert a ready task.
    pub fn push(&mut self, instance: &Instance, task: TaskId) {
        let key = self.key(instance, task);
        self.set.insert(key);
    }

    /// Pop the task best suited to a worker of class `kind`: the most
    /// accelerated task for a GPU, the least accelerated for a CPU.
    pub fn pop(&mut self, kind: ResourceKind) -> Option<TaskId> {
        let popped = match kind {
            ResourceKind::Gpu => self.set.pop_first(),
            ResourceKind::Cpu => self.set.pop_last(),
        };
        popped.map(|(_, _, _, task)| task)
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Tasks from the GPU end to the CPU end, for snapshot capture.
    /// Re-pushing them in this order reproduces the queue exactly: fresh
    /// sequence numbers are assigned ascending in iteration order, which
    /// preserves every FIFO tie.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.set.iter().map(|&(_, _, _, task)| task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Task;

    #[test]
    fn gpu_gets_most_accelerated_cpu_least() {
        let inst = Instance::from_times(&[(8.0, 1.0), (1.0, 8.0), (2.0, 2.0)]);
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(0)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(1)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(2)));
        assert!(q.is_empty());
        assert_eq!(q.pop(ResourceKind::Gpu), None);
    }

    #[test]
    fn priority_rule_orients_ties_by_side() {
        let mut inst = Instance::new();
        let lo_acc = inst.push(Task::new(2.0, 1.0).with_priority(1.0));
        let hi_acc = inst.push(Task::new(2.0, 1.0).with_priority(9.0));
        let lo_dec = inst.push(Task::new(1.0, 2.0).with_priority(1.0));
        let hi_dec = inst.push(Task::new(1.0, 2.0).with_priority(9.0));
        let mut q = AffinityQueue::new(QueueTieBreak::Priority);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        // Among accelerated ties the GPU sees the high priority first;
        // among decelerated ties the CPU sees the high priority first.
        assert_eq!(q.pop(ResourceKind::Gpu), Some(hi_acc));
        assert_eq!(q.pop(ResourceKind::Gpu), Some(lo_acc));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(hi_dec));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(lo_dec));
    }

    #[test]
    fn insertion_order_breaks_ties_fifo_per_side() {
        let inst = Instance::from_times(&[(2.0, 1.0), (2.0, 1.0), (2.0, 1.0)]);
        let mut q = AffinityQueue::new(QueueTieBreak::InsertionOrder);
        for id in inst.ids() {
            q.push(&inst, id);
        }
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(0)));
        assert_eq!(q.pop(ResourceKind::Cpu), Some(TaskId(2)));
        assert_eq!(q.pop(ResourceKind::Gpu), Some(TaskId(1)));
    }

    #[test]
    fn matches_sorted_queue_on_static_sets() {
        use crate::heteroprio::sorted_queue;
        let inst =
            Instance::from_times(&[(3.0, 1.0), (1.0, 3.0), (4.0, 4.0), (9.0, 1.0), (2.0, 5.0)]);
        let ids: Vec<TaskId> = inst.ids().collect();
        for tie in [QueueTieBreak::Priority, QueueTieBreak::InsertionOrder] {
            let reference = sorted_queue(&inst, &ids, tie);
            let mut q = AffinityQueue::new(tie);
            for &id in &ids {
                q.push(&inst, id);
            }
            // Draining from the GPU side must reproduce the sorted order.
            let mut drained = Vec::new();
            while let Some(t) = q.pop(ResourceKind::Gpu) {
                drained.push(t);
            }
            assert_eq!(drained, Vec::from(reference), "{tie:?}");
        }
    }
}
