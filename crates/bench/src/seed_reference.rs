//! Frozen copy of the pre-kernel HeteroPrio engine, kept as a differential
//! testing fixture.
//!
//! This is the independent-task engine exactly as it existed before the
//! discrete-event loop was extracted into `heteroprio_core::kernel`: one
//! self-contained simulation owning its own completion heap, generation
//! counters and idle bookkeeping. It is deliberately **not** maintained as a
//! production engine — its sole purpose is to pin the unified kernel against
//! the seed behaviour:
//!
//! * the `kernel_parity` proptest asserts event-for-event identical traces
//!   between [`seed_heteroprio_traced`] and
//!   [`heteroprio_core::heteroprio_traced`];
//! * the `kernel_parity` criterion benchmark asserts identical makespans on
//!   Fig. 6-scale instances and compares wall-clock time.
//!
//! Do not "fix" or modernise this module; behavioural changes belong in the
//! kernel, and this copy exists precisely so such changes are detected.

use heteroprio_core::time::{strictly_less, F64Ord};
use heteroprio_core::{
    sorted_queue, HeteroPrioConfig, HeteroPrioResult, Instance, Platform, ResourceKind, Schedule,
    SpoliationTieBreak, TaskId, TaskRun, WorkerId, WorkerOrder,
};
use heteroprio_trace::{NullSink, QueueEnd, SchedEvent, TraceSink, TraceSummary};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Run the frozen seed engine (Algorithm 1) on an instance of independent
/// tasks. Mirrors [`heteroprio_core::heteroprio()`].
pub fn seed_heteroprio(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
) -> HeteroPrioResult {
    seed_heteroprio_traced(instance, platform, config, &mut NullSink)
}

/// [`seed_heteroprio`] with a trace sink. Mirrors
/// [`heteroprio_core::heteroprio_traced`].
pub fn seed_heteroprio_traced<S: TraceSink>(
    instance: &Instance,
    platform: &Platform,
    config: &HeteroPrioConfig,
    sink: &mut S,
) -> HeteroPrioResult {
    let ids: Vec<TaskId> = instance.ids().collect();
    let mut sim = Sim::new(instance, platform, config, sink);
    for &t in &ids {
        sim.emit(SchedEvent::TaskReady { time: 0.0, task: t.0 });
    }
    sim.queue = sorted_queue(instance, &ids, config.queue_tie);
    sim.run();
    let mut summary = sim.summary;
    summary.finish();
    HeteroPrioResult {
        schedule: sim.schedule,
        first_idle: summary.first_idle,
        spoliations: summary.spoliation_count,
        summary,
    }
}

#[derive(Clone, Copy, Debug)]
struct Running {
    task: TaskId,
    start: f64,
    end: f64,
}

/// Event-driven simulation state of the seed engine.
struct Sim<'a, S: TraceSink> {
    instance: &'a Instance,
    platform: &'a Platform,
    config: &'a HeteroPrioConfig,
    queue: VecDeque<TaskId>,
    running: Vec<Option<Running>>,
    /// Event invalidation counters (bumped when a run is aborted).
    generation: Vec<u64>,
    /// Min-heap of (completion time, worker, generation).
    pending: BinaryHeap<Reverse<(F64Ord, u32, u64)>>,
    idle: Vec<WorkerId>,
    completed: usize,
    schedule: Schedule,
    sink: &'a mut S,
    summary: TraceSummary,
    /// Whether a `WorkerIdleBegin` has been emitted and not yet closed.
    idle_announced: Vec<bool>,
}

impl<'a, S: TraceSink> Sim<'a, S> {
    fn new(
        instance: &'a Instance,
        platform: &'a Platform,
        config: &'a HeteroPrioConfig,
        sink: &'a mut S,
    ) -> Self {
        let summary = if sink.is_enabled() {
            TraceSummary::with_timeline(platform.workers())
        } else {
            TraceSummary::new(platform.workers())
        };
        Sim {
            instance,
            platform,
            config,
            queue: VecDeque::new(),
            running: vec![None; platform.workers()],
            generation: vec![0; platform.workers()],
            pending: BinaryHeap::new(),
            idle: platform.all_workers().collect(),
            completed: 0,
            schedule: Schedule::new(),
            sink,
            summary,
            idle_announced: vec![false; platform.workers()],
        }
    }

    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.summary.record(&event);
        self.sink.emit(event);
    }

    fn worker_sort_key(&self, w: WorkerId) -> (u8, u32) {
        let kind = self.platform.kind_of(w);
        let class = match self.config.worker_order {
            WorkerOrder::GpusFirst => match kind {
                ResourceKind::Gpu => 0,
                ResourceKind::Cpu => 1,
            },
            WorkerOrder::CpusFirst => match kind {
                ResourceKind::Cpu => 0,
                ResourceKind::Gpu => 1,
            },
            WorkerOrder::ById => 0,
        };
        (class, w.0)
    }

    fn start(&mut self, w: WorkerId, task: TaskId, now: f64) {
        let dur = self.instance.task(task).time_on(self.platform.kind_of(w));
        let end = now + dur;
        if self.idle_announced[w.index()] {
            self.idle_announced[w.index()] = false;
            self.emit(SchedEvent::WorkerIdleEnd { time: now, worker: w.0 });
        }
        self.emit(SchedEvent::TaskStart {
            time: now,
            task: task.0,
            worker: w.0,
            expected_end: end,
        });
        self.running[w.index()] = Some(Running { task, start: now, end });
        self.pending.push(Reverse((F64Ord::new(end), w.0, self.generation[w.index()])));
    }

    /// Pick a spoliation victim for idle worker `w` at time `now`:
    /// tasks running on the other class, in decreasing order of expected
    /// completion time (ties per config), first one strictly improvable.
    fn pick_victim(&self, w: WorkerId, now: f64) -> Option<WorkerId> {
        let my_kind = self.platform.kind_of(w);
        let mut candidates: Vec<(WorkerId, Running)> = self
            .platform
            .workers_of(my_kind.other())
            .filter_map(|v| self.running[v.index()].map(|r| (v, r)))
            .collect();
        candidates.sort_by(|(_, a), (_, b)| {
            b.end.total_cmp(&a.end).then_with(|| {
                let ta = self.instance.task(a.task);
                let tb = self.instance.task(b.task);
                match self.config.spoliation_tie {
                    SpoliationTieBreak::PriorityThenId => {
                        tb.priority.total_cmp(&ta.priority).then(a.task.cmp(&b.task))
                    }
                    SpoliationTieBreak::IdAscending => a.task.cmp(&b.task),
                    SpoliationTieBreak::IdDescending => b.task.cmp(&a.task),
                }
            })
        });
        for (v, r) in candidates {
            let new_end = now + self.instance.task(r.task).time_on(my_kind);
            if strictly_less(new_end, r.end) {
                return Some(v);
            }
        }
        None
    }

    /// Let every idle worker act (queue pop or spoliation) until no action is
    /// possible at the current instant.
    fn assign_fixpoint(&mut self, now: f64) {
        loop {
            let mut idle = std::mem::take(&mut self.idle);
            idle.sort_by_key(|&w| self.worker_sort_key(w));
            self.idle = idle;
            let mut acted = false;
            let mut still_idle: Vec<WorkerId> = Vec::new();
            let mut newly_idle: Vec<WorkerId> = Vec::new();
            let workers: Vec<WorkerId> = self.idle.drain(..).collect();
            for w in workers {
                let kind = self.platform.kind_of(w);
                let (popped, end) = match kind {
                    ResourceKind::Gpu => (self.queue.pop_front(), QueueEnd::Front),
                    ResourceKind::Cpu => (self.queue.pop_back(), QueueEnd::Back),
                };
                if let Some(task) = popped {
                    self.emit(SchedEvent::QueuePop { time: now, task: task.0, worker: w.0, end });
                    self.start(w, task, now);
                    acted = true;
                    continue;
                }
                // Queue empty: this worker is (at least momentarily) idle.
                // The WorkerIdleBegin precedes any spoliation attempt, so
                // T_FirstIdle covers thieves that steal work immediately.
                if !self.idle_announced[w.index()] {
                    self.idle_announced[w.index()] = true;
                    self.emit(SchedEvent::WorkerIdleBegin { time: now, worker: w.0 });
                }
                if !self.config.disable_spoliation {
                    if let Some(victim) = self.pick_victim(w, now) {
                        let r = self.running[victim.index()].take().expect("victim running");
                        self.generation[victim.index()] += 1; // invalidate its event
                                                              // lint: allow(schedule-mut): frozen pre-kernel engine kept as a differential-testing fixture.
                        self.schedule.aborted.push(TaskRun {
                            task: r.task,
                            worker: victim,
                            start: r.start,
                            end: now,
                        });
                        self.emit(SchedEvent::Spoliation {
                            time: now,
                            task: r.task.0,
                            victim: victim.0,
                            thief: w.0,
                            wasted_work: now - r.start,
                        });
                        self.start(w, r.task, now);
                        newly_idle.push(victim);
                        acted = true;
                        continue;
                    }
                }
                still_idle.push(w);
            }
            self.idle = still_idle;
            self.idle.extend(newly_idle);
            if !acted {
                return;
            }
        }
    }

    fn run(&mut self) {
        let total = self.instance.len();
        let mut now = 0.0;
        self.assign_fixpoint(now);
        while self.completed < total {
            // Advance to the next valid completion event.
            let (t, w) = loop {
                let Reverse((F64Ord(t), w, generation)) =
                    self.pending.pop().expect("tasks remain but nothing is running");
                if self.generation[w as usize] == generation {
                    break (t, WorkerId(w));
                }
            };
            debug_assert!(t >= now);
            now = t;
            self.complete(w, now);
            // Drain any other completions at exactly the same instant so the
            // idle set is processed coherently in configured order.
            while let Some(&Reverse((F64Ord(t2), w2, g2))) = self.pending.peek() {
                if t2 == now && self.generation[w2 as usize] == g2 {
                    self.pending.pop();
                    self.complete(WorkerId(w2), now);
                } else if self.generation[w2 as usize] != g2 {
                    self.pending.pop();
                } else {
                    break;
                }
            }
            self.assign_fixpoint(now);
        }
    }

    fn complete(&mut self, w: WorkerId, now: f64) {
        let r = self.running[w.index()].take().expect("completion of empty worker");
        // lint: allow(schedule-mut): frozen pre-kernel engine kept as a differential-testing fixture.
        self.schedule.runs.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.emit(SchedEvent::TaskComplete { time: now, task: r.task.0, worker: w.0 });
        self.completed += 1;
        self.idle.push(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::heteroprio;

    #[test]
    fn seed_engine_matches_kernel_on_a_small_instance() {
        let inst = Instance::from_times(&[(4.0, 1.0), (3.0, 1.0), (1.0, 2.0), (1.0, 4.0)]);
        let plat = Platform::new(1, 1);
        let cfg = HeteroPrioConfig::new();
        let seed = seed_heteroprio(&inst, &plat, &cfg);
        let new = heteroprio(&inst, &plat, &cfg);
        assert_eq!(seed.schedule.runs, new.schedule.runs);
        assert_eq!(seed.schedule.aborted, new.schedule.aborted);
        assert_eq!(seed.spoliations, new.spoliations);
    }
}
