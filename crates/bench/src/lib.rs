//! # heteroprio-bench
//!
//! Criterion benchmarks. The library itself only hosts shared helpers; see
//! the `benches/` directory:
//!
//! * `scheduler_cost` — the paper's "fast and efficient" claim: wall-clock
//!   cost of each scheduler on growing ready sets;
//! * `figures` — regeneration benches, one group per paper table/figure;
//! * `ablations` — design-choice ablations (spoliation on/off, ranking
//!   schemes, tie-break adversaries, HEFT insertion);
//! * `kernel_parity` — the unified event kernel vs the frozen seed engine
//!   ([`seed_reference`]): identical makespans, comparable wall-clock.

#![forbid(unsafe_code)]

pub mod perf;
pub mod seed_reference;

use heteroprio_core::Instance;
use heteroprio_workloads::{random_instance, RandomInstanceParams};

/// A deterministic random instance with `tasks` tasks for cost benches.
pub fn bench_instance(tasks: usize) -> Instance {
    random_instance(&RandomInstanceParams { tasks, ..RandomInstanceParams::default() }, 0xBEEF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instance_is_deterministic() {
        assert_eq!(bench_instance(50), bench_instance(50));
        assert_eq!(bench_instance(50).len(), 50);
    }
}
