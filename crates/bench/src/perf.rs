//! The kernel perf harness behind `scripts/bench.sh`, the CLI `perf`
//! subcommand, and the `perf_baseline` bench target.
//!
//! Runs Fig. 6-scale (Cholesky N=16/N=32 kernel mixes on the paper's
//! 20 CPU + 4 GPU platform) and 1000×-scale (Cholesky N=160 with ~695k
//! tasks, a 1M-task random instance) workloads under an
//! [`InMemoryRegistry`], and emits the schema-versioned `BENCH_kernel.json`
//! checkpoint: events/sec, tasks/sec, p50/p99 pick latency and peak queue
//! depths per case. This is the baseline every future kernel optimization
//! (ROADMAP item 2) is measured against.
//!
//! [`validate_baseline`] checks the schema and the non-timing invariants
//! (non-zero counters, required scales); the `perf --smoke` gate in
//! `scripts/check.sh` relies on it staying free of timing assertions so CI
//! stays deterministic.

use heteroprio_core::durability::metric as dmetric;
use heteroprio_core::kernel::metric;
use heteroprio_core::Platform;
use heteroprio_core::{heteroprio_metered, HeteroPrioConfig, Instance, MeteredJournal};
use heteroprio_metrics::{InMemoryRegistry, MetricsSnapshot, Stopwatch};
use heteroprio_schedulers::HeteroPrioDagPolicy;
use heteroprio_simulator::{try_simulate_faulty_metered, FaultPlan, TransferModel};
use heteroprio_taskgraph::{apply_bottom_level_priorities, cholesky, Factorization, WeightScheme};
use heteroprio_trace::{
    event_line, json, FileJournal, Journal, JournalSink, NullSink, SchedEvent, TraceSink,
};
use heteroprio_workloads::{
    independent_instance, multi_class_instance, paper_platform, random_instance, ChameleonTiming,
    MultiClassParams, RandomInstanceParams,
};

/// Version of the `BENCH_kernel.json` schema this harness emits.
pub const SCHEMA_VERSION: u64 = 1;
/// Value of the top-level `"schema"` tag.
pub const SCHEMA_NAME: &str = "heteroprio-bench-kernel";

/// Everything measured for one workload.
struct CaseResult {
    name: &'static str,
    /// `"fig6"`, `"x1000"`, or `"smoke"`.
    scale: &'static str,
    /// `"independent"` (Algorithm 1 queue) or `"dag"` (simulator frontend).
    engine: &'static str,
    tasks: usize,
    makespan: f64,
    spoliations: usize,
    wall_s: f64,
    /// `true` when the run streamed every event through a file journal.
    journaled: bool,
    snapshot: MetricsSnapshot,
}

impl CaseResult {
    fn counter(&self, name: &str) -> u64 {
        self.snapshot.counter(name).unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let events = self.counter(metric::EVENTS_TOTAL);
        let per_sec = |count: u64| {
            if self.wall_s > 0.0 {
                count as f64 / self.wall_s
            } else {
                0.0
            }
        };
        let pick = self.snapshot.histogram(metric::PICK_NS);
        let quantile = |q: f64| pick.map_or(0, |h| h.quantile(q));
        let peak = |name: &str| self.snapshot.gauge(&format!("{name}_peak")).unwrap_or(0);
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"scale\": \"{}\",\n      \"engine\": \"{}\",\n      \
             \"tasks\": {},\n      \"events\": {},\n      \"trace_events\": {},\n      \
             \"spoliations\": {},\n      \"makespan\": {},\n      \"wall_s\": {},\n      \
             \"tasks_per_sec\": {},\n      \"events_per_sec\": {},\n      \
             \"pick_p50_ns\": {},\n      \"pick_p99_ns\": {},\n      \
             \"peak_ready_depth\": {},\n      \"peak_event_heap_depth\": {},\n      \
             \"journaled\": {},\n      \"journal_appends\": {},\n      \
             \"journal_syncs\": {},\n      \"journal_bytes\": {}\n    }}",
            self.name,
            self.scale,
            self.engine,
            self.tasks,
            events,
            self.counter(metric::TRACE_EVENTS_TOTAL),
            self.spoliations,
            self.makespan,
            self.wall_s,
            per_sec(self.counter(metric::TASKS_COMPLETED_TOTAL)),
            per_sec(events),
            quantile(0.5),
            quantile(0.99),
            peak(metric::READY_DEPTH),
            peak(metric::EVENT_HEAP_DEPTH),
            self.journaled,
            self.counter(dmetric::JOURNAL_APPENDS_TOTAL),
            self.counter(dmetric::JOURNAL_SYNCS_TOTAL),
            self.counter(dmetric::JOURNAL_BYTES_TOTAL),
        )
    }
}

/// Run one independent-task instance through the Algorithm 1 engine with a
/// fresh registry and a [`NullSink`] (so trace buffering does not distort
/// the measurement; the emission funnel still counts events).
fn run_independent(name: &'static str, scale: &'static str, instance: &Instance) -> CaseResult {
    run_independent_on(name, scale, &paper_platform(), instance)
}

/// [`run_independent`] on an explicit platform — the k-class cases and the
/// `perf --platform` custom case go through here.
fn run_independent_on(
    name: &'static str,
    scale: &'static str,
    platform: &Platform,
    instance: &Instance,
) -> CaseResult {
    let registry = InMemoryRegistry::new();
    let sw = Stopwatch::start();
    let res =
        heteroprio_metered(instance, platform, &HeteroPrioConfig::new(), &mut NullSink, &registry);
    let wall_s = sw.elapsed_secs_f64();
    CaseResult {
        name,
        scale,
        engine: "independent",
        tasks: instance.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        journaled: false,
        snapshot: registry.snapshot(),
    }
}

/// The k=3 throughput case: the `cpu=16,gpu=4,fpga=2` demonstration
/// platform exercises the pair-queue engine path (one affinity order per
/// class pair, argmax pops) instead of the two-class deque. Same case name
/// in the smoke and full suites so the `--against` gate compares it.
fn run_multi_class_k3() -> CaseResult {
    let (_, platform) = heteroprio_workloads::three_class_platform();
    let instance = multi_class_instance(&MultiClassParams::three_class(5_000), 0xC1A55);
    run_independent_on("multi_class_k3", "k3", &platform, &instance)
}

/// The journal-on twin of [`run_independent`]: every event streamed through
/// a [`MeteredJournal`]-wrapped [`FileJournal`] (real framing, CRCs and the
/// default fsync cadence, plus the final commit sync) in the system temp
/// dir. Events/sec here versus the `_trace` twin — which persists the same
/// stream as a plain trace file — is the durability overhead ratio the
/// acceptance gate bounds at 2x.
fn run_independent_journaled(
    name: &'static str,
    scale: &'static str,
    instance: &Instance,
) -> CaseResult {
    let platform = paper_platform();
    let registry = InMemoryRegistry::new();
    let path = std::env::temp_dir().join(format!("hp-bench-{}-{name}.journal", std::process::id()));
    let journal = FileJournal::create(&path).expect("create bench journal");
    let mut metered = MeteredJournal::new(journal, &registry);
    let mut sink = JournalSink::new(&mut metered);
    let sw = Stopwatch::start();
    let res =
        heteroprio_metered(instance, &platform, &HeteroPrioConfig::new(), &mut sink, &registry);
    let sink_error = sink.error().cloned();
    drop(sink);
    metered.sync().expect("final bench journal sync");
    let wall_s = sw.elapsed_secs_f64();
    assert!(sink_error.is_none(), "bench journal append failed: {sink_error:?}");
    drop(metered);
    let _ = std::fs::remove_file(&path);
    CaseResult {
        name,
        scale,
        engine: "independent",
        tasks: instance.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        journaled: true,
        snapshot: registry.snapshot(),
    }
}

/// Journal-off persistence twin of [`run_independent_journaled`]: the same
/// event stream written to a plain JSONL trace file through a buffered
/// writer, with one write-out sync at the end — the serialization and disk
/// bandwidth any persisted trace pays, without framing, checksums or the
/// cadenced fsyncs. The journal *replaces* this file (it is the trace
/// stream made durable), so this twin is the fair baseline for the
/// durability tax: both runs put the same bytes on disk, and the ratio
/// isolates the journal machinery. Without the final sync the twin's bytes
/// would sit in page cache and the comparison would charge the journal for
/// write-out the baseline silently skips. [`run_independent`]'s `NullSink`
/// case stays in the document to show the cost of persistence itself.
struct TraceFileSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl TraceSink for TraceFileSink {
    fn emit(&mut self, event: SchedEvent) {
        use std::io::Write;
        let _ = self.out.write_all(event_line(&event).as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn is_enabled(&self) -> bool {
        true
    }
}

fn run_independent_traced(
    name: &'static str,
    scale: &'static str,
    instance: &Instance,
) -> CaseResult {
    let platform = paper_platform();
    let registry = InMemoryRegistry::new();
    let path = std::env::temp_dir().join(format!("hp-bench-{}-{name}.jsonl", std::process::id()));
    let file = std::fs::File::create(&path).expect("create bench trace file");
    let mut sink = TraceFileSink { out: std::io::BufWriter::new(file) };
    let sw = Stopwatch::start();
    let res =
        heteroprio_metered(instance, &platform, &HeteroPrioConfig::new(), &mut sink, &registry);
    {
        use std::io::Write;
        sink.out.flush().expect("flush bench trace file");
        sink.out.get_ref().sync_data().expect("write out bench trace file");
    }
    let wall_s = sw.elapsed_secs_f64();
    drop(sink);
    let _ = std::fs::remove_file(&path);
    CaseResult {
        name,
        scale,
        engine: "independent",
        tasks: instance.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        journaled: false,
        snapshot: registry.snapshot(),
    }
}

/// Run one Cholesky DAG through the simulator frontend (dependency release,
/// `PolicyDecision` events) with a fresh registry.
fn run_dag(name: &'static str, scale: &'static str, tiles: usize) -> CaseResult {
    let platform = paper_platform();
    let mut graph = cholesky(tiles, &ChameleonTiming);
    apply_bottom_level_priorities(&mut graph, WeightScheme::Min);
    let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
    let registry = InMemoryRegistry::new();
    let sw = Stopwatch::start();
    let res = try_simulate_faulty_metered(
        &graph,
        &platform,
        &mut policy,
        &TransferModel::NONE,
        &FaultPlan::NONE,
        &mut NullSink,
        &registry,
    )
    .expect("fault-free simulation cannot fail");
    let wall_s = sw.elapsed_secs_f64();
    CaseResult {
        name,
        scale,
        engine: "dag",
        tasks: graph.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        journaled: false,
        snapshot: registry.snapshot(),
    }
}

fn fig6_instance(tiles: usize) -> Instance {
    independent_instance(Factorization::Cholesky, tiles, &ChameleonTiming)
}

/// Repeat a measurement and keep the fastest run. Timing noise on
/// sub-millisecond cases is strictly additive (preemption, cache state),
/// so best-of is the robust statistic for the regression gate's
/// comparisons against the committed baseline.
fn best_of(reps: usize, run: impl Fn() -> CaseResult) -> CaseResult {
    (0..reps)
        .map(|_| run())
        .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
        .expect("best_of needs at least one rep")
}

/// Run the suite and return the `BENCH_kernel.json` document. `smoke` runs
/// tiny instances only (for the deterministic CI gate); the full suite runs
/// the Fig. 6-scale and 1000×-scale cases the baseline commits.
pub fn run_suite(smoke: bool) -> String {
    run_suite_on(smoke, None)
}

/// [`run_suite`] with an optional extra case on a caller-supplied platform
/// (the CLI's `perf --platform`): a seeded k-class random instance sized
/// like the fig6 cases, named `custom_platform`.
pub fn run_suite_on(smoke: bool, custom: Option<&Platform>) -> String {
    let mut cases: Vec<CaseResult> = if smoke {
        vec![
            run_independent("cholesky_n4_smoke", "smoke", &fig6_instance(4)),
            run_independent(
                "random_200_smoke",
                "smoke",
                &random_instance(
                    &RandomInstanceParams { tasks: 200, ..RandomInstanceParams::default() },
                    0xBEEF,
                ),
            ),
            run_dag("dag_cholesky_n4_smoke", "smoke", 4),
            run_independent_traced("cholesky_n4_smoke_trace", "smoke", &fig6_instance(4)),
            run_independent_journaled("cholesky_n4_smoke_journal", "smoke", &fig6_instance(4)),
            // Regression-gate cases: named identically to cases in the
            // committed full baseline so [`compare_against_baseline`] finds
            // overlap; best-of repetition damps the timing noise the tiny
            // fig6 instances are exposed to.
            best_of(7, || run_independent("cholesky_n16_fig6", "fig6", &fig6_instance(16))),
            best_of(5, || run_independent("cholesky_n32_fig6", "fig6", &fig6_instance(32))),
            best_of(7, || run_dag("dag_cholesky_n16_fig6", "fig6", 16)),
            best_of(5, run_multi_class_k3),
        ]
    } else {
        vec![
            run_independent("cholesky_n16_fig6", "fig6", &fig6_instance(16)),
            run_independent("cholesky_n32_fig6", "fig6", &fig6_instance(32)),
            run_independent_traced("cholesky_n16_fig6_trace", "fig6", &fig6_instance(16)),
            run_independent_traced("cholesky_n32_fig6_trace", "fig6", &fig6_instance(32)),
            run_independent_journaled("cholesky_n16_fig6_journal", "fig6", &fig6_instance(16)),
            run_independent_journaled("cholesky_n32_fig6_journal", "fig6", &fig6_instance(32)),
            run_dag("dag_cholesky_n16_fig6", "fig6", 16),
            run_independent("cholesky_n160_x1000", "x1000", &fig6_instance(160)),
            run_independent(
                "random_1m_x1000",
                "x1000",
                &random_instance(
                    &RandomInstanceParams { tasks: 1_000_000, ..RandomInstanceParams::default() },
                    0xBEEF,
                ),
            ),
            run_multi_class_k3(),
        ]
    };
    if let Some(platform) = custom {
        let params = MultiClassParams {
            tasks: 5_000,
            base_range: (1.0, 10.0),
            accel_ranges: vec![(0.5, 30.0); platform.k() - 1],
        };
        let instance = multi_class_instance(&params, 0xC1A55);
        cases.push(run_independent_on("custom_platform", "custom", platform, &instance));
    }
    let platform = paper_platform();
    let body: Vec<String> = cases.iter().map(CaseResult::to_json).collect();
    // The durability tax, per journaled case: wall time versus the twin
    // that persists the identical event stream as a plain trace file. The
    // acceptance gate reads this ratio and bounds it at 2x.
    let overhead: Vec<String> = cases
        .iter()
        .filter(|c| c.journaled)
        .filter_map(|c| {
            let twin = format!("{}_trace", c.name.strip_suffix("_journal")?);
            let off = cases.iter().find(|o| o.name == twin)?;
            (off.wall_s > 0.0).then(|| {
                format!(
                    "    {{ \"case\": \"{}\", \"vs\": \"{}\", \"overhead_x\": {:.3} }}",
                    c.name,
                    twin,
                    c.wall_s / off.wall_s
                )
            })
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA_NAME}\",\n  \"version\": {SCHEMA_VERSION},\n  \
         \"smoke\": {smoke},\n  \"platform\": {{ \"cpus\": {}, \"gpus\": {} }},\n  \
         \"journal_overhead\": [\n{}\n  ],\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        platform.cpus(),
        platform.gpus(),
        overhead.join(",\n"),
        body.join(",\n"),
    )
}

/// Check a `BENCH_kernel.json` document: schema tag and version, non-empty
/// cases, non-zero task/event counters, and — for a full (non-smoke) run —
/// at least one `fig6` and one `x1000` case. Deliberately no timing
/// assertions, so the CI smoke gate stays deterministic.
pub fn validate_baseline(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing top-level {key:?}"));
    if field("schema")?.as_str() != Some(SCHEMA_NAME) {
        return Err(format!("schema tag is not {SCHEMA_NAME:?}"));
    }
    if field("version")?.as_f64() != Some(SCHEMA_VERSION as f64) {
        return Err(format!("unsupported schema version (want {SCHEMA_VERSION})"));
    }
    let smoke = field("smoke")?.as_bool().ok_or("smoke flag is not a bool")?;
    let cases = field("cases")?.as_arr().ok_or("cases is not an array")?;
    if cases.is_empty() {
        return Err("cases array is empty".to_string());
    }
    let mut scales = Vec::new();
    let mut saw_journaled = false;
    for case in cases {
        let name = case.get("name").and_then(|v| v.as_str()).ok_or("case missing name")?;
        for key in [
            "tasks",
            "events",
            "trace_events",
            "wall_s",
            "tasks_per_sec",
            "events_per_sec",
            "pick_p50_ns",
            "pick_p99_ns",
            "peak_ready_depth",
            "peak_event_heap_depth",
            "makespan",
            "journal_appends",
            "journal_syncs",
            "journal_bytes",
        ] {
            let value = case
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{name}: missing numeric {key:?}"))?;
            if value < 0.0 {
                return Err(format!("{name}: {key} is negative"));
            }
        }
        for key in ["tasks", "events", "trace_events", "peak_event_heap_depth"] {
            let nonzero = case.get(key).and_then(|v| v.as_f64()).is_some_and(|v| v > 0.0);
            if !nonzero {
                return Err(format!("{name}: counter {key:?} is zero"));
            }
        }
        let journaled =
            case.get("journaled").and_then(|v| v.as_bool()).ok_or("case missing journaled")?;
        if journaled {
            saw_journaled = true;
            let appends = case.get("journal_appends").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let traced = case.get("trace_events").and_then(|v| v.as_f64()).unwrap_or(0.0);
            // lint: allow(float-eq): exact integer counters carried in JSON numbers.
            if appends != traced {
                return Err(format!(
                    "{name}: journaled case appended {appends} records but traced {traced} events"
                ));
            }
            let bytes = case.get("journal_bytes").and_then(|v| v.as_f64()).unwrap_or(0.0);
            if bytes <= 0.0 {
                return Err(format!("{name}: journaled case wrote no bytes"));
            }
        }
        scales.push(case.get("scale").and_then(|v| v.as_str()).ok_or("case missing scale")?);
    }
    if !saw_journaled {
        return Err("baseline has no journal-on case to measure durability overhead".to_string());
    }
    // Every journaled case must have its trace-file twin and a recorded
    // overhead ratio (presence and positivity only — no timing threshold,
    // so the CI smoke gate stays deterministic; the 2x acceptance bound is
    // read off the committed full baseline).
    let overhead = field("journal_overhead")?.as_arr().ok_or("journal_overhead is not an array")?;
    let journaled_names: Vec<&str> = cases
        .iter()
        .filter(|c| c.get("journaled").and_then(|v| v.as_bool()) == Some(true))
        .filter_map(|c| c.get("name").and_then(|v| v.as_str()))
        .collect();
    for name in &journaled_names {
        let entry = overhead
            .iter()
            .find(|e| e.get("case").and_then(|v| v.as_str()) == Some(name))
            .ok_or_else(|| format!("{name}: journaled case has no journal_overhead entry"))?;
        let ratio = entry
            .get("overhead_x")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{name}: journal_overhead entry has no numeric overhead_x"))?;
        if ratio.is_nan() || ratio <= 0.0 {
            return Err(format!("{name}: journal overhead ratio {ratio} is not positive"));
        }
    }
    if !smoke {
        for required in ["fig6", "x1000"] {
            if !scales.contains(&required) {
                return Err(format!("full baseline is missing a {required:?}-scale case"));
            }
        }
    }
    Ok(())
}

/// Compare a fresh run against a committed baseline document: every case
/// name present in **both** documents must not have lost more than
/// `tolerance` (a fraction, e.g. `0.2`) of its baseline tasks/sec.
///
/// Returns one report line per compared case on success; an `Err` lists
/// every regressed case. Trace/journal twins never overlap with the gate
/// cases the smoke suite emits, so only the deterministic compute cases
/// are compared. This is the `perf --smoke --against BENCH_kernel.json`
/// gate in `scripts/check.sh`.
pub fn compare_against_baseline(
    current: &str,
    baseline: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    fn rates(text: &str) -> Result<Vec<(String, f64)>, String> {
        let doc = json::parse(text)?;
        let cases = doc.get("cases").and_then(|c| c.as_arr()).ok_or("document has no cases")?;
        cases
            .iter()
            .map(|c| {
                let name =
                    c.get("name").and_then(|v| v.as_str()).ok_or("case missing name")?.to_string();
                let rate = c
                    .get("tasks_per_sec")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("{name}: missing tasks_per_sec"))?;
                Ok((name, rate))
            })
            .collect()
    }
    let current = rates(current)?;
    let baseline = rates(baseline)?;
    let mut report = Vec::new();
    let mut regressions = Vec::new();
    for (name, rate) in &current {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        if *base <= 0.0 {
            return Err(format!("{name}: baseline tasks_per_sec is not positive"));
        }
        let ratio = rate / base;
        let line = format!("{name}: {rate:.0} vs baseline {base:.0} tasks/s ({ratio:.2}x)");
        // lint: allow(float-ord): perf-gate regression threshold on a
        // throughput ratio, not a simulated-time comparison.
        if ratio < 1.0 - tolerance {
            regressions.push(line.clone());
        }
        report.push(line);
    }
    if report.is_empty() {
        return Err("no case names overlap between the run and the baseline".to_string());
    }
    if !regressions.is_empty() {
        return Err(format!(
            "tasks/sec regressed more than {:.0}% on {} case(s):\n  {}",
            tolerance * 100.0,
            regressions.len(),
            regressions.join("\n  ")
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_emits_a_valid_baseline() {
        let doc = run_suite(true);
        validate_baseline(&doc).expect("smoke baseline validates");
        for needle in [
            "cholesky_n4_smoke",
            "random_200_smoke",
            "dag_cholesky_n4_smoke",
            "cholesky_n4_smoke_journal",
            // The regression-gate cases must keep the names the committed
            // full baseline uses, or `--against` has nothing to compare.
            "\"name\": \"cholesky_n16_fig6\"",
            "\"name\": \"cholesky_n32_fig6\"",
            "\"name\": \"dag_cholesky_n16_fig6\"",
        ] {
            assert!(doc.contains(needle), "missing case {needle} in:\n{doc}");
        }
    }

    #[test]
    fn compare_flags_regressions_and_tolerates_noise() {
        let doc = |rate: f64| {
            format!(
                "{{ \"cases\": [ {{ \"name\": \"a\", \"tasks_per_sec\": {rate} }}, \
                 {{ \"name\": \"only_current\", \"tasks_per_sec\": 1.0 }} ] }}"
            )
        };
        let base = "{ \"cases\": [ { \"name\": \"a\", \"tasks_per_sec\": 1000.0 }, \
                     { \"name\": \"only_baseline\", \"tasks_per_sec\": 9.0 } ] }";
        let base = base.to_string();
        // Within tolerance (10% down on a 20% gate) passes with a report.
        let report = compare_against_baseline(&doc(900.0), &base, 0.2).expect("within tolerance");
        assert_eq!(report.len(), 1, "only overlapping names are compared: {report:?}");
        assert!(report[0].contains("0.90x"), "{report:?}");
        // Faster than baseline passes.
        assert!(compare_against_baseline(&doc(2000.0), &base, 0.2).is_ok());
        // A 30% drop on a 20% gate fails and names the case.
        let err = compare_against_baseline(&doc(700.0), &base, 0.2).unwrap_err();
        assert!(err.contains("a: 700"), "{err}");
        // No overlap at all is an error, not a silent pass.
        let disjoint = "{ \"cases\": [ { \"name\": \"b\", \"tasks_per_sec\": 5.0 } ] }";
        assert!(compare_against_baseline(disjoint, &base, 0.2).is_err());
        // Garbage documents are errors.
        assert!(compare_against_baseline("nope", &base, 0.2).is_err());
        assert!(compare_against_baseline(&doc(1.0), "{}", 0.2).is_err());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate_baseline("{}").is_err());
        assert!(validate_baseline("not json").is_err());
        let wrong_version = run_suite(true).replace("\"version\": 1", "\"version\": 999");
        assert!(validate_baseline(&wrong_version).is_err());
        // A full baseline without the x1000 case must be rejected.
        let fake_full = run_suite(true).replace("\"smoke\": true", "\"smoke\": false");
        assert!(validate_baseline(&fake_full).is_err());
    }
}
