//! The kernel perf harness behind `scripts/bench.sh`, the CLI `perf`
//! subcommand, and the `perf_baseline` bench target.
//!
//! Runs Fig. 6-scale (Cholesky N=16/N=32 kernel mixes on the paper's
//! 20 CPU + 4 GPU platform) and 1000×-scale (Cholesky N=160 with ~695k
//! tasks, a 1M-task random instance) workloads under an
//! [`InMemoryRegistry`], and emits the schema-versioned `BENCH_kernel.json`
//! checkpoint: events/sec, tasks/sec, p50/p99 pick latency and peak queue
//! depths per case. This is the baseline every future kernel optimization
//! (ROADMAP item 2) is measured against.
//!
//! [`validate_baseline`] checks the schema and the non-timing invariants
//! (non-zero counters, required scales); the `perf --smoke` gate in
//! `scripts/check.sh` relies on it staying free of timing assertions so CI
//! stays deterministic.

use heteroprio_core::kernel::metric;
use heteroprio_core::{heteroprio_metered, HeteroPrioConfig, Instance};
use heteroprio_metrics::{InMemoryRegistry, MetricsSnapshot, Stopwatch};
use heteroprio_schedulers::HeteroPrioDagPolicy;
use heteroprio_simulator::{try_simulate_faulty_metered, FaultPlan, TransferModel};
use heteroprio_taskgraph::{apply_bottom_level_priorities, cholesky, Factorization, WeightScheme};
use heteroprio_trace::{json, NullSink};
use heteroprio_workloads::{
    independent_instance, paper_platform, random_instance, ChameleonTiming, RandomInstanceParams,
};

/// Version of the `BENCH_kernel.json` schema this harness emits.
pub const SCHEMA_VERSION: u64 = 1;
/// Value of the top-level `"schema"` tag.
pub const SCHEMA_NAME: &str = "heteroprio-bench-kernel";

/// Everything measured for one workload.
struct CaseResult {
    name: &'static str,
    /// `"fig6"`, `"x1000"`, or `"smoke"`.
    scale: &'static str,
    /// `"independent"` (Algorithm 1 queue) or `"dag"` (simulator frontend).
    engine: &'static str,
    tasks: usize,
    makespan: f64,
    spoliations: usize,
    wall_s: f64,
    snapshot: MetricsSnapshot,
}

impl CaseResult {
    fn counter(&self, name: &str) -> u64 {
        self.snapshot.counter(name).unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let events = self.counter(metric::EVENTS_TOTAL);
        let per_sec = |count: u64| {
            if self.wall_s > 0.0 {
                count as f64 / self.wall_s
            } else {
                0.0
            }
        };
        let pick = self.snapshot.histogram(metric::PICK_NS);
        let quantile = |q: f64| pick.map_or(0, |h| h.quantile(q));
        let peak = |name: &str| self.snapshot.gauge(&format!("{name}_peak")).unwrap_or(0);
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"scale\": \"{}\",\n      \"engine\": \"{}\",\n      \
             \"tasks\": {},\n      \"events\": {},\n      \"trace_events\": {},\n      \
             \"spoliations\": {},\n      \"makespan\": {},\n      \"wall_s\": {},\n      \
             \"tasks_per_sec\": {},\n      \"events_per_sec\": {},\n      \
             \"pick_p50_ns\": {},\n      \"pick_p99_ns\": {},\n      \
             \"peak_ready_depth\": {},\n      \"peak_event_heap_depth\": {}\n    }}",
            self.name,
            self.scale,
            self.engine,
            self.tasks,
            events,
            self.counter(metric::TRACE_EVENTS_TOTAL),
            self.spoliations,
            self.makespan,
            self.wall_s,
            per_sec(self.counter(metric::TASKS_COMPLETED_TOTAL)),
            per_sec(events),
            quantile(0.5),
            quantile(0.99),
            peak(metric::READY_DEPTH),
            peak(metric::EVENT_HEAP_DEPTH),
        )
    }
}

/// Run one independent-task instance through the Algorithm 1 engine with a
/// fresh registry and a [`NullSink`] (so trace buffering does not distort
/// the measurement; the emission funnel still counts events).
fn run_independent(name: &'static str, scale: &'static str, instance: &Instance) -> CaseResult {
    let platform = paper_platform();
    let registry = InMemoryRegistry::new();
    let sw = Stopwatch::start();
    let res =
        heteroprio_metered(instance, &platform, &HeteroPrioConfig::new(), &mut NullSink, &registry);
    let wall_s = sw.elapsed_secs_f64();
    CaseResult {
        name,
        scale,
        engine: "independent",
        tasks: instance.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        snapshot: registry.snapshot(),
    }
}

/// Run one Cholesky DAG through the simulator frontend (dependency release,
/// `PolicyDecision` events) with a fresh registry.
fn run_dag(name: &'static str, scale: &'static str, tiles: usize) -> CaseResult {
    let platform = paper_platform();
    let mut graph = cholesky(tiles, &ChameleonTiming);
    apply_bottom_level_priorities(&mut graph, WeightScheme::Min);
    let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
    let registry = InMemoryRegistry::new();
    let sw = Stopwatch::start();
    let res = try_simulate_faulty_metered(
        &graph,
        &platform,
        &mut policy,
        &TransferModel::NONE,
        &FaultPlan::NONE,
        &mut NullSink,
        &registry,
    )
    .expect("fault-free simulation cannot fail");
    let wall_s = sw.elapsed_secs_f64();
    CaseResult {
        name,
        scale,
        engine: "dag",
        tasks: graph.len(),
        makespan: res.schedule.makespan(),
        spoliations: res.spoliations,
        wall_s,
        snapshot: registry.snapshot(),
    }
}

fn fig6_instance(tiles: usize) -> Instance {
    independent_instance(Factorization::Cholesky, tiles, &ChameleonTiming)
}

/// Run the suite and return the `BENCH_kernel.json` document. `smoke` runs
/// tiny instances only (for the deterministic CI gate); the full suite runs
/// the Fig. 6-scale and 1000×-scale cases the baseline commits.
pub fn run_suite(smoke: bool) -> String {
    let cases: Vec<CaseResult> = if smoke {
        vec![
            run_independent("cholesky_n4_smoke", "smoke", &fig6_instance(4)),
            run_independent(
                "random_200_smoke",
                "smoke",
                &random_instance(
                    &RandomInstanceParams { tasks: 200, ..RandomInstanceParams::default() },
                    0xBEEF,
                ),
            ),
            run_dag("dag_cholesky_n4_smoke", "smoke", 4),
        ]
    } else {
        vec![
            run_independent("cholesky_n16_fig6", "fig6", &fig6_instance(16)),
            run_independent("cholesky_n32_fig6", "fig6", &fig6_instance(32)),
            run_dag("dag_cholesky_n16_fig6", "fig6", 16),
            run_independent("cholesky_n160_x1000", "x1000", &fig6_instance(160)),
            run_independent(
                "random_1m_x1000",
                "x1000",
                &random_instance(
                    &RandomInstanceParams { tasks: 1_000_000, ..RandomInstanceParams::default() },
                    0xBEEF,
                ),
            ),
        ]
    };
    let platform = paper_platform();
    let body: Vec<String> = cases.iter().map(CaseResult::to_json).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA_NAME}\",\n  \"version\": {SCHEMA_VERSION},\n  \
         \"smoke\": {smoke},\n  \"platform\": {{ \"cpus\": {}, \"gpus\": {} }},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        platform.cpus,
        platform.gpus,
        body.join(",\n"),
    )
}

/// Check a `BENCH_kernel.json` document: schema tag and version, non-empty
/// cases, non-zero task/event counters, and — for a full (non-smoke) run —
/// at least one `fig6` and one `x1000` case. Deliberately no timing
/// assertions, so the CI smoke gate stays deterministic.
pub fn validate_baseline(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing top-level {key:?}"));
    if field("schema")?.as_str() != Some(SCHEMA_NAME) {
        return Err(format!("schema tag is not {SCHEMA_NAME:?}"));
    }
    if field("version")?.as_f64() != Some(SCHEMA_VERSION as f64) {
        return Err(format!("unsupported schema version (want {SCHEMA_VERSION})"));
    }
    let smoke = field("smoke")?.as_bool().ok_or("smoke flag is not a bool")?;
    let cases = field("cases")?.as_arr().ok_or("cases is not an array")?;
    if cases.is_empty() {
        return Err("cases array is empty".to_string());
    }
    let mut scales = Vec::new();
    for case in cases {
        let name = case.get("name").and_then(|v| v.as_str()).ok_or("case missing name")?;
        for key in [
            "tasks",
            "events",
            "trace_events",
            "wall_s",
            "tasks_per_sec",
            "events_per_sec",
            "pick_p50_ns",
            "pick_p99_ns",
            "peak_ready_depth",
            "peak_event_heap_depth",
            "makespan",
        ] {
            let value = case
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{name}: missing numeric {key:?}"))?;
            if value < 0.0 {
                return Err(format!("{name}: {key} is negative"));
            }
        }
        for key in ["tasks", "events", "trace_events", "peak_event_heap_depth"] {
            let nonzero = case.get(key).and_then(|v| v.as_f64()).is_some_and(|v| v > 0.0);
            if !nonzero {
                return Err(format!("{name}: counter {key:?} is zero"));
            }
        }
        scales.push(case.get("scale").and_then(|v| v.as_str()).ok_or("case missing scale")?);
    }
    if !smoke {
        for required in ["fig6", "x1000"] {
            if !scales.contains(&required) {
                return Err(format!("full baseline is missing a {required:?}-scale case"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_emits_a_valid_baseline() {
        let doc = run_suite(true);
        validate_baseline(&doc).expect("smoke baseline validates");
        for needle in ["cholesky_n4_smoke", "random_200_smoke", "dag_cholesky_n4_smoke"] {
            assert!(doc.contains(needle), "missing case {needle} in:\n{doc}");
        }
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate_baseline("{}").is_err());
        assert!(validate_baseline("not json").is_err());
        let wrong_version = run_suite(true).replace("\"version\": 1", "\"version\": 999");
        assert!(validate_baseline(&wrong_version).is_err());
        // A full baseline without the x1000 case must be rejected.
        let fake_full = run_suite(true).replace("\"smoke\": true", "\"smoke\": false");
        assert!(validate_baseline(&fake_full).is_err());
    }
}
