//! Scheduler wall-clock cost on independent ready sets (the paper's §1
//! motivation: runtime schedulers sit on the critical path, so decisions
//! must be near-constant-time). HeteroPrio's cost per task is O(log k);
//! DualHP re-packs the ready set inside a binary search; HEFT scans all
//! workers per task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heteroprio_bench::bench_instance;
use heteroprio_core::{heteroprio, HeteroPrioConfig};
use heteroprio_experiments::IndepAlgo;
use heteroprio_schedulers::dualhp_independent;
use heteroprio_workloads::paper_platform;
use std::hint::black_box;

fn scheduler_cost(c: &mut Criterion) {
    let platform = paper_platform();
    let mut group = c.benchmark_group("scheduler_cost");
    for &size in &[100usize, 1_000, 10_000] {
        let instance = bench_instance(size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("heteroprio", size), &instance, |b, inst| {
            b.iter(|| black_box(heteroprio(inst, &platform, &HeteroPrioConfig::new()).makespan()))
        });
        group.bench_with_input(BenchmarkId::new("dualhp", size), &instance, |b, inst| {
            b.iter(|| black_box(dualhp_independent(inst, &platform).makespan()))
        });
        group.bench_with_input(BenchmarkId::new("heft", size), &instance, |b, inst| {
            b.iter(|| black_box(IndepAlgo::Heft.run(inst, &platform).makespan()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scheduler_cost
}
criterion_main!(benches);
