//! Kernel perf baseline: runs the `heteroprio_bench::perf` suite and prints
//! the `BENCH_kernel.json` document to stdout.
//!
//! Like `kernel_parity`, `--test` switches to smoke mode (tiny instances,
//! schema + counter assertions only, no timing claims) so `scripts/check.sh`
//! stays deterministic; the full run is what `scripts/bench.sh` commits as
//! the repo-root baseline.

#![forbid(unsafe_code)]

use heteroprio_bench::perf::{run_suite, validate_baseline};

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let doc = run_suite(smoke);
    validate_baseline(&doc).expect("perf baseline must satisfy its own schema");
    if smoke {
        eprintln!("perf_baseline: smoke suite ok (schema + counters validated)");
    }
    println!("{doc}");
}
