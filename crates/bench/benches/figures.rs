//! Regeneration benches — one group per table/figure of the paper, so
//! `cargo bench` exercises exactly the code paths behind each reported
//! number (at bench-friendly sizes; the full sweeps live in the
//! `heteroprio-experiments` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heteroprio_core::list::list_schedule;
use heteroprio_core::{heteroprio, HeteroPrioConfig};
use heteroprio_experiments::{fig6_series, fig7_series};
use heteroprio_taskgraph::Factorization;
use heteroprio_workloads::{
    independent_instance, paper_platform, t2_worst_order, theorem11, theorem14, theorem8,
    ChameleonTiming, PROFILES,
};
use std::hint::black_box;

/// Table 1: the kernel model (trivially cheap; kept for completeness so
/// every table has a bench target).
fn table1(c: &mut Criterion) {
    c.bench_function("table1/kernel_model", |b| {
        b.iter(|| {
            let total: f64 = PROFILES.iter().map(|p| p.cpu_ms / p.accel).sum();
            black_box(total)
        })
    });
}

/// Table 2: worst-case family runs.
fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    let t8 = theorem8();
    group.bench_function("theorem8", |b| {
        b.iter(|| black_box(heteroprio(&t8.instance, &t8.platform, &t8.config).makespan()))
    });
    let t11 = theorem11(16, 64);
    group.bench_function("theorem11_m16", |b| {
        b.iter(|| black_box(heteroprio(&t11.instance, &t11.platform, &t11.config).makespan()))
    });
    let t14 = theorem14(1);
    group.bench_function("theorem14_k1", |b| {
        b.iter(|| black_box(heteroprio(&t14.instance, &t14.platform, &t14.config).makespan()))
    });
    group.finish();
}

/// Figure 4: list schedules of the T2 set.
fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    for k in [1usize, 2, 4] {
        let order = t2_worst_order(k);
        group.bench_with_input(BenchmarkId::new("worst_list", k), &order, |b, order| {
            b.iter(|| black_box(list_schedule(order, 6 * k).makespan()))
        });
    }
    group.finish();
}

/// Figure 6: independent-task sweep (one representative N per bench).
fn fig6(c: &mut Criterion) {
    let platform = paper_platform();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for f in Factorization::ALL {
        group.bench_function(BenchmarkId::new("sweep", f.name()), |b| {
            b.iter(|| black_box(fig6_series(f, &[16], &platform, &ChameleonTiming)))
        });
    }
    // Also at the instance level, N=24.
    let inst = independent_instance(Factorization::Cholesky, 24, &ChameleonTiming);
    group.bench_function("heteroprio_cholesky_n24", |b| {
        b.iter(|| black_box(heteroprio(&inst, &platform, &HeteroPrioConfig::new()).makespan()))
    });
    group.finish();
}

/// Figures 7/8/9: the DAG sweep (the 8/9 metrics are computed inside).
fn fig7(c: &mut Criterion) {
    let platform = paper_platform();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for f in Factorization::ALL {
        group.bench_function(BenchmarkId::new("sweep", f.name()), |b| {
            b.iter(|| black_box(fig7_series(f, &[12], &platform, &ChameleonTiming)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = table1, table2, fig4, fig6, fig7
}
criterion_main!(benches);
