//! Benchmarks of the submission front-end: dependency-inference throughput
//! (tasks submitted per second) and end-to-end factorization runs, plus the
//! classic heuristics' mapping cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heteroprio_bench::bench_instance;
use heteroprio_core::Platform;
use heteroprio_runtime::{submit_cholesky, Runtime, Scheduler};
use heteroprio_schedulers::{heuristic_schedule, Heuristic};
use heteroprio_taskgraph::{expected_task_count, Factorization, WeightScheme};
use heteroprio_workloads::{paper_platform, ChameleonTiming};
use std::hint::black_box;

fn submission_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_submission");
    for n in [8usize, 16, 24] {
        let tasks = expected_task_count(Factorization::Cholesky, n) as u64;
        group.throughput(Throughput::Elements(tasks));
        group.bench_with_input(BenchmarkId::new("cholesky_infer", n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = Runtime::new(Platform::new(2, 2));
                submit_cholesky(&mut rt, n, &ChameleonTiming);
                black_box(rt.build_graph().unwrap().edge_count())
            })
        });
    }
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_end_to_end");
    group.sample_size(10);
    group.bench_function("cholesky_n16_heteroprio", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(paper_platform());
            submit_cholesky(&mut rt, 16, &ChameleonTiming);
            black_box(rt.run(Scheduler::HeteroPrio(WeightScheme::Min)).unwrap().makespan)
        })
    });
    group.finish();
}

fn heuristics_cost(c: &mut Criterion) {
    let platform = paper_platform();
    let instance = bench_instance(2_000);
    let mut group = c.benchmark_group("heuristics_cost");
    for h in Heuristic::ALL {
        group.bench_function(h.name(), |b| {
            b.iter(|| black_box(heuristic_schedule(h, &instance, &platform).makespan()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = submission_throughput, end_to_end, heuristics_cost
}
criterion_main!(benches);
