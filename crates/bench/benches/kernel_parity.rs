//! The unification pin: the shared event kernel must be no slower — and
//! makespan-identical — compared to the frozen pre-kernel seed engine it
//! replaced, on Fig. 6-scale instances (Cholesky kernel mix of an N-tile
//! factorization on the paper's 20 CPU + 4 GPU machine).
//!
//! Run with `--test` for a smoke pass (parity asserts only, no timing); the
//! full run reports wall-clock for both engines side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heteroprio_bench::seed_reference::seed_heteroprio;
use heteroprio_core::{heteroprio, HeteroPrioConfig};
use heteroprio_taskgraph::Factorization;
use heteroprio_workloads::{independent_instance, paper_platform, ChameleonTiming};
use std::hint::black_box;

fn kernel_parity(c: &mut Criterion) {
    let platform = paper_platform();
    let config = HeteroPrioConfig::new();
    let mut group = c.benchmark_group("kernel_parity");
    for &n in &[16usize, 32, 64] {
        let instance = independent_instance(Factorization::Cholesky, n, &ChameleonTiming);
        // Parity gate first: the benchmark refuses to publish numbers for
        // engines that disagree.
        let seed = seed_heteroprio(&instance, &platform, &config);
        let unified = heteroprio(&instance, &platform, &config);
        assert_eq!(
            seed.makespan().to_bits(),
            unified.makespan().to_bits(),
            "kernel diverged from seed engine at n={n}: {} vs {}",
            seed.makespan(),
            unified.makespan(),
        );
        assert_eq!(seed.spoliations, unified.spoliations, "spoliation count diverged at n={n}");
        group.throughput(Throughput::Elements(instance.len() as u64));
        group.bench_with_input(BenchmarkId::new("seed", n), &instance, |b, inst| {
            b.iter(|| black_box(seed_heteroprio(inst, &platform, &config).makespan()))
        });
        group.bench_with_input(BenchmarkId::new("kernel", n), &instance, |b, inst| {
            b.iter(|| black_box(heteroprio(inst, &platform, &config).makespan()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = kernel_parity
}
criterion_main!(benches);
