//! Ablation benches for the design choices DESIGN.md calls out:
//! (a) spoliation on/off, (b) ranking scheme, (c) adversarial vs default
//! tie-breaking, (d) HEFT insertion vs no-insertion. Each bench reports the
//! wall-clock cost; the resulting makespans are printed once per run so the
//! quality effect is visible alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use heteroprio_bench::bench_instance;
use heteroprio_core::{heteroprio, HeteroPrioConfig, QueueTieBreak};
use heteroprio_experiments::DagAlgo;
use heteroprio_schedulers::{heft, HeftVariant};
use heteroprio_taskgraph::{cholesky, WeightScheme};
use heteroprio_workloads::{paper_platform, ChameleonTiming};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn report_quality() {
    PRINT_ONCE.call_once(|| {
        let platform = paper_platform();
        let inst = bench_instance(2_000);
        let with = heteroprio(&inst, &platform, &HeteroPrioConfig::new());
        let without = heteroprio(&inst, &platform, &HeteroPrioConfig::without_spoliation());
        eprintln!(
            "[ablation] spoliation: makespan {:.1} ({} spoliations) vs {:.1} without",
            with.makespan(),
            with.spoliations,
            without.makespan()
        );
        let g = cholesky(16, &ChameleonTiming);
        for algo in [DagAlgo::HeteroPrioAvg, DagAlgo::HeteroPrioMin] {
            eprintln!(
                "[ablation] ranking {}: makespan {:.1}",
                algo.name(),
                algo.run(&g, &platform).makespan()
            );
        }
    });
}

fn spoliation_ablation(c: &mut Criterion) {
    report_quality();
    let platform = paper_platform();
    let inst = bench_instance(2_000);
    let mut group = c.benchmark_group("ablation_spoliation");
    group.bench_function("with", |b| {
        b.iter(|| black_box(heteroprio(&inst, &platform, &HeteroPrioConfig::new()).makespan()))
    });
    group.bench_function("without", |b| {
        b.iter(|| {
            black_box(
                heteroprio(&inst, &platform, &HeteroPrioConfig::without_spoliation()).makespan(),
            )
        })
    });
    group.finish();
}

fn tie_break_ablation(c: &mut Criterion) {
    let platform = paper_platform();
    let inst = bench_instance(2_000);
    let mut group = c.benchmark_group("ablation_tiebreak");
    for (name, tie) in
        [("priority", QueueTieBreak::Priority), ("insertion", QueueTieBreak::InsertionOrder)]
    {
        let cfg = HeteroPrioConfig { queue_tie: tie, ..HeteroPrioConfig::new() };
        group.bench_function(name, |b| {
            b.iter(|| black_box(heteroprio(&inst, &platform, &cfg).makespan()))
        });
    }
    group.finish();
}

fn ranking_ablation(c: &mut Criterion) {
    let platform = paper_platform();
    let g = cholesky(12, &ChameleonTiming);
    let mut group = c.benchmark_group("ablation_ranking");
    group.sample_size(10);
    for algo in
        [DagAlgo::HeteroPrioAvg, DagAlgo::HeteroPrioMin, DagAlgo::DualHpFifo, DagAlgo::DualHpAvg]
    {
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(algo.run(&g, &platform).makespan()))
        });
    }
    group.finish();
}

fn heft_insertion_ablation(c: &mut Criterion) {
    let platform = paper_platform();
    let g = cholesky(12, &ChameleonTiming);
    let mut group = c.benchmark_group("ablation_heft_insertion");
    for (name, variant) in
        [("insertion", HeftVariant::Insertion), ("no_insertion", HeftVariant::NoInsertion)]
    {
        group.bench_function(name, |b| {
            b.iter(|| black_box(heft(&g, &platform, WeightScheme::Avg, variant).makespan()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = spoliation_ablation, tie_break_ablation, ranking_ablation, heft_insertion_ablation
}
criterion_main!(benches);
