//! Classic independent-task mapping heuristics (MCT, MinMin, MaxMin,
//! Sufferage), included as additional baselines around the paper's
//! comparison. None of them is affinity-aware in HeteroPrio's sense; they
//! bound the price of ignoring acceleration factors from a different angle
//! than HEFT.
//!
//! All of them maintain per-worker availability times and repeatedly map one
//! task; they differ in which task is mapped next:
//!
//! * **MCT** (minimum completion time): tasks in id order, each to the
//!   worker completing it first.
//! * **MinMin**: among unmapped tasks, map the one whose best completion
//!   time is smallest.
//! * **MaxMin**: map the one whose best completion time is largest.
//! * **Sufferage**: map the task that would "suffer" most if denied its
//!   best worker (largest second-best − best gap).

use heteroprio_core::{Instance, Platform, Schedule, TaskId, TaskRun, WorkerId};

/// Which of the classic heuristics to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heuristic {
    Mct,
    MinMin,
    MaxMin,
    Sufferage,
}

impl Heuristic {
    pub const ALL: [Heuristic; 4] =
        [Heuristic::Mct, Heuristic::MinMin, Heuristic::MaxMin, Heuristic::Sufferage];

    pub fn name(self) -> &'static str {
        match self {
            Heuristic::Mct => "MCT",
            Heuristic::MinMin => "MinMin",
            Heuristic::MaxMin => "MaxMin",
            Heuristic::Sufferage => "Sufferage",
        }
    }
}

/// Best and second-best completion options for a task given worker
/// availabilities.
#[derive(Clone, Copy, Debug)]
struct Options {
    best_worker: usize,
    best_finish: f64,
    second_finish: f64,
}

fn options(instance: &Instance, platform: &Platform, avail: &[f64], task: TaskId) -> Options {
    let mut best_worker = 0;
    let mut best_finish = f64::INFINITY;
    let mut second_finish = f64::INFINITY;
    for w in platform.all_workers() {
        let ready_at = *avail.get(w.index()).expect("avail sized to platform.workers()");
        let finish = ready_at + instance.task(task).time_on(platform.kind_of(w));
        if finish < best_finish {
            second_finish = best_finish;
            best_finish = finish;
            best_worker = w.index();
        } else if finish < second_finish {
            second_finish = finish;
        }
    }
    Options { best_worker, best_finish, second_finish }
}

/// Run one of the classic heuristics on an independent-task instance.
pub fn heuristic_schedule(
    heuristic: Heuristic,
    instance: &Instance,
    platform: &Platform,
) -> Schedule {
    let mut avail = vec![0.0_f64; platform.workers()];
    let mut runs = Vec::with_capacity(instance.len());
    let place = |task: TaskId, avail: &mut [f64], runs: &mut Vec<TaskRun>| {
        let opt = options(instance, platform, avail, task);
        let w = WorkerId(opt.best_worker as u32);
        let slot = avail.get_mut(opt.best_worker).expect("best_worker from platform range");
        let start = *slot;
        *slot = opt.best_finish;
        runs.push(TaskRun { task, worker: w, start, end: opt.best_finish });
    };

    match heuristic {
        Heuristic::Mct => {
            for task in instance.ids() {
                place(task, &mut avail, &mut runs);
            }
        }
        Heuristic::MinMin | Heuristic::MaxMin | Heuristic::Sufferage => {
            let mut unmapped: Vec<TaskId> = instance.ids().collect();
            while !unmapped.is_empty() {
                let pick = match heuristic {
                    Heuristic::MinMin => unmapped
                        .iter()
                        .enumerate()
                        .min_by(|&(_, &a), &(_, &b)| {
                            let fa = options(instance, platform, &avail, a).best_finish;
                            let fb = options(instance, platform, &avail, b).best_finish;
                            fa.total_cmp(&fb).then(a.cmp(&b))
                        })
                        .map(|(i, _)| i)
                        .expect("unmapped is non-empty inside the while loop"),
                    Heuristic::MaxMin => unmapped
                        .iter()
                        .enumerate()
                        .max_by(|&(_, &a), &(_, &b)| {
                            let fa = options(instance, platform, &avail, a).best_finish;
                            let fb = options(instance, platform, &avail, b).best_finish;
                            fa.total_cmp(&fb).then(b.cmp(&a))
                        })
                        .map(|(i, _)| i)
                        .expect("unmapped is non-empty inside the while loop"),
                    Heuristic::Sufferage => unmapped
                        .iter()
                        .enumerate()
                        .max_by(|&(_, &a), &(_, &b)| {
                            let oa = options(instance, platform, &avail, a);
                            let ob = options(instance, platform, &avail, b);
                            let sa = oa.second_finish - oa.best_finish;
                            let sb = ob.second_finish - ob.best_finish;
                            sa.total_cmp(&sb).then(b.cmp(&a))
                        })
                        .map(|(i, _)| i)
                        .expect("unmapped is non-empty inside the while loop"),
                    Heuristic::Mct => unreachable!(),
                };
                let task = unmapped.swap_remove(pick);
                place(task, &mut avail, &mut runs);
            }
        }
    }
    Schedule { runs, aborted: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_bounds::{combined_lower_bound, optimal_makespan};
    use heteroprio_core::time::approx_eq;

    fn check_all(instance: &Instance, platform: &Platform) -> Vec<(Heuristic, f64)> {
        Heuristic::ALL
            .iter()
            .map(|&h| {
                let sched = heuristic_schedule(h, instance, platform);
                sched.validate(instance, platform).unwrap_or_else(|e| panic!("{}: {e}", h.name()));
                assert!(
                    sched.makespan() >= combined_lower_bound(instance, platform) - 1e-9,
                    "{} beat the lower bound",
                    h.name()
                );
                (h, sched.makespan())
            })
            .collect()
    }

    #[test]
    fn all_heuristics_are_valid_on_mixed_instances() {
        let inst = Instance::from_times(&[
            (8.0, 1.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (1.0, 4.0),
            (3.0, 3.0),
            (6.0, 1.5),
        ]);
        for plat in [Platform::new(1, 1), Platform::new(2, 1), Platform::new(2, 2)] {
            check_all(&inst, &plat);
        }
    }

    #[test]
    fn single_task_goes_to_its_fast_worker() {
        let inst = Instance::from_times(&[(10.0, 2.0)]);
        let plat = Platform::new(2, 1);
        for h in Heuristic::ALL {
            let sched = heuristic_schedule(h, &inst, &plat);
            assert!(approx_eq(sched.makespan(), 2.0), "{}", h.name());
        }
    }

    #[test]
    fn minmin_matches_hand_run() {
        // Two tasks on one CPU, one GPU: A (4, 3), B (1, 2).
        // MinMin: B best finish = 1 (CPU) vs A best = 3 (GPU) → map B to CPU.
        // Then A: CPU finish 1+4=5, GPU 3 → A to GPU. Makespan 3.
        let inst = Instance::from_times(&[(4.0, 3.0), (1.0, 2.0)]);
        let plat = Platform::new(1, 1);
        let sched = heuristic_schedule(Heuristic::MinMin, &inst, &plat);
        assert!(approx_eq(sched.makespan(), 3.0), "{}", sched.makespan());
    }

    #[test]
    fn maxmin_maps_big_rocks_first() {
        // MaxMin maps the task with the largest best-finish first.
        let inst = Instance::from_times(&[(9.0, 9.0), (1.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let sched = heuristic_schedule(Heuristic::MaxMin, &inst, &plat);
        // Big task first (either worker), small task to the other: 9.
        assert!(approx_eq(sched.makespan(), 9.0));
        let big = sched.run_of(TaskId(0)).unwrap();
        assert_eq!(big.start, 0.0);
    }

    #[test]
    fn sufferage_prioritizes_contended_tasks() {
        // A prefers GPU strongly (sufferage 9), B mildly (sufferage 1):
        // A must win the GPU.
        let inst = Instance::from_times(&[(10.0, 1.0), (3.0, 2.0)]);
        let plat = Platform::new(1, 1);
        let sched = heuristic_schedule(Heuristic::Sufferage, &inst, &plat);
        let a = sched.run_of(TaskId(0)).unwrap();
        assert_eq!(plat.kind_of(a.worker), heteroprio_core::ResourceKind::Gpu);
        assert!(approx_eq(sched.makespan(), 3.0), "{}", sched.makespan());
    }

    #[test]
    fn heuristics_are_within_reason_of_optimal_on_micro_instances() {
        // Not approximation guarantees — just a sanity envelope on tiny
        // instances (they can all be multiple times worse in theory).
        let inst = Instance::from_times(&[(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (4.0, 1.5)]);
        let plat = Platform::new(2, 1);
        let opt = optimal_makespan(&inst, &plat).makespan;
        for (h, ms) in check_all(&inst, &plat) {
            assert!(ms <= 3.0 * opt + 1e-9, "{}: {ms} vs opt {opt}", h.name());
        }
    }

    #[test]
    fn mct_depends_on_input_order_but_others_less_so() {
        // MCT is order-sensitive by construction; verify it runs on a
        // reversed instance and still validates.
        let forward = Instance::from_times(&[(5.0, 1.0), (1.0, 5.0), (3.0, 3.0)]);
        let plat = Platform::new(1, 1);
        let sched = heuristic_schedule(Heuristic::Mct, &forward, &plat);
        sched.validate(&forward, &plat).unwrap();
    }
}
