//! Simple baseline policies.
//!
//! * [`PriorityListPolicy`] — a plain list scheduler: any idle worker takes
//!   the highest-priority ready task, ignoring affinity. This is the §3
//!   cautionary baseline: without spoliation, list scheduling on unrelated
//!   resources has no approximation guarantee.
//! * [`RandomPolicy`] — uniformly random ready task; a chaos monkey for the
//!   engine and a floor for the experiments.

use heteroprio_core::time::F64Ord;
use heteroprio_core::{TaskId, WorkerId, WorkerOrder};
use heteroprio_simulator::{OnlinePolicy, SimContext, SnapshotOnlinePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Plain list scheduler: highest priority first, no affinity, no spoliation.
#[derive(Debug, Default)]
pub struct PriorityListPolicy {
    // Max-priority first: keyed by (-priority, id).
    queue: BTreeSet<(F64Ord, TaskId)>,
}

impl PriorityListPolicy {
    pub fn new() -> Self {
        PriorityListPolicy::default()
    }
}

impl OnlinePolicy for PriorityListPolicy {
    fn on_ready(&mut self, tasks: &[TaskId], ctx: &SimContext<'_>) {
        for &t in tasks {
            let pri = ctx.graph.instance().task(t).priority;
            self.queue.insert((F64Ord::new(-pri), t));
        }
    }

    fn pick_task(&mut self, _worker: WorkerId, _ctx: &SimContext<'_>) -> Option<TaskId> {
        self.queue.pop_first().map(|(_, t)| t)
    }

    fn worker_order(&self) -> WorkerOrder {
        WorkerOrder::ById
    }
}

impl SnapshotOnlinePolicy for PriorityListPolicy {
    // The set order is canonical (priority, id), independent of insertion
    // order, so the default re-announcing `restore` is trivially exact.
    fn ready_order(&self) -> Vec<TaskId> {
        self.queue.iter().map(|&(_, t)| t).collect()
    }
}

/// Uniformly random ready task to any idle worker. Deterministic per seed.
#[derive(Debug)]
pub struct RandomPolicy {
    ready: Vec<TaskId>,
    rng: StdRng,
}

impl RandomPolicy {
    pub fn new(seed: u64) -> Self {
        RandomPolicy { ready: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }
}

impl OnlinePolicy for RandomPolicy {
    fn on_ready(&mut self, tasks: &[TaskId], _ctx: &SimContext<'_>) {
        self.ready.extend_from_slice(tasks);
    }

    fn pick_task(&mut self, _worker: WorkerId, _ctx: &SimContext<'_>) -> Option<TaskId> {
        if self.ready.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..self.ready.len());
        Some(self.ready.swap_remove(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::{Instance, Platform};
    use heteroprio_simulator::simulate;
    use heteroprio_taskgraph::{check_precedence, cholesky, ConstTiming, TaskGraph};

    #[test]
    fn priority_list_serves_high_priority_first() {
        use heteroprio_core::Task;
        let mut inst = Instance::new();
        inst.push(Task::new(1.0, 1.0).with_priority(1.0));
        inst.push(Task::new(1.0, 1.0).with_priority(9.0));
        inst.push(Task::new(1.0, 1.0).with_priority(5.0));
        let g = TaskGraph::independent(inst);
        let plat = Platform::new(1, 1);
        let mut policy = PriorityListPolicy::new();
        let res = simulate(&g, &plat, &mut policy);
        res.schedule.validate(g.instance(), &plat).unwrap();
        // Highest priority (task 1) starts at t=0.
        let r = res.schedule.run_of(TaskId(1)).unwrap();
        assert_eq!(r.start, 0.0);
    }

    #[test]
    fn priority_list_never_idles_with_ready_work() {
        let g = cholesky(4, &ConstTiming { cpu: 1.0, gpu: 1.0 });
        let plat = Platform::new(2, 1);
        let mut policy = PriorityListPolicy::new();
        let res = simulate(&g, &plat, &mut policy);
        res.schedule.validate(g.instance(), &plat).unwrap();
        check_precedence(&g, &res.schedule).unwrap();
    }

    #[test]
    fn random_policy_is_reproducible() {
        let g = cholesky(4, &ConstTiming { cpu: 2.0, gpu: 1.0 });
        let plat = Platform::new(2, 2);
        let ms1 = simulate(&g, &plat, &mut RandomPolicy::new(7)).makespan();
        let ms2 = simulate(&g, &plat, &mut RandomPolicy::new(7)).makespan();
        assert!(approx_eq(ms1, ms2));
    }

    #[test]
    fn random_policy_completes_everything() {
        let g = cholesky(5, &ConstTiming { cpu: 2.0, gpu: 1.0 });
        let plat = Platform::new(2, 2);
        let res = simulate(&g, &plat, &mut RandomPolicy::new(3));
        res.schedule.validate(g.instance(), &plat).unwrap();
        check_precedence(&g, &res.schedule).unwrap();
        assert_eq!(res.schedule.runs.len(), g.len());
    }
}
