#![forbid(unsafe_code)]

//! # heteroprio-schedulers
//!
//! The scheduling algorithms compared in the paper's §6 evaluation, for both
//! independent task sets and DAGs executed on the runtime-engine simulator:
//!
//! * **HeteroPrio** in DAG mode ([`HeteroPrioDagPolicy`]) — the independent
//!   task variant lives in `heteroprio-core`;
//! * **DualHP** (Bleuse et al. \[15\]): the dual-approximation packing for
//!   independent tasks ([`dualhp_independent`]) and its online DAG variant
//!   ([`DualHpDagPolicy`]) with `fifo` or priority ranks;
//! * **HEFT** (Topcuoglu et al. \[11\]) with `avg`/`min` weight schemes and
//!   insertion / no-insertion variants ([`heft()`](heft::heft));
//! * baselines: plain priority list scheduling and a random scheduler.

pub mod baselines;
pub mod dualhp;
pub mod heft;
pub mod heteroprio_dag;
pub mod heuristics;

pub use baselines::{PriorityListPolicy, RandomPolicy};
pub use dualhp::{dualhp_independent, faster_class_schedule, DualHpDagPolicy, DualHpRank};
pub use heft::{heft, HeftVariant};
pub use heteroprio_dag::HeteroPrioDagPolicy;
pub use heuristics::{heuristic_schedule, Heuristic};
