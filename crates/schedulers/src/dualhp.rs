//! DualHP — the dual-approximation scheduler of Bleuse et al. \[15\], as
//! described in the paper's §6.
//!
//! For a guess λ on the optimal makespan: any task longer than λ on one
//! resource class is forced onto the other; the remaining (flexible) tasks
//! are packed onto the GPUs by decreasing acceleration factor while the GPU
//! makespan stays within 2λ; the rest go to the CPUs, and the guess is
//! feasible iff the CPU makespan also stays within 2λ. The smallest feasible
//! λ found by binary search yields a 2-approximation for independent tasks.
//!
//! The DAG-mode variant re-runs this packing on the current ready set every
//! time the ready set changes, accounting for the load of currently
//! executing tasks (§6.2), and orders each class queue by rank (`fifo`, or
//! the bottom-level priorities already attached to the tasks).
//!
//! Performance note: the ready set is sorted once per repartition; each λ
//! probe of the binary search is then a single O(R) pass, which keeps the
//! per-ready-event cost low enough for the N=64 task graphs of Figure 7
//! (tens of thousands of ready events).

use heteroprio_core::list::list_schedule;
use heteroprio_core::{
    ClassId, Instance, Platform, ResourceKind, Schedule, TaskId, TaskRun, WorkerId, WorkerOrder,
};
use heteroprio_simulator::{OnlinePolicy, SimContext, SnapshotOnlinePolicy};

/// Placement of every packed task: (task, worker, start, end).
type Placements = Vec<(TaskId, WorkerId, f64, f64)>;

/// Ready tasks pre-sorted for the λ probes.
struct SortedReady {
    tasks: Vec<TaskId>,
    /// Local indices sorted by acceleration factor descending.
    by_rho_desc: Vec<usize>,
    /// Local indices sorted by CPU time descending.
    by_p_desc: Vec<usize>,
}

/// Acceleration of a task relative to the spill class (class 0): its class-0
/// time over its best time on any other class. Equal to
/// [`Task::accel_factor`](heteroprio_core::Task::accel_factor) when `k = 2`.
fn accel_over_spill(instance: &Instance, t: TaskId) -> f64 {
    let task = instance.task(t);
    let best_other =
        (1..task.k()).map(|c| task.time_on(ClassId(c as u16))).fold(f64::INFINITY, f64::min);
    task.time_on(ClassId(0)) / best_other
}

impl SortedReady {
    fn new(instance: &Instance, tasks: Vec<TaskId>) -> Self {
        let mut by_rho_desc: Vec<usize> = (0..tasks.len()).collect();
        by_rho_desc.sort_by(|&a, &b| {
            let ra = accel_over_spill(instance, tasks[a]);
            let rb = accel_over_spill(instance, tasks[b]);
            rb.total_cmp(&ra).then(tasks[a].cmp(&tasks[b]))
        });
        let mut by_p_desc: Vec<usize> = (0..tasks.len()).collect();
        by_p_desc.sort_by(|&a, &b| {
            let pa = instance.task(tasks[a]).cpu_time();
            let pb = instance.task(tasks[b]).cpu_time();
            pb.total_cmp(&pa).then(tasks[a].cmp(&tasks[b]))
        });
        SortedReady { tasks, by_rho_desc, by_p_desc }
    }
}

/// One λ probe: greedy pack within makespan 2λ. O(R · workers-per-class).
///
/// Only `alive` workers receive placements — after an injected worker
/// failure a whole class may be gone, in which case every task is forced
/// onto the surviving class (and λ grows until that is feasible).
fn try_pack(
    instance: &Instance,
    platform: &Platform,
    sorted: &SortedReady,
    lambda: f64,
    avail: &[f64],
    alive: &[bool],
    placements: &mut Placements,
) -> bool {
    placements.clear();
    let limit = 2.0 * lambda + 1e-12;
    let r = sorted.tasks.len();
    // side[i]: 0 = GPU, 1 = CPU, for local index i.
    let mut side = vec![0u8; r];

    let gpu_workers: Vec<WorkerId> =
        platform.workers_of(ResourceKind::Gpu).filter(|w| alive[w.index()]).collect();
    let cpu_workers: Vec<WorkerId> =
        platform.workers_of(ResourceKind::Cpu).filter(|w| alive[w.index()]).collect();
    let mut gpu_loads: Vec<f64> = gpu_workers.iter().map(|w| avail[w.index()]).collect();
    let mut spilling = false;
    for &i in &sorted.by_rho_desc {
        let task = instance.task(sorted.tasks[i]);
        let cpu_over = task.cpu_time() > lambda || cpu_workers.is_empty();
        let gpu_over = task.gpu_time() > lambda || gpu_workers.is_empty();
        match (cpu_over, gpu_over) {
            (true, true) => return false, // λ below the trivial bound
            (false, true) => {
                side[i] = 1; // forced CPU
                continue;
            }
            (true, false) => {
                // Forced GPU: must fit within 2λ.
                let m = min_index(&gpu_loads);
                if gpu_loads[m] + task.gpu_time() > limit {
                    return false;
                }
                let start = gpu_loads[m];
                gpu_loads[m] = start + task.gpu_time();
                placements.push((sorted.tasks[i], gpu_workers[m], start, gpu_loads[m]));
            }
            (false, false) => {
                // Flexible: GPU by decreasing ρ while it fits, then spill.
                if spilling {
                    side[i] = 1;
                    continue;
                }
                let m = min_index(&gpu_loads);
                if gpu_loads[m] + task.gpu_time() <= limit {
                    let start = gpu_loads[m];
                    gpu_loads[m] = start + task.gpu_time();
                    placements.push((sorted.tasks[i], gpu_workers[m], start, gpu_loads[m]));
                } else {
                    spilling = true;
                    side[i] = 1;
                }
            }
        }
    }

    // CPU pass: forced + spilled tasks, longest-first list schedule.
    let mut cpu_loads: Vec<f64> = cpu_workers.iter().map(|w| avail[w.index()]).collect();
    for &i in &sorted.by_p_desc {
        if side[i] == 0 {
            continue;
        }
        let task = instance.task(sorted.tasks[i]);
        let m = min_index(&cpu_loads);
        let start = cpu_loads[m];
        let end = start + task.cpu_time();
        if end > limit {
            return false;
        }
        cpu_loads[m] = end;
        placements.push((sorted.tasks[i], cpu_workers[m], start, end));
    }
    true
}

/// One λ probe on a `k ≥ 3` platform: the two-class packing generalized to
/// k resource classes with class 0 as the spill class.
///
/// A task may only run on classes where its time is ≤ λ (and that still have
/// alive workers). Tasks are scanned by decreasing acceleration over the
/// spill class; each is offered to its allowed non-spill classes fastest
/// first. A class that refuses a task latches full (monotone, like the
/// two-class `spilling` flag) and stops taking flexible tasks; a task whose
/// spill class is disallowed retries latched classes before failing. Spilled
/// tasks go to class 0 longest-first within 2λ. At `k = 2` this decision
/// procedure coincides with [`try_pack`] (the per-class latch *is* the
/// spill flag); the legacy path is kept verbatim and pinned by an equality
/// test because its output is frozen by the parity suites.
fn try_pack_general(
    instance: &Instance,
    platform: &Platform,
    sorted: &SortedReady,
    lambda: f64,
    avail: &[f64],
    alive: &[bool],
    placements: &mut Placements,
) -> bool {
    placements.clear();
    let limit = 2.0 * lambda + 1e-12;
    let k = platform.k();
    let r = sorted.tasks.len();
    let mut spill = vec![false; r];

    let workers: Vec<Vec<WorkerId>> = (0..k)
        .map(|c| platform.workers_of(ClassId(c as u16)).filter(|w| alive[w.index()]).collect())
        .collect();
    let mut loads: Vec<Vec<f64>> =
        workers.iter().map(|ws| ws.iter().map(|w| avail[w.index()]).collect()).collect();
    let mut latched = vec![false; k];

    let mut prefs: Vec<usize> = Vec::with_capacity(k - 1);
    for &i in &sorted.by_rho_desc {
        let task = instance.task(sorted.tasks[i]);
        let over = |c: usize| task.time_on(ClassId(c as u16)) > lambda || workers[c].is_empty();
        let spill_ok = !over(0);
        // Allowed non-spill classes, fastest first (ties to the lower id).
        prefs.clear();
        prefs.extend((1..k).filter(|&c| !over(c)));
        prefs.sort_by(|&a, &b| {
            task.time_on(ClassId(a as u16))
                .total_cmp(&task.time_on(ClassId(b as u16)))
                .then(a.cmp(&b))
        });
        if prefs.is_empty() && !spill_ok {
            return false; // λ below the trivial bound
        }
        let mut place = |c: usize, loads: &mut Vec<Vec<f64>>| -> bool {
            let m = min_index(&loads[c]);
            let t = task.time_on(ClassId(c as u16));
            if loads[c][m] + t > limit {
                return false;
            }
            let start = loads[c][m];
            loads[c][m] = start + t;
            placements.push((sorted.tasks[i], workers[c][m], start, loads[c][m]));
            true
        };
        let mut placed = false;
        for &c in prefs.iter() {
            if latched[c] {
                continue;
            }
            if place(c, &mut loads) {
                placed = true;
                break;
            }
            latched[c] = true;
        }
        if placed {
            continue;
        }
        if spill_ok {
            spill[i] = true;
            continue;
        }
        // No spill class: a latched class may still fit this (shorter) task.
        if !prefs.iter().filter(|&&c| latched[c]).any(|&c| place(c, &mut loads)) {
            return false;
        }
    }

    // Spill pass: class 0, longest-first list schedule within 2λ.
    let mut spill_loads: Vec<f64> = loads.first().cloned().unwrap_or_default();
    for &i in &sorted.by_p_desc {
        if !spill[i] {
            continue;
        }
        let task = instance.task(sorted.tasks[i]);
        let m = min_index(&spill_loads);
        let start = spill_loads[m];
        let end = start + task.time_on(ClassId(0));
        if end > limit {
            return false;
        }
        spill_loads[m] = end;
        placements.push((sorted.tasks[i], workers[0][m], start, end));
    }
    true
}

#[inline]
fn min_index(loads: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..loads.len() {
        if loads[i] < loads[best] {
            best = i;
        }
    }
    best
}

/// Binary-search the smallest feasible λ; returns the placements of the
/// smallest feasible packing found.
fn search(
    instance: &Instance,
    platform: &Platform,
    tasks: Vec<TaskId>,
    avail: &[f64],
    alive: &[bool],
) -> Placements {
    if tasks.is_empty() || !alive.iter().any(|&a| a) {
        return Vec::new();
    }
    // Two-class platforms keep the frozen legacy probe; its behaviour is
    // pinned event-for-event by the parity and audit suites.
    let probe = if platform.k() == 2 { try_pack } else { try_pack_general };
    let sorted = SortedReady::new(instance, tasks);
    // Grow an upper bound until feasible.
    let mut hi = sorted
        .tasks
        .iter()
        .map(|&t| instance.task(t).min_time())
        .fold(0.0, f64::max)
        .max(avail.iter().copied().fold(0.0, f64::max))
        .max(1e-9);
    let mut best = Vec::new();
    let mut scratch = Vec::new();
    loop {
        if probe(instance, platform, &sorted, hi, avail, alive, &mut scratch) {
            std::mem::swap(&mut best, &mut scratch);
            break;
        }
        hi *= 2.0;
        assert!(hi.is_finite(), "DualHP upper-bound search diverged");
    }
    let mut lo = 0.0;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        // lint: allow(float-ord): deliberate bisection convergence threshold, not a time comparison.
        if mid <= lo || mid >= hi || (hi - lo) < 1e-9 * hi {
            break;
        }
        if probe(instance, platform, &sorted, mid, avail, alive, &mut scratch) {
            hi = mid;
            std::mem::swap(&mut best, &mut scratch);
        } else {
            lo = mid;
        }
    }
    best
}

/// DualHP for a set of independent tasks: returns the packed schedule.
pub fn dualhp_independent(instance: &Instance, platform: &Platform) -> Schedule {
    let tasks: Vec<TaskId> = instance.ids().collect();
    let avail = vec![0.0; platform.workers()];
    let alive = vec![true; platform.workers()];
    let placements = search(instance, platform, tasks, &avail, &alive);
    Schedule {
        runs: placements
            .into_iter()
            .map(|(task, worker, start, end)| TaskRun { task, worker, start, end })
            .collect(),
        aborted: Vec::new(),
    }
}

/// Ranking scheme for the DAG-mode class queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DualHpRank {
    /// Process tasks in the order they became ready.
    #[default]
    Fifo,
    /// Highest (bottom-level) priority first, as attached to the tasks.
    Priority,
}

/// DualHP as an online policy: re-partition the ready set whenever it has
/// changed, then serve each class queue in rank order. Never spoliates.
pub struct DualHpDagPolicy {
    rank: DualHpRank,
    /// Ready, not-yet-started tasks with their arrival sequence number.
    pending: Vec<(TaskId, u64)>,
    /// One serve queue per resource class, indexed by class id (sized
    /// lazily at the first repartition).
    queues: Vec<Vec<TaskId>>,
    seq: u64,
    /// Ready set changed since the last repartition.
    dirty: bool,
    /// Worker liveness at the last repartition; a change (failure or
    /// recovery) also forces a repartition, or tasks packed onto a
    /// now-dead class would never be served.
    alive_seen: Vec<bool>,
}

impl DualHpDagPolicy {
    pub fn new(rank: DualHpRank) -> Self {
        DualHpDagPolicy {
            rank,
            pending: Vec::new(),
            queues: Vec::new(),
            seq: 0,
            dirty: false,
            alive_seen: Vec::new(),
        }
    }

    fn repartition(&mut self, ctx: &SimContext<'_>) {
        // Worker availability = remaining time of the currently running task.
        // Dead workers receive no placements, so a class wiped out by a
        // fault plan spills its whole share onto the survivors.
        let avail: Vec<f64> = (0..ctx.platform.workers())
            .map(|w| ctx.running[w].map_or(0.0, |r| (r.end - ctx.now).max(0.0)))
            .collect();
        let tasks: Vec<TaskId> = self.pending.iter().map(|&(t, _)| t).collect();
        let placements = search(ctx.graph.instance(), ctx.platform, tasks, &avail, ctx.alive);
        self.queues.resize(ctx.platform.k(), Vec::new());
        for q in &mut self.queues {
            q.clear();
        }
        for (task, worker, _, _) in placements {
            self.queues[ctx.platform.class_of(worker).index()].push(task);
        }
        // Serve order within each class. Queues pop from the back, so sort
        // ascending in urgency.
        let instance = ctx.graph.instance();
        let pending = &self.pending;
        let seq_of =
            |t: TaskId| pending.iter().find(|&&(x, _)| x == t).map(|&(_, s)| s).unwrap_or(u64::MAX);
        for queue in &mut self.queues {
            match self.rank {
                DualHpRank::Fifo => {
                    queue.sort_by_key(|&t| std::cmp::Reverse(seq_of(t)));
                }
                DualHpRank::Priority => {
                    queue.sort_by(|&a, &b| {
                        instance
                            .task(a)
                            .priority
                            .total_cmp(&instance.task(b).priority)
                            .then(b.cmp(&a))
                    });
                }
            }
        }
    }
}

impl OnlinePolicy for DualHpDagPolicy {
    fn on_ready(&mut self, tasks: &[TaskId], _ctx: &SimContext<'_>) {
        for &t in tasks {
            self.pending.push((t, self.seq));
            self.seq = self.seq.checked_add(1).expect("u64 push sequence never saturates");
        }
        self.dirty = true;
    }

    fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId> {
        if self.dirty || self.alive_seen != ctx.alive {
            self.alive_seen = ctx.alive.to_vec();
            self.repartition(ctx);
            self.dirty = false;
        }
        let queue = self.queues.get_mut(ctx.platform.class_of(worker).index())?;
        let task = queue.pop()?;
        self.pending.retain(|&(t, _)| t != task);
        Some(task)
    }

    fn worker_order(&self) -> WorkerOrder {
        WorkerOrder::GpusFirst
    }
}

impl SnapshotOnlinePolicy for DualHpDagPolicy {
    // `pending` holds the full ready set in announcement order (sequence
    // numbers ascend with pushes and survive `retain`). The default
    // `restore` re-announces that list, assigning fresh ascending sequence
    // numbers and marking the partition dirty, so the next pick re-runs the
    // λ search on exactly the state the original run would have had.
    fn ready_order(&self) -> Vec<TaskId> {
        self.pending.iter().map(|&(t, _)| t).collect()
    }
}

/// Upper-bound schedule used in tests: every task on its fastest class
/// (ties prefer the higher class id, matching the two-class GPU-on-tie
/// convention), longest-first list schedule per class.
pub fn faster_class_schedule(instance: &Instance, platform: &Platform) -> Schedule {
    let k = platform.k();
    let mut per_class: Vec<Vec<TaskId>> = vec![Vec::new(); k];
    for id in instance.ids() {
        let t = instance.task(id);
        let mut best = ClassId(0);
        for c in 1..k {
            let c = ClassId(c as u16);
            if t.time_on(c) <= t.time_on(best) {
                best = c;
            }
        }
        per_class[best.index()].push(id);
    }
    let mut runs = Vec::with_capacity(instance.len());
    for (c, ids) in per_class.into_iter().enumerate() {
        let class = ClassId(c as u16);
        let mut sorted = ids;
        sorted.sort_by(|&a, &b| {
            instance.task(b).time_on(class).total_cmp(&instance.task(a).time_on(class))
        });
        let durations: Vec<f64> = sorted.iter().map(|&t| instance.task(t).time_on(class)).collect();
        let ls = list_schedule(&durations, platform.count(class));
        let workers: Vec<WorkerId> = platform.workers_of(class).collect();
        for (i, &t) in sorted.iter().enumerate() {
            runs.push(TaskRun {
                task: t,
                worker: workers[ls.assignment[i]],
                start: ls.starts[i],
                end: ls.starts[i] + durations[i],
            });
        }
    }
    Schedule { runs, aborted: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_bounds::{combined_lower_bound, optimal_makespan};
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::Task;
    use heteroprio_simulator::simulate;
    use heteroprio_taskgraph::{check_precedence, cholesky, ConstTiming, DagBuilder, TaskGraph};

    #[test]
    fn independent_simple_split() {
        // One GPU-friendly, one CPU-friendly task: both classes get theirs.
        let inst = Instance::from_times(&[(10.0, 1.0), (1.0, 10.0)]);
        let plat = Platform::new(1, 1);
        let sched = dualhp_independent(&inst, &plat);
        sched.validate(&inst, &plat).unwrap();
        assert!(approx_eq(sched.makespan(), 1.0), "{}", sched.makespan());
    }

    #[test]
    fn independent_within_twice_optimal() {
        // Random-ish small instances: certified 2-approximation.
        let seeds: Vec<Vec<(f64, f64)>> = vec![
            vec![(3.0, 1.0), (2.0, 5.0), (4.0, 4.0), (1.0, 2.0), (6.0, 1.0)],
            vec![(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (1.0, 3.0)],
            vec![(7.0, 2.0), (2.0, 7.0), (5.0, 5.0), (1.0, 1.0), (3.0, 6.0), (6.0, 3.0)],
        ];
        for times in seeds {
            let inst = Instance::from_times(&times);
            for plat in [Platform::new(1, 1), Platform::new(2, 1), Platform::new(2, 2)] {
                let sched = dualhp_independent(&inst, &plat);
                sched.validate(&inst, &plat).unwrap();
                let opt = optimal_makespan(&inst, &plat).makespan;
                assert!(sched.makespan() <= 2.0 * opt + 1e-9, "{} > 2 × {opt}", sched.makespan());
            }
        }
    }

    #[test]
    fn independent_forced_assignment_respected() {
        // A task with enormous CPU time must land on a GPU and vice versa.
        let inst = Instance::from_times(&[(1000.0, 1.0), (1.0, 1000.0), (2.0, 2.0)]);
        let plat = Platform::new(1, 1);
        let sched = dualhp_independent(&inst, &plat);
        sched.validate(&inst, &plat).unwrap();
        let r0 = sched.run_of(TaskId(0)).unwrap();
        assert_eq!(plat.kind_of(r0.worker), ResourceKind::Gpu);
        let r1 = sched.run_of(TaskId(1)).unwrap();
        assert_eq!(plat.kind_of(r1.worker), ResourceKind::Cpu);
    }

    #[test]
    fn dag_mode_completes_and_respects_deps() {
        let g = cholesky(5, &ConstTiming { cpu: 3.0, gpu: 1.0 });
        let plat = Platform::new(3, 2);
        for rank in [DualHpRank::Fifo, DualHpRank::Priority] {
            let mut policy = DualHpDagPolicy::new(rank);
            let res = simulate(&g, &plat, &mut policy);
            res.schedule.validate(g.instance(), &plat).unwrap();
            check_precedence(&g, &res.schedule).unwrap();
            assert_eq!(res.spoliations, 0);
        }
    }

    #[test]
    fn dag_mode_on_independent_tasks_close_to_area_bound() {
        let times: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let p = 1.0 + (i % 7) as f64;
                (p, p / (1.0 + (i % 5) as f64))
            })
            .collect();
        let inst = Instance::from_times(&times);
        let plat = Platform::new(4, 2);
        let g = TaskGraph::independent(inst.clone());
        let mut policy = DualHpDagPolicy::new(DualHpRank::Fifo);
        let res = simulate(&g, &plat, &mut policy);
        res.schedule.validate(&inst, &plat).unwrap();
        // The 2-approximation is proved against OPT, not the area bound, and
        // the online DAG variant repartitions greedily — allow some slack.
        let lb = combined_lower_bound(&inst, &plat);
        assert!(res.makespan() <= 3.0 * lb + 1e-6, "{} vs lb {lb}", res.makespan());
    }

    #[test]
    fn faster_class_schedule_is_valid() {
        let inst = Instance::from_times(&[(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        let plat = Platform::new(2, 1);
        let sched = faster_class_schedule(&inst, &plat);
        sched.validate(&inst, &plat).unwrap();
    }

    #[test]
    fn general_probe_matches_legacy_on_two_classes() {
        // The k-class packer must reproduce the frozen two-class probe
        // decision-for-decision: same feasibility verdict and the same
        // placements at every λ it is asked about.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 97 + 1) as f64 / 10.0
        };
        for case in 0..60 {
            let n = 3 + case % 8;
            let times: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
            let inst = Instance::from_times(&times);
            let plat = match case % 3 {
                0 => Platform::new(1, 1),
                1 => Platform::new(3, 2),
                _ => Platform::new(2, 4),
            };
            let sorted = SortedReady::new(&inst, inst.ids().collect());
            let avail = vec![0.0; plat.workers()];
            let alive = vec![true; plat.workers()];
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for step in 1..=20 {
                let lambda = 0.5 * step as f64;
                let fa = try_pack(&inst, &plat, &sorted, lambda, &avail, &alive, &mut a);
                let fb = try_pack_general(&inst, &plat, &sorted, lambda, &avail, &alive, &mut b);
                assert_eq!(fa, fb, "feasibility diverged: case {case} λ={lambda}");
                if fa {
                    assert_eq!(a, b, "placements diverged: case {case} λ={lambda}");
                }
            }
        }
    }

    #[test]
    fn independent_three_classes_packs_validly() {
        // cpu=2, gpu=2, fpga=1: forced and flexible tasks across 3 classes.
        let inst = Instance::from_class_times(&[
            &[10.0, 1.0, 5.0],  // GPU-forced at small λ
            &[1.0, 10.0, 10.0], // CPU-friendly
            &[6.0, 3.0, 1.0],   // FPGA-friendly
            &[4.0, 4.0, 4.0],   // indifferent
            &[9.0, 2.0, 2.0],   // accelerated on either device class
        ]);
        let plat = Platform::from_counts(&[2, 2, 1]);
        let sched = dualhp_independent(&inst, &plat);
        sched.validate(&inst, &plat).unwrap();
        assert_eq!(sched.runs.len(), inst.len());
        // The λ search must beat the trivial every-task-on-class-0 pile.
        let serial: f64 = inst.ids().map(|t| inst.task(t).time_on(ClassId(0))).sum();
        assert!(sched.makespan() < serial, "{} vs serial {serial}", sched.makespan());
    }

    #[test]
    fn dag_mode_three_classes_completes() {
        // Re-time a Cholesky graph onto three classes (an FPGA twice as
        // slow as the GPU), preserving its structure.
        let g = cholesky(4, &ConstTiming { cpu: 3.0, gpu: 1.0 });
        let mut b = DagBuilder::new();
        for t in g.instance().ids() {
            let task = g.instance().task(t);
            b.add_task(
                Task::from_times(&[task.cpu_time(), task.gpu_time(), 2.0 * task.gpu_time()]),
                g.label(t),
            );
        }
        for t in g.instance().ids() {
            for &s in g.successors(t) {
                b.add_edge(t, s);
            }
        }
        let g3 = b.build().unwrap();
        let plat = Platform::from_counts(&[2, 1, 1]);
        let mut policy = DualHpDagPolicy::new(DualHpRank::Fifo);
        let res = simulate(&g3, &plat, &mut policy);
        res.schedule.validate(g3.instance(), &plat).unwrap();
        check_precedence(&g3, &res.schedule).unwrap();
    }

    #[test]
    fn packing_prefers_high_accel_tasks_on_gpu() {
        // With a tight GPU budget, the most accelerated flexible tasks must
        // be the ones packed on the GPU.
        let inst = Instance::from_times(&[
            (20.0, 1.0), // ρ=20
            (10.0, 1.0), // ρ=10
            (2.0, 1.0),  // ρ=2
            (2.0, 1.0),  // ρ=2
        ]);
        let plat = Platform::new(4, 1);
        let sched = dualhp_independent(&inst, &plat);
        sched.validate(&inst, &plat).unwrap();
        let gpu_tasks = sched.tasks_on(&plat, ResourceKind::Gpu);
        assert!(gpu_tasks.contains(&TaskId(0)), "{gpu_tasks:?}");
    }
}
