//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. \[11\]).
//!
//! The classic static list scheduler: tasks are ranked by upward rank
//! (bottom level) under a weight scheme (`avg` or `min`, §6.2), then placed
//! one by one on the worker minimizing their Earliest Finish Time. The
//! insertion-based variant may slot a task into an idle gap between already
//! scheduled tasks; the non-insertion variant only appends after a worker's
//! last task (faster, and what dynamic runtimes can do online).
//!
//! The paper's model ignores communication costs (StarPU prefetches and the
//! evaluation machine shares memory), so EST depends only on predecessor
//! completion times and worker availability.

use heteroprio_core::time::{approx_le, F64Ord};
use heteroprio_core::{Platform, Schedule, TaskRun, WorkerId};
use heteroprio_taskgraph::rank::{rank_order, WeightScheme};
use heteroprio_taskgraph::TaskGraph;

/// Whether tasks may be inserted into idle gaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HeftVariant {
    #[default]
    Insertion,
    NoInsertion,
}

/// Static HEFT schedule of a task graph.
pub fn heft(
    graph: &TaskGraph,
    platform: &Platform,
    scheme: WeightScheme,
    variant: HeftVariant,
) -> Schedule {
    let order = rank_order(graph, scheme);
    let instance = graph.instance();
    // Per-worker busy intervals, kept sorted by start time.
    let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); platform.workers()];
    let mut end_of = vec![0.0_f64; graph.len()];
    let mut runs = Vec::with_capacity(graph.len());
    for task in order {
        let ready = graph
            .predecessors(task)
            .iter()
            .map(|p| *end_of.get(p.index()).expect("end_of sized to graph.len()"))
            .fold(0.0, f64::max);
        let mut best: Option<(F64Ord, WorkerId, f64)> = None;
        for w in platform.all_workers() {
            let dur = instance.task(task).time_on(platform.kind_of(w));
            let start = match variant {
                HeftVariant::Insertion => earliest_gap(busy_of(&busy, w), ready, dur),
                HeftVariant::NoInsertion => {
                    ready.max(busy_of(&busy, w).last().map_or(0.0, |&(_, e)| e))
                }
            };
            let eft = F64Ord::new(start + dur);
            if best.is_none_or(|(b, _, _)| eft < b) {
                best = Some((eft, w, start));
            }
        }
        let (F64Ord(eft), w, start) = best.expect("platform has workers");
        insert_interval(
            busy.get_mut(w.index()).expect("busy sized to platform.workers()"),
            (start, eft),
        );
        *end_of.get_mut(task.index()).expect("end_of sized to graph.len()") = eft;
        runs.push(TaskRun { task, worker: w, start, end: eft });
    }
    Schedule { runs, aborted: Vec::new() }
}

/// Earliest start ≥ `ready` on a worker with the given busy intervals where
/// a task of length `dur` fits.
/// Checked per-worker busy-list accessor; `busy` is sized to the platform.
fn busy_of(busy: &[Vec<(f64, f64)>], w: WorkerId) -> &[(f64, f64)] {
    busy.get(w.index()).expect("busy sized to platform.workers()")
}

fn earliest_gap(busy: &[(f64, f64)], ready: f64, dur: f64) -> f64 {
    let mut candidate = ready;
    for &(s, e) in busy {
        if approx_le(candidate + dur, s) {
            return candidate;
        }
        candidate = candidate.max(e);
    }
    candidate
}

fn insert_interval(busy: &mut Vec<(f64, f64)>, interval: (f64, f64)) {
    let pos = busy.partition_point(|&(s, _)| s < interval.0);
    busy.insert(pos, interval);
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::Instance;
    use heteroprio_taskgraph::{chain, check_precedence, cholesky, ConstTiming, TaskGraph};

    fn check(graph: &TaskGraph, platform: &Platform, scheme: WeightScheme, v: HeftVariant) -> f64 {
        let sched = heft(graph, platform, scheme, v);
        sched.validate(graph.instance(), platform).expect("valid");
        check_precedence(graph, &sched).expect("precedence");
        sched.makespan()
    }

    #[test]
    fn chain_runs_at_fastest_pace() {
        let g = chain(6, 4.0, 1.0);
        let plat = Platform::new(2, 1);
        // Every task prefers the GPU: 6 × 1.
        let ms = check(&g, &plat, WeightScheme::Avg, HeftVariant::Insertion);
        assert!(approx_eq(ms, 6.0), "{ms}");
    }

    #[test]
    fn independent_tasks_use_both_classes() {
        let g = TaskGraph::independent(Instance::from_times(&[(1.0, 1.0); 6]));
        let plat = Platform::new(2, 1);
        let ms = check(&g, &plat, WeightScheme::Avg, HeftVariant::Insertion);
        // 6 unit tasks over 3 equal workers.
        assert!(approx_eq(ms, 2.0), "{ms}");
    }

    #[test]
    fn insertion_exploits_gaps() {
        // A graph where non-insertion leaves a gap that insertion can fill:
        // ranks force order [a (long), b (short, independent)]; with one
        // worker the orders coincide, so use a structure with a gap:
        // a → c (both long), plus short independent b that fits before c.
        use heteroprio_core::Task;
        use heteroprio_taskgraph::DagBuilder;
        let mut bld = DagBuilder::new();
        let a = bld.add_task(Task::new(2.0, 2.0), "a");
        let c = bld.add_task(Task::new(10.0, 10.0), "c");
        let b = bld.add_task(Task::new(1.0, 5.0), "b");
        bld.add_edge(a, c);
        let g = bld.build().unwrap();
        let plat = Platform::new(1, 1);
        let ins = check(&g, &plat, WeightScheme::Avg, HeftVariant::Insertion);
        let no_ins = check(&g, &plat, WeightScheme::Avg, HeftVariant::NoInsertion);
        assert!(ins <= no_ins + 1e-12, "insertion {ins} vs {no_ins}");
        let _ = b;
    }

    #[test]
    fn heft_ignores_affinity_by_design() {
        // The §6.1 observation: HEFT assigns by EFT, not acceleration
        // factor. With one CPU-friendly and one GPU-friendly task (equal avg
        // weights) and a single free GPU first in EFT order, HEFT can put a
        // task on its slow resource. We only assert validity and that the
        // makespan can exceed the affinity-aware optimum.
        let inst = Instance::from_times(&[(4.0, 2.0), (2.0, 4.0)]);
        let g = TaskGraph::independent(inst);
        let plat = Platform::new(1, 1);
        let ms = check(&g, &plat, WeightScheme::Avg, HeftVariant::Insertion);
        // Optimum: 2.0 (each on its fast resource). HEFT also achieves it
        // here; the adversarial gap appears at scale (exercised in the
        // experiment harness).
        assert!(ms >= 2.0 - 1e-12);
    }

    #[test]
    fn cholesky_all_schemes_and_variants_are_valid() {
        let g = cholesky(5, &ConstTiming { cpu: 3.0, gpu: 1.0 });
        let plat = Platform::new(3, 2);
        for scheme in [WeightScheme::Avg, WeightScheme::Min] {
            for v in [HeftVariant::Insertion, HeftVariant::NoInsertion] {
                let ms = check(&g, &plat, scheme, v);
                assert!(ms > 0.0);
            }
        }
    }

    #[test]
    fn earliest_gap_finds_holes() {
        let busy = vec![(0.0, 2.0), (5.0, 7.0), (9.0, 10.0)];
        assert_eq!(earliest_gap(&busy, 0.0, 3.0), 2.0); // hole [2,5]
        assert_eq!(earliest_gap(&busy, 0.0, 2.0), 2.0);
        assert_eq!(earliest_gap(&busy, 6.0, 1.0), 7.0); // hole [7,9]
        assert_eq!(earliest_gap(&busy, 0.0, 10.0), 10.0); // only after the end
        assert_eq!(earliest_gap(&[], 3.0, 1.0), 3.0);
    }
}
