//! DAG-mode HeteroPrio (§6.2 of the paper).
//!
//! "Since HeteroPrio is a list algorithm, HeteroPrio rule can be used to
//! assign a ready task to any idle resource. If no ready task is available
//! for an idle resource, a spoliation attempt is done on currently running
//! tasks." Priorities (bottom levels) break ties among equal acceleration
//! factors and among spoliation candidates with equal completion times.

use heteroprio_core::time::strictly_less;
use heteroprio_core::{
    AffinityQueue, HeteroPrioConfig, SpoliationTieBreak, TaskId, WorkerId, WorkerOrder,
};
use heteroprio_simulator::{OnlinePolicy, SimContext, SnapshotOnlinePolicy};

/// HeteroPrio as an online policy for the runtime engine. The ready queue
/// is the shared [`AffinityQueue`] (acceleration factor primary, the
/// paper's priority tie rule secondary, arrival order final).
pub struct HeteroPrioDagPolicy {
    config: HeteroPrioConfig,
    queue: AffinityQueue,
}

impl HeteroPrioDagPolicy {
    pub fn new(config: HeteroPrioConfig) -> Self {
        HeteroPrioDagPolicy { config, queue: AffinityQueue::new(config.queue_tie) }
    }
}

impl OnlinePolicy for HeteroPrioDagPolicy {
    fn on_ready(&mut self, tasks: &[TaskId], ctx: &SimContext<'_>) {
        for &t in tasks {
            self.queue.push(ctx.graph.instance(), t);
        }
    }

    fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId> {
        self.queue.pop(ctx.platform.kind_of(worker))
    }

    fn spoliation_victim(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<WorkerId> {
        if self.config.disable_spoliation {
            return None;
        }
        let my_kind = ctx.platform.kind_of(worker);
        let mut candidates: Vec<(WorkerId, heteroprio_simulator::RunningTask)> =
            ctx.running_on(my_kind.other()).collect();
        candidates.sort_by(|(_, a), (_, b)| {
            b.end.total_cmp(&a.end).then_with(|| {
                let ta = ctx.graph.instance().task(a.task);
                let tb = ctx.graph.instance().task(b.task);
                match self.config.spoliation_tie {
                    SpoliationTieBreak::PriorityThenId => {
                        tb.priority.total_cmp(&ta.priority).then(a.task.cmp(&b.task))
                    }
                    SpoliationTieBreak::IdAscending => a.task.cmp(&b.task),
                    SpoliationTieBreak::IdDescending => b.task.cmp(&a.task),
                }
            })
        });
        for (v, r) in candidates {
            let new_end = ctx.now + ctx.effective_time(r.task, my_kind);
            if strictly_less(new_end, r.end) {
                return Some(v);
            }
        }
        None
    }

    fn worker_order(&self) -> WorkerOrder {
        self.config.worker_order
    }
}

impl SnapshotOnlinePolicy for HeteroPrioDagPolicy {
    // The default `restore` (re-announce through `on_ready`) is exact: the
    // affinity queue orders by acceleration factor, then the configured tie
    // rule, then arrival sequence, and re-pushing in `iter()` order (GPU end
    // to CPU end) assigns fresh ascending sequence numbers that reproduce
    // the original arbitration.
    fn ready_order(&self) -> Vec<TaskId> {
        self.queue.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::{heteroprio, Instance, Platform, ResourceKind};
    use heteroprio_simulator::simulate;
    use heteroprio_taskgraph::{check_precedence, cholesky, ConstTiming, TaskGraph};

    #[test]
    fn matches_core_heteroprio_on_independent_tasks() {
        // On an edge-free graph the DAG policy must reproduce the core
        // independent-task implementation exactly.
        let times: Vec<(f64, f64)> = (1..=12)
            .map(|i| {
                let p = (i * 37 % 11 + 1) as f64;
                let q = (i * 53 % 7 + 1) as f64;
                (p, q)
            })
            .collect();
        let inst = Instance::from_times(&times);
        let plat = Platform::new(3, 2);
        let cfg = HeteroPrioConfig::new();
        let core_res = heteroprio(&inst, &plat, &cfg);
        let g = TaskGraph::independent(inst.clone());
        let mut policy = HeteroPrioDagPolicy::new(cfg);
        let sim_res = simulate(&g, &plat, &mut policy);
        sim_res.schedule.validate(&inst, &plat).unwrap();
        assert!(
            approx_eq(core_res.makespan(), sim_res.makespan()),
            "core {} vs dag {}",
            core_res.makespan(),
            sim_res.makespan()
        );
        assert_eq!(core_res.spoliations, sim_res.spoliations);
    }

    #[test]
    fn cholesky_runs_to_completion_and_respects_deps() {
        let g = cholesky(6, &ConstTiming { cpu: 3.0, gpu: 1.0 });
        let plat = Platform::new(4, 2);
        let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
        let res = simulate(&g, &plat, &mut policy);
        res.schedule.validate(g.instance(), &plat).unwrap();
        check_precedence(&g, &res.schedule).unwrap();
        assert!(res.makespan() > 0.0);
    }

    #[test]
    fn spoliation_disabled_config_spoliates_nothing() {
        let inst = Instance::from_times(&[(100.0, 1.0), (100.0, 1.0)]);
        let g = TaskGraph::independent(inst);
        let plat = Platform::new(1, 1);
        let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::without_spoliation());
        let res = simulate(&g, &plat, &mut policy);
        assert_eq!(res.spoliations, 0);
        assert!(approx_eq(res.makespan(), 100.0));
    }

    #[test]
    fn queue_serves_extremes_to_matching_resources() {
        // Four ready tasks with distinct ρ: GPU should take the highest-ρ
        // tasks, CPU the lowest.
        let inst = Instance::from_times(&[(8.0, 1.0), (4.0, 1.0), (1.0, 4.0), (1.0, 8.0)]);
        let g = TaskGraph::independent(inst.clone());
        let plat = Platform::new(2, 2);
        let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
        let res = simulate(&g, &plat, &mut policy);
        for r in &res.schedule.runs {
            let rho = inst.task(r.task).accel_factor();
            let kind = plat.kind_of(r.worker);
            if rho > 1.0 {
                assert_eq!(kind, ResourceKind::Gpu, "{} with rho {rho}", r.task);
            } else {
                assert_eq!(kind, ResourceKind::Cpu, "{} with rho {rho}", r.task);
            }
        }
        assert!(approx_eq(res.makespan(), 1.0));
    }
}
