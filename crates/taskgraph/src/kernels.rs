//! Kernel vocabulary of the tiled dense linear-algebra factorizations used
//! in the paper's evaluation (§6), and the timing abstraction that maps a
//! kernel to its (CPU, GPU) processing times.

use heteroprio_core::Task;

/// The BLAS/LAPACK tile kernels appearing in Cholesky, QR and LU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    // Cholesky
    Potrf,
    Trsm,
    Syrk,
    Gemm,
    // QR
    Geqrt,
    Ormqr,
    Tsqrt,
    Tsmqr,
    // LU (reuses Trsm and Gemm)
    Getrf,
}

impl Kernel {
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Potrf => "DPOTRF",
            Kernel::Trsm => "DTRSM",
            Kernel::Syrk => "DSYRK",
            Kernel::Gemm => "DGEMM",
            Kernel::Geqrt => "DGEQRT",
            Kernel::Ormqr => "DORMQR",
            Kernel::Tsqrt => "DTSQRT",
            Kernel::Tsmqr => "DTSMQR",
            Kernel::Getrf => "DGETRF",
        }
    }

    pub const ALL: [Kernel; 9] = [
        Kernel::Potrf,
        Kernel::Trsm,
        Kernel::Syrk,
        Kernel::Gemm,
        Kernel::Geqrt,
        Kernel::Ormqr,
        Kernel::Tsqrt,
        Kernel::Tsmqr,
        Kernel::Getrf,
    ];
}

/// Maps a kernel to its `(cpu_time, gpu_time)` — the runtime system's
/// calibrated performance model. The realistic Table-1-based model lives in
/// `heteroprio-workloads`; tests use the simple implementations below.
pub trait KernelTiming {
    fn times(&self, kernel: Kernel) -> (f64, f64);

    /// Build a [`Task`] for the kernel.
    fn task(&self, kernel: Kernel) -> Task {
        let (p, q) = self.times(kernel);
        Task::new(p, q)
    }
}

/// All kernels take the same constant times — handy in structural tests.
#[derive(Clone, Copy, Debug)]
pub struct ConstTiming {
    pub cpu: f64,
    pub gpu: f64,
}

impl KernelTiming for ConstTiming {
    fn times(&self, _kernel: Kernel) -> (f64, f64) {
        (self.cpu, self.gpu)
    }
}

impl<F: Fn(Kernel) -> (f64, f64)> KernelTiming for F {
    fn times(&self, kernel: Kernel) -> (f64, f64) {
        self(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        for (i, a) in Kernel::ALL.iter().enumerate() {
            for b in &Kernel::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn const_timing_builds_tasks() {
        let t = ConstTiming { cpu: 2.0, gpu: 0.5 };
        let task = t.task(Kernel::Gemm);
        assert_eq!(task.cpu_time(), 2.0);
        assert_eq!(task.gpu_time(), 0.5);
    }

    #[test]
    fn closures_are_timings() {
        let f = |k: Kernel| if k == Kernel::Gemm { (28.8, 1.0) } else { (1.0, 1.0) };
        assert_eq!(f.times(Kernel::Gemm), (28.8, 1.0));
        assert_eq!(f.times(Kernel::Potrf), (1.0, 1.0));
    }
}
