//! Task-graph generators.
//!
//! The three dense linear-algebra factorizations of the paper's evaluation
//! (tiled Cholesky, QR and LU on an N×N tile grid, as implemented by the
//! Chameleon library), plus synthetic graphs (chains, fork-join, random
//! layered DAGs) for tests and robustness studies.
//!
//! Dependencies are derived with last-writer tracking per tile, which
//! serializes successive updates of the same tile — matching the
//! read-write-access dependency inference of StarPU-like runtimes.

use crate::dag::{DagBuilder, TaskGraph};
use crate::kernels::{Kernel, KernelTiming};
use heteroprio_core::{Task, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Tiled Cholesky factorization (A = L·Lᵀ) on an `n × n` tile grid.
///
/// Per panel `k`: `POTRF(k)` factors the diagonal tile, `TRSM(i,k)` solves
/// the panel, `SYRK(i,k)` updates diagonal tiles and `GEMM(i,j,k)` updates
/// the trailing sub-diagonal tiles.
pub fn cholesky(n: usize, timing: &impl KernelTiming) -> TaskGraph {
    assert!(n >= 1, "need at least one tile");
    let mut b = DagBuilder::new();
    // last_writer[(i, j)] for the lower-triangular tiles i >= j.
    let mut last: HashMap<(usize, usize), TaskId> = HashMap::new();
    for k in 0..n {
        let potrf = b.add_task(timing.task(Kernel::Potrf), Kernel::Potrf.name());
        b.add_edge_opt(last.get(&(k, k)).copied(), potrf);
        last.insert((k, k), potrf);
        let mut trsm = Vec::with_capacity(n - k - 1);
        for i in k + 1..n {
            let t = b.add_task(timing.task(Kernel::Trsm), Kernel::Trsm.name());
            b.add_edge(potrf, t);
            b.add_edge_opt(last.get(&(i, k)).copied(), t);
            last.insert((i, k), t);
            trsm.push(t);
        }
        for i in k + 1..n {
            let syrk = b.add_task(timing.task(Kernel::Syrk), Kernel::Syrk.name());
            b.add_edge(trsm[i - k - 1], syrk);
            b.add_edge_opt(last.get(&(i, i)).copied(), syrk);
            last.insert((i, i), syrk);
            for j in k + 1..i {
                let gemm = b.add_task(timing.task(Kernel::Gemm), Kernel::Gemm.name());
                b.add_edge(trsm[i - k - 1], gemm);
                b.add_edge(trsm[j - k - 1], gemm);
                b.add_edge_opt(last.get(&(i, j)).copied(), gemm);
                last.insert((i, j), gemm);
            }
        }
    }
    b.build().expect("cholesky generator is acyclic by construction")
}

/// Tiled QR factorization (flat reduction tree, as in PLASMA/Chameleon).
///
/// Per panel `k`: `GEQRT(k)` factors the diagonal tile, `ORMQR(k,j)` applies
/// it to the k-th row, `TSQRT(i,k)` eliminates tile `(i,k)` against the
/// diagonal (a serial chain down the panel), and `TSMQR(i,k,j)` applies each
/// elimination to rows `k` and `i` of the trailing matrix.
pub fn qr(n: usize, timing: &impl KernelTiming) -> TaskGraph {
    assert!(n >= 1, "need at least one tile");
    let mut b = DagBuilder::new();
    let mut last: HashMap<(usize, usize), TaskId> = HashMap::new();
    for k in 0..n {
        let geqrt = b.add_task(timing.task(Kernel::Geqrt), Kernel::Geqrt.name());
        b.add_edge_opt(last.get(&(k, k)).copied(), geqrt);
        last.insert((k, k), geqrt);
        for j in k + 1..n {
            let ormqr = b.add_task(timing.task(Kernel::Ormqr), Kernel::Ormqr.name());
            b.add_edge(geqrt, ormqr);
            b.add_edge_opt(last.get(&(k, j)).copied(), ormqr);
            last.insert((k, j), ormqr);
        }
        for i in k + 1..n {
            let tsqrt = b.add_task(timing.task(Kernel::Tsqrt), Kernel::Tsqrt.name());
            // Reads/writes the diagonal tile R(k,k) (chain) and tile (i,k).
            b.add_edge_opt(last.get(&(k, k)).copied(), tsqrt);
            b.add_edge_opt(last.get(&(i, k)).copied(), tsqrt);
            last.insert((k, k), tsqrt);
            last.insert((i, k), tsqrt);
            for j in k + 1..n {
                let tsmqr = b.add_task(timing.task(Kernel::Tsmqr), Kernel::Tsmqr.name());
                b.add_edge(tsqrt, tsmqr);
                b.add_edge_opt(last.get(&(k, j)).copied(), tsmqr);
                b.add_edge_opt(last.get(&(i, j)).copied(), tsmqr);
                last.insert((k, j), tsmqr);
                last.insert((i, j), tsmqr);
            }
        }
    }
    b.build().expect("qr generator is acyclic by construction")
}

/// Tiled LU factorization without pivoting.
///
/// Per panel `k`: `GETRF(k)` factors the diagonal tile, `TRSM` solves the
/// k-th row (upper) and column (lower), and `GEMM(i,j,k)` updates the whole
/// trailing matrix.
pub fn lu(n: usize, timing: &impl KernelTiming) -> TaskGraph {
    assert!(n >= 1, "need at least one tile");
    let mut b = DagBuilder::new();
    let mut last: HashMap<(usize, usize), TaskId> = HashMap::new();
    for k in 0..n {
        let getrf = b.add_task(timing.task(Kernel::Getrf), Kernel::Getrf.name());
        b.add_edge_opt(last.get(&(k, k)).copied(), getrf);
        last.insert((k, k), getrf);
        let mut row = Vec::with_capacity(n - k - 1);
        let mut col = Vec::with_capacity(n - k - 1);
        for j in k + 1..n {
            let t = b.add_task(timing.task(Kernel::Trsm), Kernel::Trsm.name());
            b.add_edge(getrf, t);
            b.add_edge_opt(last.get(&(k, j)).copied(), t);
            last.insert((k, j), t);
            row.push(t);
        }
        for i in k + 1..n {
            let t = b.add_task(timing.task(Kernel::Trsm), Kernel::Trsm.name());
            b.add_edge(getrf, t);
            b.add_edge_opt(last.get(&(i, k)).copied(), t);
            last.insert((i, k), t);
            col.push(t);
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let gemm = b.add_task(timing.task(Kernel::Gemm), Kernel::Gemm.name());
                b.add_edge(col[i - k - 1], gemm);
                b.add_edge(row[j - k - 1], gemm);
                b.add_edge_opt(last.get(&(i, j)).copied(), gemm);
                last.insert((i, j), gemm);
            }
        }
    }
    b.build().expect("lu generator is acyclic by construction")
}

/// The three factorizations, for sweeping experiments uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Factorization {
    Cholesky,
    Qr,
    Lu,
}

impl Factorization {
    pub const ALL: [Factorization; 3] =
        [Factorization::Cholesky, Factorization::Qr, Factorization::Lu];

    pub fn name(self) -> &'static str {
        match self {
            Factorization::Cholesky => "Cholesky",
            Factorization::Qr => "QR",
            Factorization::Lu => "LU",
        }
    }

    pub fn generate(self, n: usize, timing: &impl KernelTiming) -> TaskGraph {
        match self {
            Factorization::Cholesky => cholesky(n, timing),
            Factorization::Qr => qr(n, timing),
            Factorization::Lu => lu(n, timing),
        }
    }
}

/// A serial chain of `len` tasks with the given times.
pub fn chain(len: usize, cpu: f64, gpu: f64) -> TaskGraph {
    let mut b = DagBuilder::new();
    let mut prev: Option<TaskId> = None;
    for _ in 0..len {
        let t = b.add_task(Task::new(cpu, gpu), "chain");
        b.add_edge_opt(prev, t);
        prev = Some(t);
    }
    b.build().expect("chain is acyclic")
}

/// Fork-join: one source, `width` parallel middle tasks, one sink.
pub fn fork_join(width: usize, cpu: f64, gpu: f64) -> TaskGraph {
    let mut b = DagBuilder::new();
    let src = b.add_task(Task::new(cpu, gpu), "fork");
    let sink_task = Task::new(cpu, gpu);
    let mut middles = Vec::with_capacity(width);
    for _ in 0..width {
        let m = b.add_task(Task::new(cpu, gpu), "work");
        b.add_edge(src, m);
        middles.push(m);
    }
    let sink = b.add_task(sink_task, "join");
    for m in middles {
        b.add_edge(m, sink);
    }
    b.build().expect("fork-join is acyclic")
}

/// Parameters of the random layered DAG generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomDagParams {
    pub layers: usize,
    pub width: usize,
    /// Probability of an edge between nodes of consecutive layers.
    pub edge_prob: f64,
    /// CPU times drawn uniformly from this range.
    pub cpu_range: (f64, f64),
    /// Acceleration factors drawn log-uniformly from this range.
    pub accel_range: (f64, f64),
}

impl Default for RandomDagParams {
    fn default() -> Self {
        RandomDagParams {
            layers: 6,
            width: 8,
            edge_prob: 0.3,
            cpu_range: (1.0, 10.0),
            accel_range: (0.1, 30.0),
        }
    }
}

/// Random layered DAG: `layers × width` tasks; edges only between
/// consecutive layers; every non-source node gets at least one predecessor
/// so the depth is honest.
pub fn random_layered(params: &RandomDagParams, seed: u64) -> TaskGraph {
    assert!(params.layers >= 1 && params.width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::new();
    let mut prev_layer: Vec<TaskId> = Vec::new();
    for layer in 0..params.layers {
        let mut this_layer = Vec::with_capacity(params.width);
        for _ in 0..params.width {
            let cpu = rng.random_range(params.cpu_range.0..=params.cpu_range.1);
            let (lo, hi) = params.accel_range;
            let rho = (rng.random_range(lo.ln()..=hi.ln())).exp();
            let t = b.add_task(Task::new(cpu, cpu / rho), "rand");
            if layer > 0 {
                let mut has_pred = false;
                for &p in &prev_layer {
                    if rng.random_bool(params.edge_prob) {
                        b.add_edge(p, t);
                        has_pred = true;
                    }
                }
                if !has_pred {
                    let p = prev_layer[rng.random_range(0..prev_layer.len())];
                    b.add_edge(p, t);
                }
            }
            this_layer.push(t);
        }
        prev_layer = this_layer;
    }
    b.build().expect("layered graph is acyclic")
}

/// Expected task counts of each factorization, used in tests and reports.
pub fn expected_task_count(f: Factorization, n: usize) -> usize {
    let c2 = n * (n - 1) / 2; // C(n, 2)
    let sq_sum = (n - 1) * n * (2 * n - 1) / 6; // Σ_{k<n} k²
    let c3 = if n >= 3 { n * (n - 1) * (n - 2) / 6 } else { 0 }; // C(n, 3)
    match f {
        Factorization::Cholesky => n + c2 + c2 + c3,
        Factorization::Qr => n + c2 + c2 + sq_sum,
        Factorization::Lu => n + 2 * c2 + sq_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ConstTiming;

    const T: ConstTiming = ConstTiming { cpu: 1.0, gpu: 1.0 };

    #[test]
    fn cholesky_task_counts() {
        for n in 1..=8 {
            let g = cholesky(n, &T);
            assert_eq!(g.len(), expected_task_count(Factorization::Cholesky, n), "n={n}");
        }
        // Explicit: N=4 → 4 + 6 + 6 + 4 = 20 tasks.
        assert_eq!(cholesky(4, &T).len(), 20);
    }

    #[test]
    fn qr_task_counts() {
        for n in 1..=8 {
            let g = qr(n, &T);
            assert_eq!(g.len(), expected_task_count(Factorization::Qr, n), "n={n}");
        }
    }

    #[test]
    fn lu_task_counts() {
        for n in 1..=8 {
            let g = lu(n, &T);
            assert_eq!(g.len(), expected_task_count(Factorization::Lu, n), "n={n}");
        }
    }

    #[test]
    fn cholesky_kernel_histogram() {
        let g = cholesky(5, &T);
        let hist = g.label_histogram();
        let count = |name: &str| hist.iter().find(|(n, _)| *n == name).map_or(0, |&(_, c)| c);
        assert_eq!(count("DPOTRF"), 5);
        assert_eq!(count("DTRSM"), 10);
        assert_eq!(count("DSYRK"), 10);
        assert_eq!(count("DGEMM"), 10); // C(5,3)
    }

    #[test]
    fn factorizations_have_single_source_and_sink() {
        for f in Factorization::ALL {
            let g = f.generate(5, &T);
            assert_eq!(g.sources().len(), 1, "{}", f.name());
            assert_eq!(g.sinks().len(), 1, "{}", f.name());
        }
    }

    #[test]
    fn factorization_critical_path_grows_linearly() {
        use crate::rank::{critical_path, WeightScheme};
        // With unit kernels the Cholesky critical path is 3(n-1)+1 tasks:
        // POTRF→TRSM→SYRK per panel, then the final POTRF.
        for n in 2..=6 {
            let g = cholesky(n, &T);
            let cp = critical_path(&g, WeightScheme::Avg);
            assert_eq!(cp, (3 * (n - 1) + 1) as f64, "n={n}");
        }
    }

    #[test]
    fn chain_and_fork_join_shapes() {
        let c = chain(5, 1.0, 2.0);
        assert_eq!(c.len(), 5);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.sources().len(), 1);
        assert_eq!(c.sinks().len(), 1);

        let fj = fork_join(7, 1.0, 1.0);
        assert_eq!(fj.len(), 9);
        assert_eq!(fj.edge_count(), 14);
    }

    #[test]
    fn random_layered_is_reproducible_and_connected() {
        let params = RandomDagParams::default();
        let g1 = random_layered(&params, 42);
        let g2 = random_layered(&params, 42);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.len(), params.layers * params.width);
        // Only the first layer can be sources.
        assert!(g1.sources().len() <= params.width);
        // Every non-source node has a predecessor (generator guarantees it).
        let sources = g1.sources();
        for id in g1.instance().ids() {
            if !sources.contains(&id) {
                assert!(!g1.predecessors(id).is_empty());
            }
        }
    }

    #[test]
    fn random_layered_seeds_differ() {
        let params = RandomDagParams::default();
        let g1 = random_layered(&params, 1);
        let g2 = random_layered(&params, 2);
        let t1: Vec<f64> = g1.instance().tasks().iter().map(|t| t.cpu_time()).collect();
        let t2: Vec<f64> = g2.instance().tasks().iter().map(|t| t.cpu_time()).collect();
        assert_ne!(t1, t2);
    }

    #[test]
    fn accel_factors_respect_range() {
        let params = RandomDagParams { accel_range: (0.5, 4.0), ..RandomDagParams::default() };
        let g = random_layered(&params, 7);
        for t in g.instance().tasks() {
            let rho = t.accel_factor();
            assert!((0.5 - 1e-9..=4.0 + 1e-9).contains(&rho), "rho {rho}");
        }
    }
}
