//! Task ranking for DAG scheduling (§6.2 of the paper).
//!
//! For homogeneous platforms the standard priority is the *bottom level*:
//! the longest path from a task to an exit task, counting node weights. With
//! two unrelated resource classes a node's weight is ambiguous; the paper
//! evaluates two schemes: `avg` (HEFT's average execution time) and `min`
//! (the optimistic smallest execution time).

use crate::dag::TaskGraph;
use heteroprio_core::model::TaskId;

/// How a task's scalar weight is derived from its two processing times.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightScheme {
    /// Mean of CPU and GPU time (the standard HEFT weighting).
    Avg,
    /// `min(p, q)` — optimistic: assume the favourite resource.
    Min,
    /// CPU time only.
    CpuOnly,
    /// GPU time only.
    GpuOnly,
}

impl WeightScheme {
    pub fn weight(self, task: &heteroprio_core::Task) -> f64 {
        match self {
            WeightScheme::Avg => 0.5 * (task.cpu_time() + task.gpu_time()),
            WeightScheme::Min => task.min_time(),
            WeightScheme::CpuOnly => task.cpu_time(),
            WeightScheme::GpuOnly => task.gpu_time(),
        }
    }

    pub const ALL: [WeightScheme; 4] =
        [WeightScheme::Avg, WeightScheme::Min, WeightScheme::CpuOnly, WeightScheme::GpuOnly];
}

/// Bottom level of every task: its weight plus the maximum bottom level of
/// its successors. Indexed by task id.
pub fn bottom_levels(graph: &TaskGraph, scheme: WeightScheme) -> Vec<f64> {
    let order = graph.topo_order();
    let mut levels = vec![0.0_f64; graph.len()];
    for &id in order.iter().rev() {
        let down = graph.successors(id).iter().map(|s| levels[s.index()]).fold(0.0, f64::max);
        levels[id.index()] = scheme.weight(graph.instance().task(id)) + down;
    }
    levels
}

/// Top level (longest path from a source, excluding the task itself).
pub fn top_levels(graph: &TaskGraph, scheme: WeightScheme) -> Vec<f64> {
    let order = graph.topo_order();
    let mut levels = vec![0.0_f64; graph.len()];
    for &id in &order {
        let up = graph
            .predecessors(id)
            .iter()
            .map(|&p| levels[p.index()] + scheme.weight(graph.instance().task(p)))
            .fold(0.0, f64::max);
        levels[id.index()] = up;
    }
    levels
}

/// Critical-path length under a weight scheme: the largest bottom level.
pub fn critical_path(graph: &TaskGraph, scheme: WeightScheme) -> f64 {
    bottom_levels(graph, scheme).into_iter().fold(0.0, f64::max)
}

/// Set every task's priority to its bottom level under `scheme`; returns the
/// computed levels. This is the ranking step that HeteroPrio, DualHP and
/// HEFT all apply before scheduling a DAG.
pub fn apply_bottom_level_priorities(graph: &mut TaskGraph, scheme: WeightScheme) -> Vec<f64> {
    let levels = bottom_levels(graph, scheme);
    graph.set_priorities(&levels);
    levels
}

/// Tasks sorted by decreasing bottom level (HEFT's scheduling order),
/// ties by increasing id for determinism.
pub fn rank_order(graph: &TaskGraph, scheme: WeightScheme) -> Vec<TaskId> {
    let levels = bottom_levels(graph, scheme);
    let mut ids: Vec<TaskId> = graph.instance().ids().collect();
    ids.sort_by(|&a, &b| levels[b.index()].total_cmp(&levels[a.index()]).then(a.cmp(&b)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use heteroprio_core::{Task, TaskId};

    /// chain a(2,4) → b(6,2) → c(2,2)
    fn chain() -> TaskGraph {
        let mut b = DagBuilder::new();
        let x = b.add_task(Task::new(2.0, 4.0), "a");
        let y = b.add_task(Task::new(6.0, 2.0), "b");
        let z = b.add_task(Task::new(2.0, 2.0), "c");
        b.add_edge(x, y);
        b.add_edge(y, z);
        b.build().unwrap()
    }

    #[test]
    fn bottom_levels_on_chain() {
        let g = chain();
        let avg = bottom_levels(&g, WeightScheme::Avg);
        // weights: 3, 4, 2 → bottom levels: 9, 6, 2
        assert_eq!(avg, vec![9.0, 6.0, 2.0]);
        let min = bottom_levels(&g, WeightScheme::Min);
        // weights: 2, 2, 2 → bottom levels: 6, 4, 2
        assert_eq!(min, vec![6.0, 4.0, 2.0]);
    }

    #[test]
    fn top_levels_on_chain() {
        let g = chain();
        let avg = top_levels(&g, WeightScheme::Avg);
        assert_eq!(avg, vec![0.0, 3.0, 7.0]);
    }

    #[test]
    fn critical_path_is_max_bottom_level() {
        let g = chain();
        assert_eq!(critical_path(&g, WeightScheme::Avg), 9.0);
        assert_eq!(critical_path(&g, WeightScheme::Min), 6.0);
        assert_eq!(critical_path(&g, WeightScheme::CpuOnly), 10.0);
        assert_eq!(critical_path(&g, WeightScheme::GpuOnly), 8.0);
    }

    #[test]
    fn rank_order_is_topological_on_chains() {
        let g = chain();
        assert_eq!(rank_order(&g, WeightScheme::Avg), vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn parallel_branches_rank_by_weight() {
        // src → {heavy, light} → sink
        let mut b = DagBuilder::new();
        let s = b.add_task(Task::new(1.0, 1.0), "s");
        let heavy = b.add_task(Task::new(10.0, 10.0), "h");
        let light = b.add_task(Task::new(1.0, 1.0), "l");
        let t = b.add_task(Task::new(1.0, 1.0), "t");
        b.add_edge(s, heavy);
        b.add_edge(s, light);
        b.add_edge(heavy, t);
        b.add_edge(light, t);
        let g = b.build().unwrap();
        let order = rank_order(&g, WeightScheme::Avg);
        assert_eq!(order[0], s);
        assert_eq!(order[1], heavy);
        assert_eq!(order[2], light);
        assert_eq!(order[3], t);
    }

    #[test]
    fn apply_priorities_matches_levels() {
        let mut g = chain();
        let levels = apply_bottom_level_priorities(&mut g, WeightScheme::Min);
        for id in g.instance().ids() {
            assert_eq!(g.instance().task(id).priority, levels[id.index()]);
        }
    }

    #[test]
    fn bottom_level_is_monotone_along_edges() {
        let g = chain();
        for scheme in WeightScheme::ALL {
            let levels = bottom_levels(&g, scheme);
            for id in g.instance().ids() {
                for &s in g.successors(id) {
                    assert!(levels[id.index()] > levels[s.index()]);
                }
            }
        }
    }
}
