//! Directed acyclic task graphs.
//!
//! A [`TaskGraph`] owns an [`Instance`] (one task per node) plus the
//! dependency structure. Node identifiers are the instance's [`TaskId`]s, so
//! schedules produced for a graph validate directly against its instance.

use heteroprio_core::model::{Instance, Task, TaskId};
use heteroprio_core::time::approx_le;
use std::collections::HashSet;
use std::fmt;

/// A task graph: tasks plus precedence edges.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    instance: Instance,
    labels: Vec<&'static str>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
}

/// Error raised when a builder's edges contain a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError;

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task graph contains a dependency cycle")
    }
}

impl std::error::Error for CycleError {}

/// Incremental construction of a [`TaskGraph`].
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    instance: Instance,
    labels: Vec<&'static str>,
    edges: Vec<(TaskId, TaskId)>,
}

impl DagBuilder {
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// Add a node; `label` is a kernel name for reporting (e.g. `"DGEMM"`).
    pub fn add_task(&mut self, task: Task, label: &'static str) -> TaskId {
        let id = self.instance.push(task);
        self.labels.push(label);
        id
    }

    /// Add a precedence edge `from → to` (`to` cannot start before `from`
    /// completes). Duplicate edges are deduplicated at build time.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        assert_ne!(from, to, "self-dependency");
        self.edges.push((from, to));
    }

    /// Add an edge from an optional predecessor (no-op on `None`); a common
    /// pattern with last-writer tracking in the generators.
    pub fn add_edge_opt(&mut self, from: Option<TaskId>, to: TaskId) {
        if let Some(f) = from {
            self.add_edge(f, to);
        }
    }

    pub fn len(&self) -> usize {
        self.instance.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// Finish construction, verifying acyclicity.
    pub fn build(self) -> Result<TaskGraph, CycleError> {
        let n = self.instance.len();
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut seen: HashSet<(TaskId, TaskId)> = HashSet::with_capacity(self.edges.len());
        for (from, to) in self.edges {
            assert!(from.index() < n && to.index() < n, "edge references unknown node");
            if seen.insert((from, to)) {
                succs[from.index()].push(to);
                preds[to.index()].push(from);
            }
        }
        let graph = TaskGraph { instance: self.instance, labels: self.labels, succs, preds };
        if graph.topo_order().len() != n {
            return Err(CycleError);
        }
        Ok(graph)
    }
}

impl TaskGraph {
    /// A graph of independent tasks (no edges).
    pub fn independent(instance: Instance) -> Self {
        let n = instance.len();
        TaskGraph {
            instance,
            labels: vec!["task"; n],
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    #[inline]
    pub fn label(&self, id: TaskId) -> &'static str {
        self.labels[id.index()]
    }

    #[inline]
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.index()]
    }

    #[inline]
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.index()]
    }

    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.instance.ids().filter(|&id| self.preds[id.index()].is_empty()).collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.instance.ids().filter(|&id| self.succs[id.index()].is_empty()).collect()
    }

    /// Kahn topological order. Shorter than `len()` iff the graph is cyclic
    /// (never the case after a successful [`DagBuilder::build`]).
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.len();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<TaskId> =
            self.instance.ids().filter(|id| indegree[id.index()] == 0).collect();
        while let Some(id) = stack.pop() {
            order.push(id);
            for &s in &self.succs[id.index()] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    stack.push(s);
                }
            }
        }
        order
    }

    /// Replace the priorities of all tasks (e.g. with bottom-level ranks).
    pub fn set_priorities(&mut self, priorities: &[f64]) {
        assert_eq!(priorities.len(), self.len());
        for (i, &p) in priorities.iter().enumerate() {
            self.instance.set_priority(TaskId(i as u32), p);
        }
    }

    /// Count nodes per label (e.g. kernels per type), sorted by label.
    pub fn label_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut hist: Vec<(&'static str, usize)> = Vec::new();
        for &l in &self.labels {
            match hist.iter_mut().find(|(name, _)| *name == l) {
                Some((_, c)) => *c += 1,
                None => hist.push((l, 1)),
            }
        }
        hist.sort_by_key(|&(name, _)| name);
        hist
    }
}

/// Tracks which tasks are ready as predecessors complete; the runtime
/// simulator's dependency-release mechanism.
#[derive(Clone, Debug)]
pub struct ReadyTracker {
    indegree: Vec<usize>,
    remaining: usize,
}

impl ReadyTracker {
    pub fn new(graph: &TaskGraph) -> Self {
        ReadyTracker {
            indegree: graph.instance().ids().map(|id| graph.predecessors(id).len()).collect(),
            remaining: graph.len(),
        }
    }

    /// Tasks ready at time zero.
    pub fn initial_ready(&self, graph: &TaskGraph) -> Vec<TaskId> {
        graph.sources()
    }

    /// Record completion of `task`; returns the tasks that just became ready.
    pub fn complete(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        let mut ready = Vec::new();
        self.complete_into(graph, task, &mut ready);
        ready
    }

    /// Allocation-free variant of [`ReadyTracker::complete`]: appends the
    /// newly-ready tasks to `out`. The simulator's kernel workload calls
    /// this once per completion with a pooled buffer.
    pub fn complete_into(&mut self, graph: &TaskGraph, task: TaskId, out: &mut Vec<TaskId>) {
        self.remaining -= 1;
        for &s in graph.successors(task) {
            self.indegree[s.index()] -= 1;
            if self.indegree[s.index()] == 0 {
                out.push(s);
            }
        }
    }

    /// Number of tasks not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Verify that a schedule respects the graph's precedence constraints:
/// every completed run starts no earlier than the completion of each of its
/// predecessors' completed runs.
pub fn check_precedence(
    graph: &TaskGraph,
    schedule: &heteroprio_core::Schedule,
) -> Result<(), String> {
    let mut end_of = vec![f64::NAN; graph.len()];
    let mut start_of = vec![f64::NAN; graph.len()];
    for r in &schedule.runs {
        end_of[r.task.index()] = r.end;
        start_of[r.task.index()] = r.start;
    }
    for id in graph.instance().ids() {
        for &p in graph.predecessors(id) {
            let (s, e) = (start_of[id.index()], end_of[p.index()]);
            // Negated on purpose: a missing run leaves NaN, which must fail.
            if !approx_le(e, s) {
                return Err(format!("{id} starts at {s} before predecessor {p} ends at {e}"));
            }
        }
    }
    // Aborted runs must also start after the task's predecessors completed.
    for r in &schedule.aborted {
        for &p in graph.predecessors(r.task) {
            let e = end_of[p.index()];
            if !approx_le(e, r.start) {
                return Err(format!(
                    "aborted run of {} starts at {} before predecessor {p} ends at {e}",
                    r.task, r.start
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a → b, a → c, b → d, c → d
        let mut b = DagBuilder::new();
        let a = b.add_task(Task::new(1.0, 1.0), "a");
        let x = b.add_task(Task::new(1.0, 1.0), "b");
        let y = b.add_task(Task::new(1.0, 1.0), "c");
        let d = b.add_task(Task::new(1.0, 1.0), "d");
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
        assert_eq!(g.predecessors(TaskId(3)).len(), 2);
    }

    #[test]
    fn topo_order_is_consistent() {
        let g = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), 4);
        let pos = |id: TaskId| order.iter().position(|&x| x == id).unwrap();
        for id in g.instance().ids() {
            for &s in g.successors(id) {
                assert!(pos(id) < pos(s));
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = DagBuilder::new();
        let x = b.add_task(Task::new(1.0, 1.0), "x");
        let y = b.add_task(Task::new(1.0, 1.0), "y");
        b.add_edge(x, y);
        b.add_edge(y, x);
        assert_eq!(b.build().unwrap_err(), CycleError);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let mut b = DagBuilder::new();
        let x = b.add_task(Task::new(1.0, 1.0), "x");
        let y = b.add_task(Task::new(1.0, 1.0), "y");
        b.add_edge(x, y);
        b.add_edge(x, y);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn ready_tracker_releases_in_waves() {
        let g = diamond();
        let mut rt = ReadyTracker::new(&g);
        assert_eq!(rt.initial_ready(&g), vec![TaskId(0)]);
        assert_eq!(rt.remaining(), 4);
        let mut next = rt.complete(&g, TaskId(0));
        next.sort();
        assert_eq!(next, vec![TaskId(1), TaskId(2)]);
        assert!(rt.complete(&g, TaskId(1)).is_empty());
        assert_eq!(rt.complete(&g, TaskId(2)), vec![TaskId(3)]);
        assert!(rt.complete(&g, TaskId(3)).is_empty());
        assert!(rt.is_done());
    }

    #[test]
    fn precedence_check_catches_violations() {
        use heteroprio_core::{Schedule, TaskRun, WorkerId};
        let g = diamond();
        let mut sched = Schedule::new();
        // Serial valid schedule on one worker id 0.
        for (i, (s, e)) in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)].iter().enumerate() {
            sched.runs.push(TaskRun {
                task: TaskId(i as u32),
                worker: WorkerId(0),
                start: *s,
                end: *e,
            });
        }
        check_precedence(&g, &sched).unwrap();
        // Make the sink start before its predecessors complete.
        sched.runs[3].start = 0.5;
        sched.runs[3].end = 1.5;
        assert!(check_precedence(&g, &sched).is_err());
    }

    #[test]
    fn set_priorities_rewrites_instance() {
        let mut g = diamond();
        g.set_priorities(&[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(g.instance().task(TaskId(0)).priority, 4.0);
        assert_eq!(g.instance().task(TaskId(3)).priority, 1.0);
        assert_eq!(g.label(TaskId(0)), "a");
    }

    #[test]
    fn label_histogram_counts() {
        let g = diamond();
        let hist = g.label_histogram();
        assert_eq!(hist.len(), 4);
        assert!(hist.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn independent_graph_has_no_edges() {
        let g = TaskGraph::independent(Instance::from_times(&[(1.0, 1.0), (2.0, 2.0)]));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sources().len(), 2);
    }
}
