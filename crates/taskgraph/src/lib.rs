#![forbid(unsafe_code)]

//! # heteroprio-taskgraph
//!
//! Task-graph substrate for the HeteroPrio reproduction: DAG representation
//! with dependency-release tracking, bottom-level ranking (the `avg` / `min`
//! priority schemes of the paper's §6.2), and generators for the tiled
//! Cholesky, QR and LU factorizations evaluated in the paper, plus synthetic
//! graphs for testing.
//!
//! ```
//! use heteroprio_taskgraph::{cholesky, ConstTiming};
//! use heteroprio_taskgraph::rank::{critical_path, WeightScheme};
//!
//! let g = cholesky(4, &ConstTiming { cpu: 1.0, gpu: 1.0 });
//! assert_eq!(g.len(), 20); // 4 POTRF + 6 TRSM + 6 SYRK + 4 GEMM
//! assert_eq!(critical_path(&g, WeightScheme::Avg), 10.0);
//! ```

pub mod dag;
pub mod generators;
pub mod kernels;
pub mod rank;

pub use dag::{check_precedence, CycleError, DagBuilder, ReadyTracker, TaskGraph};
pub use generators::{
    chain, cholesky, expected_task_count, fork_join, lu, qr, random_layered, Factorization,
    RandomDagParams,
};
pub use kernels::{ConstTiming, Kernel, KernelTiming};
pub use rank::{apply_bottom_level_priorities, bottom_levels, critical_path, WeightScheme};
