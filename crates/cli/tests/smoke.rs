//! End-to-end smoke test of the installed binary: `schedule --trace`
//! and `dag --trace` must write parseable trace files and report them.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_heteroprio-cli"))
}

/// A scratch path that each test owns (process id keeps parallel test
/// binaries from colliding).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("heteroprio-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn schedule_trace_writes_a_parseable_chrome_trace() {
    let instance = scratch("schedule.txt");
    std::fs::write(&instance, "8 1\n4 1\n2 2\n1 4\n# comment\n3 3\n").unwrap();
    let trace = scratch("schedule-trace.json");

    let out = bin()
        .args(["schedule", "--cpus", "2", "--gpus", "1", "--summary", "--trace"])
        .arg(&trace)
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace summary"), "--summary missing from report:\n{stdout}");
    assert!(stdout.contains(&format!("wrote {}", trace.display())));

    let doc = std::fs::read_to_string(&trace).expect("trace file written");
    let v = heteroprio_trace::json::parse(&doc).expect("trace file is valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let slices =
        events.iter().filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("task")).count();
    assert_eq!(slices, 5, "one complete slice per task");

    let _ = std::fs::remove_file(&instance);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn audit_accepts_a_clean_trace_and_rejects_a_corrupted_one() {
    let instance = scratch("audit-instance.txt");
    std::fs::write(&instance, "8 1\n4 1\n2 2\n1 4\n3 3\n").unwrap();
    let trace = scratch("audit-trace.jsonl");

    // Record a JSONL trace of a HeteroPrio run.
    let out = bin()
        .args(["schedule", "--cpus", "2", "--gpus", "1", "--trace"])
        .arg(&trace)
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli schedule");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Auditing the recorded trace is clean: exit 0.
    let out = bin()
        .args(["audit", "--cpus", "2", "--gpus", "1", "--trace"])
        .arg(&trace)
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli audit");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("audit clean"), "clean audit missing:\n{stdout}");

    // Corrupt the trace: flip every GPU front-pop into a back-pop. The
    // auditor must reject it, naming the violated rule on stderr.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("front"), "expected at least one GPU pop in:\n{text}");
    std::fs::write(&trace, text.replace("front", "back")).unwrap();
    let out = bin()
        .args(["audit", "--cpus", "2", "--gpus", "1", "--trace"])
        .arg(&trace)
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli audit (corrupted)");
    assert!(!out.status.success(), "corrupted trace must fail the audit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pop_order_consistency"), "rule name missing from stderr:\n{stderr}");

    // A syntactically broken line is a hard error, not a clean audit.
    std::fs::write(&trace, "{\"type\":\"task_ready\",\"time\":0}\nnot json\n").unwrap();
    let out = bin()
        .args(["audit", "--cpus", "2", "--gpus", "1", "--trace"])
        .arg(&trace)
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli audit (malformed)");
    assert!(!out.status.success(), "malformed JSONL must fail");

    let _ = std::fs::remove_file(&instance);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn audit_flag_and_workload_form_audit_clean() {
    let instance = scratch("audit-flag.txt");
    std::fs::write(&instance, "28.8 1.0\n8.72 1.0\n1.72 1.0\n1.0 3.0\n2.0 6.0\n").unwrap();
    let out = bin()
        .args(["schedule", "--cpus", "2", "--gpus", "1", "--audit"])
        .arg(&instance)
        .output()
        .expect("run heteroprio-cli schedule --audit");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("audit clean"), "audit render missing:\n{stdout}");
    assert!(stdout.contains("enforced"), "independent HP certificate is enforced:\n{stdout}");

    // Workload form: audits a fresh fault-free runtime execution.
    let out = bin()
        .args(["audit", "cholesky", "4", "--cpus", "2", "--gpus", "1"])
        .output()
        .expect("run heteroprio-cli audit cholesky");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("audit clean"), "audit render missing:\n{stdout}");

    let _ = std::fs::remove_file(&instance);
}

#[test]
fn dag_trace_writes_jsonl_when_asked() {
    let trace = scratch("dag-trace.jsonl");
    let out = bin()
        .args(["dag", "cholesky", "4", "--cpus", "2", "--gpus", "1", "--trace"])
        .arg(&trace)
        .output()
        .expect("run heteroprio-cli");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = heteroprio_trace::json::parse(line).expect("every JSONL line parses");
        assert!(v.get("type").is_some(), "line carries a type tag: {line}");
    }

    let _ = std::fs::remove_file(&trace);
}
