//! The plain-text instance format of the CLI.
//!
//! One task per non-empty line: one execution time per resource class
//! followed by an optional priority, whitespace-separated; `#` starts a
//! comment. Times must be positive. The classic two-class form is
//! `<cpu_time> <gpu_time> [priority]`; under `--platform` with `k`
//! classes a line carries `k` times in class order.
//!
//! ```text
//! # four tasks
//! 28.8 1.0      # a GEMM-like task
//! 8.72 1.0 5
//! 1.72 1.0
//! 1.0  3.0
//! ```

use heteroprio_core::{Instance, Task};
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The column label used in error messages for class `c` of `k`.
fn time_label(c: usize, k: usize) -> String {
    if k == 2 {
        [String::from("cpu time"), String::from("gpu time")][c].clone()
    } else {
        format!("class {c} time")
    }
}

/// Parse an instance in the classic two-class format.
pub fn parse_instance(text: &str) -> Result<Instance, ParseError> {
    parse_instance_k(text, 2)
}

/// Parse an instance whose lines carry `k` per-class times (plus an
/// optional trailing priority) — the `--platform` form of the format.
pub fn parse_instance_k(text: &str, k: usize) -> Result<Instance, ParseError> {
    assert!(k >= 2, "instances need at least two resource classes");
    let mut instance = Instance::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() < k || fields.len() > k + 1 {
            let shape = if k == 2 {
                "cpu gpu [priority]".to_string()
            } else {
                format!("{k} times [priority]")
            };
            return Err(ParseError {
                line,
                message: format!("expected `{shape}`, found {} field(s)", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64, ParseError> {
            s.parse::<f64>()
                .map_err(|e| ParseError { line, message: format!("bad {what} `{s}`: {e}") })
        };
        let mut times = Vec::with_capacity(k);
        for (c, field) in fields.iter().take(k).enumerate() {
            let t = parse(field, &time_label(c, k))?;
            if !(t > 0.0 && t.is_finite()) {
                return Err(ParseError {
                    line,
                    message: "times must be positive and finite".to_string(),
                });
            }
            times.push(t);
        }
        let mut task = Task::from_times(&times);
        if let Some(p) = fields.get(k) {
            task = task.with_priority(parse(p, "priority")?);
        }
        instance.push(task);
    }
    Ok(instance)
}

/// Serialize an instance back to the text format (`k` times per line).
pub fn serialize_instance(instance: &Instance) -> String {
    let mut out = if instance.k() == 2 {
        String::from("# cpu_time gpu_time [priority]\n")
    } else {
        format!("# {} per-class times [priority]\n", instance.k())
    };
    for t in instance.tasks() {
        for (c, time) in t.times().iter().enumerate() {
            if c > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{time}");
        }
        // lint: allow(float-eq): exact sentinel — 0.0 is the "no explicit priority" default,
        // set literally and round-tripped exactly through the text format.
        if t.priority != 0.0 {
            let _ = write!(out, " {}", t.priority);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::TaskId;

    #[test]
    fn parses_basic_file() {
        let inst = parse_instance("1.0 2.0\n3.0 4.0 7.5\n").unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.task(TaskId(1)).priority, 7.5);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let inst = parse_instance("# header\n\n1 1 # trailing\n   \n2 2\n").unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_instance("1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("field"));
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse_instance("1.0 abc\n").unwrap_err();
        assert!(err.message.contains("gpu time"));
    }

    #[test]
    fn rejects_non_positive_times() {
        assert!(parse_instance("0 1\n").is_err());
        assert!(parse_instance("1 -2\n").is_err());
    }

    #[test]
    fn roundtrips() {
        let text = "1.5 2.5\n3 4 9\n";
        let inst = parse_instance(text).unwrap();
        let back = serialize_instance(&inst);
        let again = parse_instance(&back).unwrap();
        assert_eq!(inst, again);
    }

    #[test]
    fn three_class_lines_parse_and_roundtrip() {
        let inst = parse_instance_k("9 3 1\n4 4 4 2.5\n", 3).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.k(), 3);
        assert_eq!(inst.task(TaskId(0)).times(), &[9.0, 3.0, 1.0]);
        assert_eq!(inst.task(TaskId(1)).priority, 2.5);
        let back = serialize_instance(&inst);
        assert_eq!(parse_instance_k(&back, 3).unwrap(), inst);
    }

    #[test]
    fn three_class_errors_name_the_class_column() {
        let err = parse_instance_k("1 2 oops\n", 3).unwrap_err();
        assert!(err.message.contains("class 2 time"), "{}", err.message);
        let err = parse_instance_k("1 2\n", 3).unwrap_err();
        assert!(err.message.contains("3 times"), "{}", err.message);
    }

    #[test]
    fn reports_correct_line_numbers() {
        let err = parse_instance("1 1\n# ok\nbroken\n").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
