//! The plain-text instance format of the CLI.
//!
//! One task per non-empty line: `<cpu_time> <gpu_time> [priority]`,
//! whitespace-separated; `#` starts a comment. Times must be positive.
//!
//! ```text
//! # four tasks
//! 28.8 1.0      # a GEMM-like task
//! 8.72 1.0 5
//! 1.72 1.0
//! 1.0  3.0
//! ```

use heteroprio_core::{Instance, Task};
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an instance from the text format.
pub fn parse_instance(text: &str) -> Result<Instance, ParseError> {
    let mut instance = Instance::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(ParseError {
                line,
                message: format!("expected `cpu gpu [priority]`, found {} field(s)", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64, ParseError> {
            s.parse::<f64>()
                .map_err(|e| ParseError { line, message: format!("bad {what} `{s}`: {e}") })
        };
        let cpu = parse(fields[0], "cpu time")?;
        let gpu = parse(fields[1], "gpu time")?;
        if !(cpu > 0.0 && cpu.is_finite() && gpu > 0.0 && gpu.is_finite()) {
            return Err(ParseError {
                line,
                message: "times must be positive and finite".to_string(),
            });
        }
        let mut task = Task::new(cpu, gpu);
        if let Some(p) = fields.get(2) {
            task = task.with_priority(parse(p, "priority")?);
        }
        instance.push(task);
    }
    Ok(instance)
}

/// Serialize an instance back to the text format.
pub fn serialize_instance(instance: &Instance) -> String {
    let mut out = String::from("# cpu_time gpu_time [priority]\n");
    for t in instance.tasks() {
        // lint: allow(float-eq): exact sentinel — 0.0 is the "no explicit priority" default,
        // set literally and round-tripped exactly through the text format.
        if t.priority != 0.0 {
            let _ = writeln!(out, "{} {} {}", t.cpu_time, t.gpu_time, t.priority);
        } else {
            let _ = writeln!(out, "{} {}", t.cpu_time, t.gpu_time);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::TaskId;

    #[test]
    fn parses_basic_file() {
        let inst = parse_instance("1.0 2.0\n3.0 4.0 7.5\n").unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.task(TaskId(1)).priority, 7.5);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let inst = parse_instance("# header\n\n1 1 # trailing\n   \n2 2\n").unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_instance("1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("field"));
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse_instance("1.0 abc\n").unwrap_err();
        assert!(err.message.contains("gpu time"));
    }

    #[test]
    fn rejects_non_positive_times() {
        assert!(parse_instance("0 1\n").is_err());
        assert!(parse_instance("1 -2\n").is_err());
    }

    #[test]
    fn roundtrips() {
        let text = "1.5 2.5\n3 4 9\n";
        let inst = parse_instance(text).unwrap();
        let back = serialize_instance(&inst);
        let again = parse_instance(&back).unwrap();
        assert_eq!(inst, again);
    }

    #[test]
    fn reports_correct_line_numbers() {
        let err = parse_instance("1 1\n# ok\nbroken\n").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
