//! The CLI's subcommand implementations, kept binary-free so they can be
//! unit-tested. Each command returns the text it would print.

use crate::format::{parse_instance, serialize_instance};
use heteroprio_bounds::{combined_lower_bound, optimal_makespan, MAX_EXACT_TASKS};
use heteroprio_core::gantt::to_svg;
use heteroprio_core::{
    heteroprio, HeteroPrioConfig, Instance, Platform, ResourceKind, Schedule,
};
use heteroprio_schedulers::{dualhp_independent, heft, heuristic_schedule, HeftVariant, Heuristic};
use heteroprio_taskgraph::{Factorization, TaskGraph, WeightScheme};
use heteroprio_workloads::{independent_instance, ChameleonTiming};
use std::fmt::Write as _;

/// Which scheduler the `schedule` command runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    HeteroPrio,
    HeteroPrioNoSpoliation,
    DualHp,
    Heft,
    MinMin,
    MaxMin,
    Sufferage,
    Mct,
}

impl Algo {
    pub fn parse(s: &str) -> Option<Algo> {
        Some(match s.to_ascii_lowercase().as_str() {
            "hp" | "heteroprio" => Algo::HeteroPrio,
            "hp-ns" | "heteroprio-ns" => Algo::HeteroPrioNoSpoliation,
            "dualhp" => Algo::DualHp,
            "heft" => Algo::Heft,
            "minmin" => Algo::MinMin,
            "maxmin" => Algo::MaxMin,
            "sufferage" => Algo::Sufferage,
            "mct" => Algo::Mct,
            _ => return None,
        })
    }

    pub const NAMES: &'static str = "hp, hp-ns, dualhp, heft, minmin, maxmin, sufferage, mct";

    pub fn run(self, instance: &Instance, platform: &Platform) -> Schedule {
        match self {
            Algo::HeteroPrio => heteroprio(instance, platform, &HeteroPrioConfig::new()).schedule,
            Algo::HeteroPrioNoSpoliation => {
                heteroprio(instance, platform, &HeteroPrioConfig::without_spoliation()).schedule
            }
            Algo::DualHp => dualhp_independent(instance, platform),
            Algo::Heft => heft(
                &TaskGraph::independent(instance.clone()),
                platform,
                WeightScheme::Avg,
                HeftVariant::Insertion,
            ),
            Algo::MinMin => heuristic_schedule(Heuristic::MinMin, instance, platform),
            Algo::MaxMin => heuristic_schedule(Heuristic::MaxMin, instance, platform),
            Algo::Sufferage => heuristic_schedule(Heuristic::Sufferage, instance, platform),
            Algo::Mct => heuristic_schedule(Heuristic::Mct, instance, platform),
        }
    }
}

/// `schedule`: run one scheduler on an instance file's contents.
/// Returns `(report, optional svg)`.
pub fn cmd_schedule(
    text: &str,
    platform: &Platform,
    algo: Algo,
    want_svg: bool,
) -> Result<(String, Option<String>), String> {
    let instance = parse_instance(text).map_err(|e| e.to_string())?;
    if instance.is_empty() {
        return Err("instance is empty".to_string());
    }
    let schedule = algo.run(&instance, platform);
    schedule
        .validate(&instance, platform)
        .map_err(|e| format!("internal error: invalid schedule: {e}"))?;
    let lb = combined_lower_bound(&instance, platform);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} tasks on {} CPUs + {} GPUs, algorithm {:?}",
        instance.len(),
        platform.cpus,
        platform.gpus,
        algo
    );
    let _ = writeln!(out, "makespan    : {:.4}", schedule.makespan());
    let _ = writeln!(out, "lower bound : {lb:.4}");
    let _ = writeln!(out, "ratio       : {:.4}", schedule.makespan() / lb);
    let _ = writeln!(out, "spoliations : {}", schedule.spoliation_count());
    for kind in ResourceKind::BOTH {
        let _ = writeln!(
            out,
            "{kind} busy {:.4}, idle {:.4}",
            schedule.busy_time(platform, kind),
            schedule.idle_time(platform, kind, schedule.makespan()),
        );
    }
    out.push_str(&schedule.render_ascii(platform, 72));
    let svg = want_svg.then(|| to_svg(&schedule, &instance, platform));
    Ok((out, svg))
}

/// `bounds`: print every lower bound we can compute (plus the exact optimum
/// for small instances).
pub fn cmd_bounds(text: &str, platform: &Platform) -> Result<String, String> {
    let instance = parse_instance(text).map_err(|e| e.to_string())?;
    let ab = heteroprio_bounds::area_bound(&instance, platform);
    let mut out = String::new();
    let _ = writeln!(out, "tasks          : {}", instance.len());
    let _ = writeln!(out, "area bound     : {:.6}", ab.value);
    let _ = writeln!(out, "max min-time   : {:.6}", instance.max_min_time());
    let _ = writeln!(
        out,
        "combined bound : {:.6}",
        combined_lower_bound(&instance, platform)
    );
    if instance.len() <= MAX_EXACT_TASKS && !instance.is_empty() {
        let opt = optimal_makespan(&instance, platform);
        let _ = writeln!(out, "exact optimum  : {:.6}", opt.makespan);
    } else {
        let _ = writeln!(out, "exact optimum  : (instance too large; <= {MAX_EXACT_TASKS} tasks)");
    }
    let _ = writeln!(
        out,
        "proven HeteroPrio ratio for this shape: {:.4}",
        heteroprio_core::proven_upper_bound(platform)
    );
    Ok(out)
}

/// Which DAG scheduler the `dag` command runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagAlgoArg {
    HeteroPrio,
    DualHpFifo,
    DualHp,
    Heft,
    List,
}

impl DagAlgoArg {
    pub fn parse(s: &str) -> Option<DagAlgoArg> {
        Some(match s.to_ascii_lowercase().as_str() {
            "hp" | "heteroprio" => DagAlgoArg::HeteroPrio,
            "dualhp-fifo" => DagAlgoArg::DualHpFifo,
            "dualhp" => DagAlgoArg::DualHp,
            "heft" => DagAlgoArg::Heft,
            "list" => DagAlgoArg::List,
            _ => return None,
        })
    }

    pub const NAMES: &'static str = "hp, dualhp, dualhp-fifo, heft, list";

    fn scheduler(self) -> heteroprio_runtime::Scheduler {
        use heteroprio_runtime::Scheduler;
        use heteroprio_schedulers::DualHpRank;
        match self {
            DagAlgoArg::HeteroPrio => Scheduler::HeteroPrio(WeightScheme::Min),
            DagAlgoArg::DualHpFifo => Scheduler::DualHp(DualHpRank::Fifo, WeightScheme::Min),
            DagAlgoArg::DualHp => Scheduler::DualHp(DualHpRank::Priority, WeightScheme::Min),
            DagAlgoArg::Heft => Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion),
            DagAlgoArg::List => Scheduler::PriorityList(WeightScheme::Min),
        }
    }
}

/// `dag`: generate a factorization DAG, submit it through the runtime and
/// schedule it. Returns `(report, optional svg)`.
pub fn cmd_dag(
    kind: &str,
    n: usize,
    platform: &Platform,
    algo: DagAlgoArg,
    want_svg: bool,
) -> Result<(String, Option<String>), String> {
    use heteroprio_runtime::{submit_cholesky, submit_lu, submit_qr, Runtime};
    if n == 0 {
        return Err("need at least one tile".to_string());
    }
    let mut rt = Runtime::new(*platform);
    match kind.to_ascii_lowercase().as_str() {
        "cholesky" => submit_cholesky(&mut rt, n, &ChameleonTiming),
        "qr" => submit_qr(&mut rt, n, &ChameleonTiming),
        "lu" => submit_lu(&mut rt, n, &ChameleonTiming),
        other => return Err(format!("unknown workload `{other}` (cholesky, qr, lu)")),
    }
    let report = rt.run(algo.scheduler())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{kind} N={n}: {} tasks, {} edges on {} CPUs + {} GPUs ({algo:?})",
        report.graph.len(),
        report.graph.edge_count(),
        platform.cpus,
        platform.gpus
    );
    let _ = writeln!(out, "makespan    : {:.2} ms", report.makespan);
    let _ = writeln!(out, "lower bound : {:.2} ms", report.lower_bound);
    let _ = writeln!(out, "ratio       : {:.4}", report.ratio());
    let _ = writeln!(out, "spoliations : {}", report.spoliations);
    for (label, count) in report.graph.label_histogram() {
        let _ = writeln!(out, "  {label:<8} x{count}");
    }
    let svg =
        want_svg.then(|| to_svg(&report.schedule, report.graph.instance(), platform));
    Ok((out, svg))
}

/// `gen`: emit the independent-task kernel mix of a factorization in the
/// CLI's instance format.
pub fn cmd_gen(kind: &str, n: usize) -> Result<String, String> {
    let f = match kind.to_ascii_lowercase().as_str() {
        "cholesky" => Factorization::Cholesky,
        "qr" => Factorization::Qr,
        "lu" => Factorization::Lu,
        other => return Err(format!("unknown workload `{other}` (cholesky, qr, lu)")),
    };
    if n == 0 {
        return Err("need at least one tile".to_string());
    }
    let instance = independent_instance(f, n, &ChameleonTiming);
    Ok(serialize_instance(&instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "28.8 1.0\n8.72 1.0\n1.72 1.0\n1.0 3.0\n2.0 6.0\n";

    #[test]
    fn schedule_reports_every_field() {
        let plat = Platform::new(2, 1);
        let (report, svg) = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, true).unwrap();
        assert!(report.contains("makespan"));
        assert!(report.contains("ratio"));
        assert!(report.contains("CPU"));
        assert!(svg.unwrap().starts_with("<svg"));
    }

    #[test]
    fn all_algorithms_run_from_the_cli_layer() {
        let plat = Platform::new(2, 1);
        for algo in [
            Algo::HeteroPrio,
            Algo::HeteroPrioNoSpoliation,
            Algo::DualHp,
            Algo::Heft,
            Algo::MinMin,
            Algo::MaxMin,
            Algo::Sufferage,
            Algo::Mct,
        ] {
            let (report, _) = cmd_schedule(SAMPLE, &plat, algo, false).unwrap();
            assert!(report.contains("makespan"), "{algo:?}");
        }
    }

    #[test]
    fn algo_names_parse() {
        assert_eq!(Algo::parse("HP"), Some(Algo::HeteroPrio));
        assert_eq!(Algo::parse("dualhp"), Some(Algo::DualHp));
        assert_eq!(Algo::parse("sufferage"), Some(Algo::Sufferage));
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn bounds_includes_exact_for_small_instances() {
        let plat = Platform::new(1, 1);
        let out = cmd_bounds("2 1\n1 2\n", &plat).unwrap();
        assert!(out.contains("exact optimum  : 1"), "{out}");
        assert!(out.contains("1.6180"), "{out}"); // φ for (1,1)
    }

    #[test]
    fn gen_output_reparses() {
        let text = cmd_gen("cholesky", 4).unwrap();
        let inst = parse_instance(&text).unwrap();
        assert_eq!(inst.len(), 20);
        assert!(cmd_gen("fft", 4).is_err());
    }

    #[test]
    fn dag_command_runs_every_scheduler() {
        let plat = Platform::new(3, 2);
        for algo in [
            DagAlgoArg::HeteroPrio,
            DagAlgoArg::DualHpFifo,
            DagAlgoArg::DualHp,
            DagAlgoArg::Heft,
            DagAlgoArg::List,
        ] {
            let (report, svg) = cmd_dag("cholesky", 5, &plat, algo, algo == DagAlgoArg::HeteroPrio)
                .unwrap();
            assert!(report.contains("makespan"), "{algo:?}");
            assert!(report.contains("DPOTRF"), "{algo:?}");
            if algo == DagAlgoArg::HeteroPrio {
                assert!(svg.unwrap().starts_with("<svg"));
            }
        }
        assert!(cmd_dag("fft", 5, &plat, DagAlgoArg::HeteroPrio, false).is_err());
        assert!(cmd_dag("qr", 0, &plat, DagAlgoArg::HeteroPrio, false).is_err());
    }

    #[test]
    fn dag_algo_names_parse() {
        assert_eq!(DagAlgoArg::parse("hp"), Some(DagAlgoArg::HeteroPrio));
        assert_eq!(DagAlgoArg::parse("dualhp-fifo"), Some(DagAlgoArg::DualHpFifo));
        assert_eq!(DagAlgoArg::parse("LIST"), Some(DagAlgoArg::List));
        assert_eq!(DagAlgoArg::parse("??"), None);
    }

    #[test]
    fn bad_input_is_reported() {
        let plat = Platform::new(1, 1);
        let err = cmd_schedule("garbage here too many fields\n", &plat, Algo::HeteroPrio, false)
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(cmd_schedule("", &plat, Algo::HeteroPrio, false).is_err());
    }
}
