//! The CLI's subcommand implementations, kept binary-free so they can be
//! unit-tested. Each command returns the text it would print.

use crate::format::{parse_instance_k, serialize_instance};
use heteroprio_audit::{audit, schedule_from_events, AuditOptions, AuditReport, StreamAuditor};
use heteroprio_bounds::{combined_lower_bound, optimal_makespan, MAX_EXACT_TASKS};
use heteroprio_core::gantt::to_svg;
use heteroprio_core::kernel::metric;
use heteroprio_core::kernel::EngineError;
use heteroprio_core::{
    heteroprio, heteroprio_durable, heteroprio_metered, heteroprio_resume, CheckpointStore,
    ClassTable, CrashPlan, DurabilityOptions, FileCheckpointStore, HeteroPrioConfig, Instance,
    MeteredJournal, Platform, Schedule,
};
use heteroprio_metrics::{InMemoryRegistry, MetricsRegistry, NullRegistry};
use heteroprio_runtime::DurableOutcome;
use heteroprio_schedulers::{dualhp_independent, heft, heuristic_schedule, HeftVariant, Heuristic};
use heteroprio_simulator::{FaultPlan, FaultSpec, RetryPolicy};
use heteroprio_taskgraph::{Factorization, TaskGraph, WeightScheme};
use heteroprio_trace::{
    chrome_trace, jsonl, parse_jsonl, ChromeTraceOptions, FileJournal, Journal, JournalSink,
    SchedEvent, TeeSink, TraceSummary, VecSink,
};
use heteroprio_workloads::{independent_instance, ChameleonTiming};
use std::fmt::Write as _;

/// Extra outputs a command may produce alongside its text report.
#[derive(Clone, Debug, Default)]
pub struct OutputOpts {
    /// Render the schedule as an SVG Gantt chart.
    pub svg: bool,
    /// Export the scheduler's event stream to this file. A `.jsonl`
    /// extension selects the JSONL exporter; anything else gets Chrome
    /// `trace_event` JSON (open in <https://ui.perfetto.dev>).
    pub trace: Option<String>,
    /// Append a per-worker busy/idle/aborted summary to the report.
    pub summary: bool,
    /// Audit the run against the paper's invariants (see
    /// [`heteroprio_audit`]) and fail if any rule is violated.
    pub audit: bool,
    /// Run the kernel under an [`InMemoryRegistry`] and append the
    /// counter/gauge/histogram report. The trace-event counter is
    /// cross-checked against [`TraceSummary::events_recorded`], so a
    /// sink that drops events fails loudly instead of silently.
    pub metrics: bool,
    /// Journaling, checkpointing and crash/resume options.
    pub durable: DurableOpts,
}

impl OutputOpts {
    fn wants_events(&self) -> bool {
        self.trace.is_some() || self.summary || self.audit || self.metrics
    }
}

/// Durability options (`--journal`, `--crash-at`, `--snapshot`,
/// `--checkpoint-every`) shared by `schedule`, `dag` and the `resume`
/// subcommand.
#[derive(Clone, Debug, Default)]
pub struct DurableOpts {
    /// `--journal PATH`: append the event stream to a crash-durable
    /// journal as the kernel emits it.
    pub journal: Option<String>,
    /// `--crash-at N`: deterministically kill the run right after the Nth
    /// journaled event (a crash-injection harness, not an error).
    pub crash_at: Option<u64>,
    /// `--snapshot PATH`: checkpoint the kernel state to this file while
    /// running; on `resume`, load it to skip replaying the full journal.
    pub snapshot: Option<String>,
    /// `--checkpoint-every N`: events between checkpoints (default 64).
    pub checkpoint_every: Option<u64>,
    /// Set by the `resume` subcommand: recover the journal (and snapshot,
    /// if given) and continue the interrupted run instead of starting over.
    pub resume: bool,
}

impl DurableOpts {
    pub fn active(&self) -> bool {
        self.journal.is_some() || self.crash_at.is_some() || self.resume
    }
}

/// Fault-injection options for the `dag` command (`--faults`,
/// `--exec-jitter`, `--retry-max`, `--fault-seed`).
#[derive(Clone, Debug, Default)]
pub struct FaultOpts {
    /// `--faults SPEC`; see [`heteroprio_simulator::FaultSpec`] for the
    /// grammar (e.g. `gpu@25%`, `w3@10+5,fail=0.05,seed=7`).
    pub spec: Option<String>,
    /// `--exec-jitter J`: multiplicative log-uniform runtime noise.
    pub exec_jitter: f64,
    /// `--retry-max K`: attempts allowed per task (default 3).
    pub retry_max: Option<u32>,
    /// `--fault-seed S`: overrides a `seed=` clause in the spec.
    pub seed: Option<u64>,
}

impl FaultOpts {
    fn active(&self) -> bool {
        // lint: allow(float-eq): exact sentinel — 0.0 means "jitter off", set literally by
        // the flag parser default, never produced by arithmetic.
        self.spec.is_some() || self.exec_jitter != 0.0
    }

    /// Build the concrete plan. `baseline` runs a fault-free execution on
    /// demand when the spec uses `%` times; returns the plan and the
    /// baseline makespan if one was computed.
    fn plan(
        &self,
        table: &ClassTable,
        baseline: impl FnOnce() -> Result<f64, String>,
    ) -> Result<(FaultPlan, Option<f64>), String> {
        let spec = FaultSpec::parse_with(self.spec.as_deref().unwrap_or(""), Some(table))
            .map_err(|e| e.to_string())?;
        let base = if spec.needs_baseline() { Some(baseline()?) } else { None };
        let worker_faults = spec.resolve(&table.platform(), base).map_err(|e| e.to_string())?;
        let mut retry = RetryPolicy::DEFAULT;
        if let Some(k) = self.retry_max {
            retry.max_attempts = k;
        }
        let plan = FaultPlan {
            worker_faults,
            task_failure_prob: spec.task_failure_prob.unwrap_or(0.0),
            exec_jitter: self.exec_jitter,
            seed: self.seed.or(spec.seed).unwrap_or(0),
            retry,
        };
        Ok((plan, base))
    }
}

/// What a command produced: the printed report plus optional artifacts.
#[derive(Clone, Debug)]
pub struct CmdOutput {
    pub report: String,
    pub svg: Option<String>,
    /// `(path, contents)` of the requested trace export.
    pub trace: Option<(String, String)>,
}

/// Resolve the worker platform the user asked for: either a `--platform`
/// spec (`name=count[,name=count...]`) or the classic `--cpus`/`--gpus`
/// pair, which stays a first-class alias for `cpu=M,gpu=N`.
pub fn parse_platform_args(
    spec: Option<&str>,
    cpus: Option<usize>,
    gpus: Option<usize>,
) -> Result<ClassTable, String> {
    match (spec, cpus, gpus) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            Err("--platform replaces --cpus/--gpus; give one or the other".to_string())
        }
        (Some(spec), None, None) => ClassTable::parse(spec).map_err(|e| e.to_string()),
        (None, Some(m), Some(n)) if m > 0 && n > 0 => {
            ClassTable::cpu_gpu(m, n).map_err(|e| e.to_string())
        }
        _ => Err("either --platform name=count,... or both --cpus and --gpus \
                  (positive) are required"
            .to_string()),
    }
}

/// `"2 CPUs + 1 GPUs"`-style rendering of the platform for report headers.
fn describe(table: &ClassTable) -> String {
    table
        .classes()
        .map(|c| format!("{} {}s", table.count(c), table.name(c).to_uppercase()))
        .collect::<Vec<_>>()
        .join(" + ")
}

fn worker_names(table: &ClassTable) -> Vec<String> {
    let platform = table.platform();
    let mut names = Vec::with_capacity(platform.workers());
    for c in table.classes() {
        for i in 0..table.count(c) {
            names.push(format!("{} {i}", table.name(c).to_uppercase()));
        }
    }
    names
}

fn render_trace(events: &[SchedEvent], path: &str, opts: &ChromeTraceOptions) -> String {
    if path.ends_with(".jsonl") {
        jsonl(events)
    } else {
        chrome_trace(events, opts)
    }
}

/// Human-readable digest of a [`TraceSummary`], appended to reports under
/// `--summary`.
fn format_summary(summary: &TraceSummary, table: &ClassTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- trace summary ({} events) --", summary.events_recorded());
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "worker", "busy", "idle", "aborted", "done", "spol"
    );
    let platform = table.platform();
    let names = worker_names(table);
    for w in platform.all_workers() {
        let s = &summary.workers[w.index()];
        let _ = writeln!(
            out,
            "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>6} {:>6}",
            names[w.index()],
            s.busy,
            s.idle,
            s.aborted,
            s.completed,
            s.spoliated
        );
    }
    let _ = writeln!(
        out,
        "spoliations : {} (wasted work {:.4})",
        summary.spoliation_count, summary.wasted_work
    );
    if summary.worker_failures > 0 {
        let downtime: f64 = summary.workers.iter().map(|w| w.downtime).sum();
        let _ = writeln!(
            out,
            "worker down : {} failures, {} recoveries, total downtime {:.4}",
            summary.worker_failures, summary.worker_recoveries, downtime
        );
    }
    if summary.task_failures > 0 || summary.retries > 0 {
        let _ = writeln!(
            out,
            "task faults : {} failures, {} retries",
            summary.task_failures, summary.retries
        );
    }
    if summary.lost_work > 0.0 {
        let _ = writeln!(out, "lost work   : {:.4}", summary.lost_work);
    }
    match summary.first_idle {
        Some(t) => {
            let _ = writeln!(out, "first idle  : {t:.4}");
        }
        None => {
            let _ = writeln!(out, "first idle  : never");
        }
    }
    if summary.queue_pops_front + summary.queue_pops_back > 0 {
        let _ = writeln!(
            out,
            "queue pops  : {} front (GPU), {} back (CPU)",
            summary.queue_pops_front, summary.queue_pops_back
        );
    }
    let _ = writeln!(out, "ready depth : peak {}", summary.max_ready_depth());
    out
}

/// The `--metrics` tail of a report: cross-check the kernel's own
/// trace-event counter against what the sink actually recorded (a mismatch
/// means events were dropped somewhere between the emission funnel and the
/// summary), then append the counter/histogram rendering.
fn metrics_report(registry: &InMemoryRegistry, summary: &TraceSummary) -> Result<String, String> {
    let snapshot = registry.snapshot();
    let counted = snapshot.counter(metric::TRACE_EVENTS_TOTAL).unwrap_or(0);
    let recorded = summary.events_recorded() as u64;
    if counted != recorded {
        return Err(format!(
            "metrics cross-check failed: kernel counted {counted} trace events \
             but the sink recorded {recorded} (events were dropped)"
        ));
    }
    Ok(snapshot.render())
}

/// Which scheduler the `schedule` command runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    HeteroPrio,
    HeteroPrioNoSpoliation,
    DualHp,
    Heft,
    MinMin,
    MaxMin,
    Sufferage,
    Mct,
}

impl Algo {
    pub fn parse(s: &str) -> Option<Algo> {
        Some(match s.to_ascii_lowercase().as_str() {
            "hp" | "heteroprio" => Algo::HeteroPrio,
            "hp-ns" | "heteroprio-ns" => Algo::HeteroPrioNoSpoliation,
            "dualhp" => Algo::DualHp,
            "heft" => Algo::Heft,
            "minmin" => Algo::MinMin,
            "maxmin" => Algo::MaxMin,
            "sufferage" => Algo::Sufferage,
            "mct" => Algo::Mct,
            _ => return None,
        })
    }

    pub const NAMES: &'static str = "hp, hp-ns, dualhp, heft, minmin, maxmin, sufferage, mct";

    /// The engine configuration for the instrumented (live-traced)
    /// HeteroPrio variants; `None` for the static algorithms.
    fn config(self) -> Option<HeteroPrioConfig> {
        match self {
            Algo::HeteroPrio => Some(HeteroPrioConfig::new()),
            Algo::HeteroPrioNoSpoliation => Some(HeteroPrioConfig::without_spoliation()),
            _ => None,
        }
    }

    /// Run the scheduler and also return its event stream: live events for
    /// the instrumented HeteroPrio variants, a stream reconstructed from
    /// the finished schedule for the static algorithms.
    pub fn run_traced(
        self,
        instance: &Instance,
        platform: &Platform,
    ) -> (Schedule, Vec<SchedEvent>) {
        self.run_metered(instance, platform, &NullRegistry)
    }

    /// [`Algo::run_traced`] with a metrics registry threaded into the live
    /// kernel. Static algorithms never enter the kernel, so their runs
    /// record nothing (`cmd_schedule` rejects `--metrics` for them).
    fn run_metered(
        self,
        instance: &Instance,
        platform: &Platform,
        metrics: &dyn MetricsRegistry,
    ) -> (Schedule, Vec<SchedEvent>) {
        match self.config() {
            Some(config) => {
                let mut sink = VecSink::new();
                let result = heteroprio_metered(instance, platform, &config, &mut sink, metrics);
                (result.schedule, sink.into_events())
            }
            None => {
                let schedule = self.run(instance, platform);
                let events = schedule.to_events(platform);
                (schedule, events)
            }
        }
    }

    pub fn run(self, instance: &Instance, platform: &Platform) -> Schedule {
        match self {
            Algo::HeteroPrio => heteroprio(instance, platform, &HeteroPrioConfig::new()).schedule,
            Algo::HeteroPrioNoSpoliation => {
                heteroprio(instance, platform, &HeteroPrioConfig::without_spoliation()).schedule
            }
            Algo::DualHp => dualhp_independent(instance, platform),
            Algo::Heft => heft(
                &TaskGraph::independent(instance.clone()),
                platform,
                WeightScheme::Avg,
                HeftVariant::Insertion,
            ),
            Algo::MinMin => heuristic_schedule(Heuristic::MinMin, instance, platform),
            Algo::MaxMin => heuristic_schedule(Heuristic::MaxMin, instance, platform),
            Algo::Sufferage => heuristic_schedule(Heuristic::Sufferage, instance, platform),
            Algo::Mct => heuristic_schedule(Heuristic::Mct, instance, platform),
        }
    }
}

/// Outcome of a journaled run: either the injected crash fired (the report
/// is final and the command exits cleanly — the crash is the point of the
/// harness), or the run completed and flows into the normal report path.
enum DurableRun {
    Crashed(String),
    Done { schedule: Schedule, events: Vec<SchedEvent>, notes: Vec<String> },
}

/// The report printed when `--crash-at` fires: where the run died and what
/// survived on disk.
fn crash_report(
    journal_path: &str,
    time: f64,
    events: u64,
    store: Option<&mut FileCheckpointStore>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "simulated crash after event {events} (t={time:.4})");
    let _ = writeln!(out, "journal    : {journal_path} ({events} records)");
    if let Some(store) = store {
        let _ = writeln!(out, "{}", checkpoint_note(store));
    }
    let _ = writeln!(out, "recover with the `resume` subcommand (same inputs and --algo).");
    out
}

/// One report line on the fate of the checkpoint file. Checkpointing is
/// best-effort (the journal stays authoritative), so save errors are
/// reported, not fatal.
fn checkpoint_note(store: &mut FileCheckpointStore) -> String {
    let path = store.path().display().to_string();
    match store.take_error() {
        Some(e) => format!("checkpoint : {path} FAILED ({e}); recovery will replay the journal"),
        None => format!("checkpoint : {path} ({} saves)", store.saves),
    }
}

/// Load the snapshot for a resume, demoting a damaged or missing
/// checkpoint to a note (recovery then replays the whole journal).
fn load_snapshot(
    path: Option<&str>,
    notes: &mut Vec<String>,
) -> Option<heteroprio_core::KernelSnapshot> {
    let path = path?;
    let (snap, damage) = FileCheckpointStore::load(path);
    if let Some(why) = damage {
        notes.push(format!("checkpoint : {path} unusable ({why}); replaying the full journal"));
    } else if snap.is_none() {
        notes.push(format!("checkpoint : {path} missing; replaying the full journal"));
    }
    snap
}

/// Open a journal for resuming, reporting recovered damage as a note.
fn open_journal(
    path: &str,
    notes: &mut Vec<String>,
) -> Result<(FileJournal, Vec<SchedEvent>), String> {
    let (journal, prefix, damage) = FileJournal::open(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(d) = damage {
        notes.push(format!(
            "journal    : {path} damaged at byte {} ({}); kept {} valid records, \
             dropped {} bytes",
            d.offset, d.detail, d.valid_records, d.lost_bytes
        ));
    }
    Ok((journal, prefix))
}

/// The journaling/crash/resume path of the `schedule` command
/// (independent tasks through the live HeteroPrio kernel).
fn durable_schedule_run(
    instance: &Instance,
    platform: &Platform,
    algo: Algo,
    d: &DurableOpts,
    metrics: &dyn MetricsRegistry,
) -> Result<DurableRun, String> {
    let config = algo.config().ok_or_else(|| {
        format!(
            "--journal/--crash-at/resume need the live kernel; {algo:?} is a \
             static algorithm that never enters it (use hp or hp-ns)"
        )
    })?;
    let path = d.journal.as_deref().ok_or("durable runs need --journal PATH")?;
    let mut notes = Vec::new();
    if d.resume {
        let (journal, recovered) = open_journal(path, &mut notes)?;
        let snapshot = load_snapshot(d.snapshot.as_deref(), &mut notes);
        let mut metered = MeteredJournal::new(journal, metrics);
        let mut sink = VecSink::new();
        let mut jsink = JournalSink::resuming(&mut metered, recovered.len());
        let result = heteroprio_resume(
            instance,
            platform,
            &config,
            snapshot.as_ref(),
            &recovered,
            &mut TeeSink(&mut sink, &mut jsink),
            metrics,
        )
        .map_err(|e| format!("resume failed: {e}"))?;
        if let Some(e) = jsink.error() {
            return Err(format!("journal append failed: {e}"));
        }
        // The appended continuation must be durable before we report success.
        metered.sync().map_err(|e| format!("final journal sync failed: {e}"))?;
        notes.push(format!(
            "resumed    : replayed {} journaled events, continued to {} total",
            recovered.len(),
            sink.events.len()
        ));
        Ok(DurableRun::Done { schedule: result.schedule, events: sink.into_events(), notes })
    } else {
        let journal = FileJournal::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut journal = MeteredJournal::new(journal, metrics);
        let mut store = d.snapshot.as_deref().map(FileCheckpointStore::new);
        let durability = DurabilityOptions {
            crash: d.crash_at.map(CrashPlan::at_event).unwrap_or(CrashPlan::NONE),
            checkpoint_every: store.is_some().then(|| d.checkpoint_every.unwrap_or(64)),
            store: store.as_mut().map(|s| s as &mut dyn CheckpointStore),
        };
        let mut sink = VecSink::new();
        let mut jsink = JournalSink::new(&mut journal);
        let result = heteroprio_durable(
            instance,
            platform,
            &config,
            durability,
            &mut TeeSink(&mut sink, &mut jsink),
            metrics,
        );
        if let Some(e) = jsink.error() {
            return Err(format!("journal append failed: {e}"));
        }
        // Commit the tail whether the run completed or crashed on cue: the
        // sync cadence only bounds loss mid-run, and the crash report tells
        // the user to resume from this journal.
        journal.sync().map_err(|e| format!("final journal sync failed: {e}"))?;
        match result {
            Ok(r) => {
                notes.push(format!("journal    : {path} ({} records)", journal.inner().len()));
                if let Some(store) = store.as_mut() {
                    notes.push(checkpoint_note(store));
                }
                Ok(DurableRun::Done { schedule: r.schedule, events: sink.into_events(), notes })
            }
            Err(EngineError::Crashed { time, events }) => {
                Ok(DurableRun::Crashed(crash_report(path, time, events, store.as_mut())))
            }
            Err(e) => Err(e.to_string()),
        }
    }
}

/// `schedule`: run one scheduler on an instance file's contents.
pub fn cmd_schedule(
    text: &str,
    table: &ClassTable,
    algo: Algo,
    opts: &OutputOpts,
) -> Result<CmdOutput, String> {
    let platform = &table.platform();
    let instance = parse_instance_k(text, table.k()).map_err(|e| e.to_string())?;
    if instance.is_empty() {
        return Err("instance is empty".to_string());
    }
    if opts.metrics && algo.config().is_none() {
        return Err(format!(
            "--metrics instruments the live kernel; {algo:?} is a static \
             algorithm that never enters it (use hp or hp-ns)"
        ));
    }
    let registry = InMemoryRegistry::new();
    let metrics: &dyn MetricsRegistry = if opts.metrics { &registry } else { &NullRegistry };
    // Under `--audit`, live HeteroPrio runs stream their events through the
    // online auditor as the engine emits them (a tee also records the stream
    // for `--trace`/`--summary`); static algorithms are batch-audited on the
    // stream reconstructed from their finished schedule. Durable runs go
    // through the journaling kernel and are batch-audited afterwards.
    let (schedule, events, audit_report, notes) = if opts.durable.active() {
        match durable_schedule_run(&instance, platform, algo, &opts.durable, metrics)? {
            DurableRun::Crashed(report) => return Ok(CmdOutput { report, svg: None, trace: None }),
            DurableRun::Done { schedule, events, notes } => {
                let report = opts
                    .audit
                    .then(|| audit(&instance, platform, &schedule, &events, &audit_opts(algo)));
                (schedule, events, report, notes)
            }
        }
    } else {
        let (schedule, events, audit_report) = match (opts.audit, algo.config()) {
            (true, Some(config)) => {
                let mut sink = VecSink::new();
                let mut auditor = StreamAuditor::new(&instance, platform, audit_opts(algo));
                let result = heteroprio_metered(
                    &instance,
                    platform,
                    &config,
                    &mut TeeSink(&mut sink, &mut auditor),
                    metrics,
                );
                let report = auditor.finish(&result.schedule);
                (result.schedule, sink.into_events(), Some(report))
            }
            (true, None) => {
                let (schedule, events) = algo.run_traced(&instance, platform);
                let report = audit(&instance, platform, &schedule, &events, &audit_opts(algo));
                (schedule, events, Some(report))
            }
            (false, _) if opts.wants_events() => {
                let (schedule, events) = algo.run_metered(&instance, platform, metrics);
                (schedule, events, None)
            }
            (false, _) => (algo.run(&instance, platform), Vec::new(), None),
        };
        (schedule, events, audit_report, Vec::new())
    };
    schedule
        .validate(&instance, platform)
        .map_err(|e| format!("internal error: invalid schedule: {e}"))?;
    let lb = combined_lower_bound(&instance, platform);
    let mut out = String::new();
    let _ = writeln!(out, "{} tasks on {}, algorithm {:?}", instance.len(), describe(table), algo);
    for note in &notes {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(out, "makespan    : {:.4}", schedule.makespan());
    let _ = writeln!(out, "lower bound : {lb:.4}");
    let _ = writeln!(out, "ratio       : {:.4}", schedule.makespan() / lb);
    let _ = writeln!(out, "spoliations : {}", schedule.spoliation_count());
    for class in table.classes() {
        let _ = writeln!(
            out,
            "{} busy {:.4}, idle {:.4}",
            table.name(class).to_uppercase(),
            schedule.busy_time(platform, class),
            schedule.idle_time(platform, class, schedule.makespan()),
        );
    }
    out.push_str(&schedule.render_ascii(platform, 72));
    if opts.summary {
        let summary = TraceSummary::from_events(platform.workers(), &events);
        out.push_str(&format_summary(&summary, table));
    }
    if opts.metrics {
        let summary = TraceSummary::from_events(platform.workers(), &events);
        out.push_str(&metrics_report(&registry, &summary)?);
    }
    if let Some(report) = &audit_report {
        out.push_str(&finish_audit(report)?);
    }
    let trace = opts.trace.as_ref().map(|path| {
        let chrome_opts =
            ChromeTraceOptions { worker_names: worker_names(table), task_names: Vec::new() };
        (path.clone(), render_trace(&events, path, &chrome_opts))
    });
    let svg = opts.svg.then(|| to_svg(&schedule, &instance, platform));
    Ok(CmdOutput { report: out, svg, trace })
}

/// The one place an audit outcome turns into CLI text: a clean report is
/// rendered into the command output, a dirty one aborts the command with
/// the same rendering. Shared by the `audit` subcommand and the
/// `schedule`/`dag` `--audit` flags.
fn finish_audit(report: &AuditReport) -> Result<String, String> {
    if report.is_clean() {
        Ok(report.render())
    } else {
        Err(format!("audit failed:\n{}", report.render()))
    }
}

/// Audit options matching what an independent-task `Algo` run guarantees.
fn audit_opts(algo: Algo) -> AuditOptions {
    match algo {
        Algo::HeteroPrio => AuditOptions::independent(),
        // The queue discipline still applies without spoliation, but the
        // theorem constants are proven for full HeteroPrio only (§3 shows
        // the ratio is unbounded otherwise) — report, don't enforce.
        Algo::HeteroPrioNoSpoliation => AuditOptions { dag: true, ..AuditOptions::independent() },
        // DualHP gets its informational partition/no-steal rules on top of
        // the generic certificate checks.
        Algo::DualHp => AuditOptions::dualhp(),
        _ => AuditOptions::generic(),
    }
}

/// `audit`: check a recorded run — or a fresh traced one — against the
/// paper's invariants. With `trace_text` (a JSONL export), the schedule is
/// rebuilt from the events and audited as-is; otherwise the algorithm runs
/// live with tracing.
pub fn cmd_audit(
    text: &str,
    table: &ClassTable,
    algo: Algo,
    trace_text: Option<&str>,
) -> Result<String, String> {
    let platform = &table.platform();
    let instance = parse_instance_k(text, table.k()).map_err(|e| e.to_string())?;
    if instance.is_empty() {
        return Err("instance is empty".to_string());
    }
    let (schedule, events) = match trace_text {
        Some(t) => {
            let events = parse_jsonl(t)?;
            (schedule_from_events(&events), events)
        }
        None => algo.run_traced(&instance, platform),
    };
    let report = audit(&instance, platform, &schedule, &events, &audit_opts(algo));
    finish_audit(&report)
}

/// `bounds`: print every lower bound we can compute (plus the exact optimum
/// for small instances).
pub fn cmd_bounds(text: &str, table: &ClassTable) -> Result<String, String> {
    let platform = &table.platform();
    let instance = parse_instance_k(text, table.k()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "tasks          : {}", instance.len());
    if table.k() == 2 {
        let ab = heteroprio_bounds::area_bound(&instance, platform);
        let _ = writeln!(out, "area bound     : {:.6}", ab.value);
    } else {
        let dual = heteroprio_bounds::area_bound_dual(&instance, platform);
        let _ = writeln!(out, "area bound     : {dual:.6} (k-class dual certificate)");
    }
    let _ = writeln!(out, "max min-time   : {:.6}", instance.max_min_time());
    let _ = writeln!(out, "combined bound : {:.6}", combined_lower_bound(&instance, platform));
    if table.k() != 2 {
        let _ = writeln!(out, "exact optimum  : (two-class only)");
        return Ok(out);
    }
    if instance.len() <= MAX_EXACT_TASKS && !instance.is_empty() {
        let opt = optimal_makespan(&instance, platform);
        let _ = writeln!(out, "exact optimum  : {:.6}", opt.makespan);
    } else {
        let _ = writeln!(out, "exact optimum  : (instance too large; <= {MAX_EXACT_TASKS} tasks)");
    }
    let _ = writeln!(
        out,
        "proven HeteroPrio ratio for this shape: {:.4}",
        heteroprio_core::proven_upper_bound(platform)
    );
    Ok(out)
}

/// Which DAG scheduler the `dag` command runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagAlgoArg {
    HeteroPrio,
    DualHpFifo,
    DualHp,
    Heft,
    List,
}

impl DagAlgoArg {
    pub fn parse(s: &str) -> Option<DagAlgoArg> {
        Some(match s.to_ascii_lowercase().as_str() {
            "hp" | "heteroprio" => DagAlgoArg::HeteroPrio,
            "dualhp-fifo" => DagAlgoArg::DualHpFifo,
            "dualhp" => DagAlgoArg::DualHp,
            "heft" => DagAlgoArg::Heft,
            "list" => DagAlgoArg::List,
            _ => return None,
        })
    }

    pub const NAMES: &'static str = "hp, dualhp, dualhp-fifo, heft, list";

    fn scheduler(self) -> heteroprio_runtime::Scheduler {
        use heteroprio_runtime::Scheduler;
        use heteroprio_schedulers::DualHpRank;
        match self {
            DagAlgoArg::HeteroPrio => Scheduler::HeteroPrio(WeightScheme::Min),
            DagAlgoArg::DualHpFifo => Scheduler::DualHp(DualHpRank::Fifo, WeightScheme::Min),
            DagAlgoArg::DualHp => Scheduler::DualHp(DualHpRank::Priority, WeightScheme::Min),
            DagAlgoArg::Heft => Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion),
            DagAlgoArg::List => Scheduler::PriorityList(WeightScheme::Min),
        }
    }
}

/// `dag`: generate a factorization DAG, submit it through the runtime and
/// schedule it, optionally under a fault plan.
pub fn cmd_dag(
    kind: &str,
    n: usize,
    table: &ClassTable,
    algo: DagAlgoArg,
    opts: &OutputOpts,
    faults: &FaultOpts,
) -> Result<CmdOutput, String> {
    use heteroprio_runtime::{submit_cholesky, submit_lu, submit_qr, Runtime};
    if n == 0 {
        return Err("need at least one tile".to_string());
    }
    if table.k() != 2 {
        return Err(format!(
            "the factorization kernels carry Table 1's two-class (cpu/gpu) timings; \
             --platform {} names {} classes. Use `schedule`, which accepts k-class \
             instance files.",
            table.spec(),
            table.k()
        ));
    }
    let platform = &table.platform();
    let kind_lc = kind.to_ascii_lowercase();
    if !matches!(kind_lc.as_str(), "cholesky" | "qr" | "lu") {
        return Err(format!("unknown workload `{kind_lc}` (cholesky, qr, lu)"));
    }
    if opts.metrics && algo == DagAlgoArg::Heft {
        return Err("--metrics instruments the live kernel; heft replays a static \
             schedule and never enters it"
            .to_string());
    }
    let build = || {
        let mut rt = Runtime::new(*platform);
        match kind_lc.as_str() {
            "cholesky" => submit_cholesky(&mut rt, n, &ChameleonTiming),
            "qr" => submit_qr(&mut rt, n, &ChameleonTiming),
            _ => submit_lu(&mut rt, n, &ChameleonTiming),
        }
        rt
    };
    let (plan, baseline) = if faults.active() {
        faults.plan(table, || build().run(algo.scheduler()).map(|r| r.makespan))?
    } else {
        (FaultPlan::NONE, None)
    };
    let rt = build().with_faults(plan.clone());
    let registry = InMemoryRegistry::new();
    let mut notes = Vec::new();
    let report = if opts.durable.active() {
        let metrics: &dyn MetricsRegistry = if opts.metrics { &registry } else { &NullRegistry };
        if !algo.scheduler().supports_durable() {
            return Err("static HEFT builds its schedule outside the kernel and cannot journal; \
                 use an online scheduler"
                .to_string());
        }
        let path = opts.durable.journal.as_deref().ok_or("durable runs need --journal PATH")?;
        if opts.durable.resume {
            let (journal, recovered) = open_journal(path, &mut notes)?;
            let snapshot = load_snapshot(opts.durable.snapshot.as_deref(), &mut notes);
            let mut journal = MeteredJournal::new(journal, metrics);
            let report =
                rt.resume_from(algo.scheduler(), snapshot.as_ref(), &mut journal, metrics)?;
            notes.push(format!(
                "resumed    : replayed {} journaled events, continued to {} total",
                recovered.len(),
                report.events.len()
            ));
            report
        } else {
            let journal = FileJournal::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut journal = MeteredJournal::new(journal, metrics);
            let mut store = opts.durable.snapshot.as_deref().map(FileCheckpointStore::new);
            let durability = DurabilityOptions {
                crash: opts.durable.crash_at.map(CrashPlan::at_event).unwrap_or(CrashPlan::NONE),
                checkpoint_every: store
                    .is_some()
                    .then(|| opts.durable.checkpoint_every.unwrap_or(64)),
                store: store.as_mut().map(|s| s as &mut dyn CheckpointStore),
            };
            match rt.run_durable(algo.scheduler(), &mut journal, durability, metrics)? {
                DurableOutcome::Completed(report) => {
                    notes.push(format!("journal    : {path} ({} records)", journal.inner().len()));
                    if let Some(store) = store.as_mut() {
                        notes.push(checkpoint_note(store));
                    }
                    *report
                }
                DurableOutcome::Crashed { time, events } => {
                    return Ok(CmdOutput {
                        report: crash_report(path, time, events, store.as_mut()),
                        svg: None,
                        trace: None,
                    })
                }
            }
        }
    } else if opts.metrics {
        rt.run_metered(algo.scheduler(), &registry)?
    } else if opts.wants_events() {
        rt.run_traced(algo.scheduler())?
    } else {
        rt.run(algo.scheduler())?
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{kind} N={n}: {} tasks, {} edges on {} ({algo:?})",
        report.graph.len(),
        report.graph.edge_count(),
        describe(table)
    );
    for note in &notes {
        let _ = writeln!(out, "{note}");
    }
    if !plan.is_none() {
        let _ = writeln!(
            out,
            "fault plan  : {} worker faults, fail={}, jitter={}, seed={}, retry<= {}",
            plan.worker_faults.len(),
            plan.task_failure_prob,
            plan.exec_jitter,
            plan.seed,
            plan.retry.max_attempts
        );
        if let Some(m0) = baseline {
            let _ = writeln!(out, "baseline    : {m0:.2} ms (fault-free)");
        }
    }
    let _ = writeln!(out, "makespan    : {:.2} ms", report.makespan);
    let _ = writeln!(out, "lower bound : {:.2} ms", report.lower_bound);
    let _ = writeln!(out, "ratio       : {:.4}", report.ratio());
    let _ = writeln!(out, "spoliations : {}", report.spoliations);
    for (label, count) in report.graph.label_histogram() {
        let _ = writeln!(out, "  {label:<8} x{count}");
    }
    if opts.summary {
        out.push_str(&format_summary(&report.summary, table));
    }
    if opts.metrics {
        out.push_str(&metrics_report(&registry, &report.summary)?);
    }
    if opts.audit {
        let mut aopts = AuditOptions::dag_run(0.0, Some(report.lower_bound));
        aopts.heteroprio = algo == DagAlgoArg::HeteroPrio;
        if faults.active() {
            aopts = aopts.with_faults();
        }
        let audit_report =
            audit(report.graph.instance(), platform, &report.schedule, &report.events, &aopts);
        out.push_str(&finish_audit(&audit_report)?);
    }
    let trace = opts.trace.as_ref().map(|path| {
        let task_names = (0..report.graph.len())
            .map(|i| format!("{}[{i}]", report.graph.label(heteroprio_core::TaskId(i as u32))))
            .collect();
        let chrome_opts = ChromeTraceOptions { worker_names: worker_names(table), task_names };
        (path.clone(), render_trace(&report.events, path, &chrome_opts))
    });
    let svg = opts.svg.then(|| to_svg(&report.schedule, report.graph.instance(), platform));
    Ok(CmdOutput { report: out, svg, trace })
}

/// `gen`: emit the independent-task kernel mix of a factorization in the
/// CLI's instance format.
pub fn cmd_gen(kind: &str, n: usize) -> Result<String, String> {
    let f = match kind.to_ascii_lowercase().as_str() {
        "cholesky" => Factorization::Cholesky,
        "qr" => Factorization::Qr,
        "lu" => Factorization::Lu,
        other => return Err(format!("unknown workload `{other}` (cholesky, qr, lu)")),
    };
    if n == 0 {
        return Err("need at least one tile".to_string());
    }
    let instance = independent_instance(f, n, &ChameleonTiming);
    Ok(serialize_instance(&instance))
}

/// `perf`: run the kernel perf suite and return the `BENCH_kernel.json`
/// document. `smoke` runs the tiny deterministic cases (the
/// `scripts/check.sh` gate); the full suite is what `scripts/bench.sh`
/// commits as the repo-root baseline.
pub fn cmd_perf(smoke: bool, custom: Option<&ClassTable>) -> Result<String, String> {
    let doc =
        heteroprio_bench::perf::run_suite_on(smoke, custom.map(ClassTable::platform).as_ref());
    heteroprio_bench::perf::validate_baseline(&doc)
        .map_err(|e| format!("perf baseline failed its own schema check: {e}"))?;
    Ok(doc)
}

/// Throughput regression fraction `perf --against` tolerates before
/// failing: a gate case may lose up to 20% of its committed tasks/sec
/// (machine noise) but no more.
pub const PERF_GATE_TOLERANCE: f64 = 0.2;

/// `perf --against BASELINE`: compare a fresh run's tasks/sec against the
/// committed baseline document, case name by case name. Returns the
/// per-case report on success; errors list every regressed case.
pub fn cmd_perf_gate(doc: &str, baseline: &str) -> Result<String, String> {
    let report =
        heteroprio_bench::perf::compare_against_baseline(doc, baseline, PERF_GATE_TOLERANCE)
            .map_err(|e| format!("perf gate: {e}"))?;
    Ok(format!("perf gate passed ({} cases):\n  {}\n", report.len(), report.join("\n  ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_instance;

    const SAMPLE: &str = "28.8 1.0\n8.72 1.0\n1.72 1.0\n1.0 3.0\n2.0 6.0\n";

    fn svg_only() -> OutputOpts {
        OutputOpts { svg: true, ..OutputOpts::default() }
    }

    #[test]
    fn schedule_reports_every_field() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let out = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &svg_only()).unwrap();
        assert!(out.report.contains("makespan"));
        assert!(out.report.contains("ratio"));
        assert!(out.report.contains("CPU"));
        assert!(out.svg.unwrap().starts_with("<svg"));
        assert!(out.trace.is_none());
    }

    #[test]
    fn all_algorithms_run_from_the_cli_layer() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        for algo in [
            Algo::HeteroPrio,
            Algo::HeteroPrioNoSpoliation,
            Algo::DualHp,
            Algo::Heft,
            Algo::MinMin,
            Algo::MaxMin,
            Algo::Sufferage,
            Algo::Mct,
        ] {
            let out = cmd_schedule(SAMPLE, &plat, algo, &OutputOpts::default()).unwrap();
            assert!(out.report.contains("makespan"), "{algo:?}");
        }
    }

    #[test]
    fn every_algorithm_traces_and_summarizes() {
        use heteroprio_trace::json;
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts {
            svg: false,
            trace: Some("out.json".to_string()),
            summary: true,
            ..OutputOpts::default()
        };
        for algo in [Algo::HeteroPrio, Algo::Heft, Algo::MinMin, Algo::DualHp] {
            let out = cmd_schedule(SAMPLE, &plat, algo, &opts).unwrap();
            assert!(out.report.contains("trace summary"), "{algo:?}");
            assert!(out.report.contains("first idle"), "{algo:?}");
            let (path, contents) = out.trace.unwrap();
            assert_eq!(path, "out.json");
            let doc = json::parse(&contents).expect("valid chrome trace");
            let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
            // 5 tasks → 5 complete slices, plus metadata per worker.
            let slices = evs
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("cat").and_then(|c| c.as_str()) == Some("task")
                })
                .count();
            assert_eq!(slices, 5, "{algo:?}");
        }
    }

    #[test]
    fn jsonl_extension_selects_jsonl() {
        use heteroprio_trace::json;
        let plat = ClassTable::cpu_gpu(1, 1).unwrap();
        let opts = OutputOpts {
            svg: false,
            trace: Some("out.jsonl".to_string()),
            summary: false,
            ..OutputOpts::default()
        };
        let out = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &opts).unwrap();
        let (_, contents) = out.trace.unwrap();
        for line in contents.lines() {
            json::parse(line).expect("each JSONL line parses");
        }
        assert!(contents.contains("task_complete"));
    }

    #[test]
    fn audit_flag_streams_clean_for_live_and_static_algorithms() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts { audit: true, ..OutputOpts::default() };
        // HeteroPrio goes through the streaming auditor, HEFT and DualHP
        // through the batch path (DualHP with its partition rules enabled);
        // all must report clean and end up in the same report format.
        for algo in [Algo::HeteroPrio, Algo::Heft, Algo::DualHp] {
            let out = cmd_schedule(SAMPLE, &plat, algo, &opts).unwrap();
            assert!(out.report.contains("audit clean"), "{algo:?}: {}", out.report);
        }
    }

    #[test]
    fn metrics_flag_reports_and_cross_checks() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts { metrics: true, summary: true, ..OutputOpts::default() };
        for algo in [Algo::HeteroPrio, Algo::HeteroPrioNoSpoliation] {
            let out = cmd_schedule(SAMPLE, &plat, algo, &opts).unwrap();
            assert!(out.report.contains("metrics:"), "{algo:?}: {}", out.report);
            assert!(out.report.contains("kernel_trace_events_total"), "{algo:?}");
            assert!(out.report.contains("kernel_pick_ns"), "{algo:?}");
        }
        // Static algorithms never enter the kernel: refuse rather than
        // print an all-zero report.
        let err = cmd_schedule(SAMPLE, &plat, Algo::Heft, &opts).unwrap_err();
        assert!(err.contains("static"), "{err}");
    }

    #[test]
    fn metrics_flag_composes_with_audit_on_the_live_path() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts { metrics: true, audit: true, ..OutputOpts::default() };
        let out = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &opts).unwrap();
        assert!(out.report.contains("metrics:"), "{}", out.report);
        assert!(out.report.contains("audit clean"), "{}", out.report);
    }

    #[test]
    fn dag_metrics_flag_reports_and_rejects_static_heft() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts { metrics: true, ..OutputOpts::default() };
        let out =
            cmd_dag("cholesky", 4, &plat, DagAlgoArg::HeteroPrio, &opts, &FaultOpts::default())
                .unwrap();
        assert!(out.report.contains("kernel_events_total"), "{}", out.report);
        assert!(out.report.contains("kernel_tasks_completed_total"), "{}", out.report);
        let err = cmd_dag("cholesky", 4, &plat, DagAlgoArg::Heft, &opts, &FaultOpts::default())
            .unwrap_err();
        assert!(err.contains("static"), "{err}");
    }

    #[test]
    fn perf_smoke_emits_a_valid_document() {
        let doc = cmd_perf(true, None).unwrap();
        assert!(doc.contains("\"schema\": \"heteroprio-bench-kernel\""), "{doc}");
        assert!(doc.contains("\"smoke\": true"), "{doc}");
    }

    #[test]
    fn algo_names_parse() {
        assert_eq!(Algo::parse("HP"), Some(Algo::HeteroPrio));
        assert_eq!(Algo::parse("dualhp"), Some(Algo::DualHp));
        assert_eq!(Algo::parse("sufferage"), Some(Algo::Sufferage));
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn bounds_includes_exact_for_small_instances() {
        let plat = ClassTable::cpu_gpu(1, 1).unwrap();
        let out = cmd_bounds("2 1\n1 2\n", &plat).unwrap();
        assert!(out.contains("exact optimum  : 1"), "{out}");
        assert!(out.contains("1.6180"), "{out}"); // φ for (1,1)
    }

    #[test]
    fn gen_output_reparses() {
        let text = cmd_gen("cholesky", 4).unwrap();
        let inst = parse_instance(&text).unwrap();
        assert_eq!(inst.len(), 20);
        assert!(cmd_gen("fft", 4).is_err());
    }

    #[test]
    fn dag_command_runs_every_scheduler() {
        let plat = ClassTable::cpu_gpu(3, 2).unwrap();
        for algo in [
            DagAlgoArg::HeteroPrio,
            DagAlgoArg::DualHpFifo,
            DagAlgoArg::DualHp,
            DagAlgoArg::Heft,
            DagAlgoArg::List,
        ] {
            let opts =
                if algo == DagAlgoArg::HeteroPrio { svg_only() } else { OutputOpts::default() };
            let out = cmd_dag("cholesky", 5, &plat, algo, &opts, &FaultOpts::default()).unwrap();
            assert!(out.report.contains("makespan"), "{algo:?}");
            assert!(out.report.contains("DPOTRF"), "{algo:?}");
            if algo == DagAlgoArg::HeteroPrio {
                assert!(out.svg.unwrap().starts_with("<svg"));
            }
        }
        let none = OutputOpts::default();
        assert!(
            cmd_dag("fft", 5, &plat, DagAlgoArg::HeteroPrio, &none, &FaultOpts::default()).is_err()
        );
        assert!(
            cmd_dag("qr", 0, &plat, DagAlgoArg::HeteroPrio, &none, &FaultOpts::default()).is_err()
        );
    }

    #[test]
    fn dag_trace_labels_slices_with_kernel_names() {
        use heteroprio_trace::json;
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts {
            svg: false,
            trace: Some("chol.json".to_string()),
            summary: true,
            ..OutputOpts::default()
        };
        let out =
            cmd_dag("cholesky", 4, &plat, DagAlgoArg::HeteroPrio, &opts, &FaultOpts::default())
                .unwrap();
        let (_, contents) = out.trace.unwrap();
        let doc = json::parse(&contents).expect("valid chrome trace");
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(
            evs.iter().any(|e| e
                .get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("DPOTRF["))),
            "slices carry DAG kernel labels"
        );
        assert!(out.report.contains("GPU 0"));
    }

    #[test]
    fn dag_runs_under_a_fault_spec() {
        let plat = ClassTable::cpu_gpu(4, 2).unwrap();
        let opts = OutputOpts { svg: false, trace: None, summary: true, ..OutputOpts::default() };
        // All GPUs die at 25% of the fault-free makespan; % time forces a
        // baseline run, and the report shows the fault accounting.
        let faults = FaultOpts { spec: Some("gpu@25%".to_string()), ..FaultOpts::default() };
        let out = cmd_dag("cholesky", 6, &plat, DagAlgoArg::HeteroPrio, &opts, &faults).unwrap();
        assert!(out.report.contains("fault plan  : 2 worker faults"), "{}", out.report);
        assert!(out.report.contains("baseline    :"), "{}", out.report);
        assert!(out.report.contains("worker down : 2 failures, 0 recoveries"), "{}", out.report);
        // A transient single-worker fault with an absolute time needs no baseline.
        let faults = FaultOpts { spec: Some("w0@1+2".to_string()), ..FaultOpts::default() };
        let out = cmd_dag("cholesky", 6, &plat, DagAlgoArg::HeteroPrio, &opts, &faults).unwrap();
        assert!(!out.report.contains("baseline"), "{}", out.report);
        assert!(out.report.contains("1 failures, 1 recoveries"), "{}", out.report);
    }

    #[test]
    fn dag_fault_spec_errors_are_reported() {
        let plat = ClassTable::cpu_gpu(1, 1).unwrap();
        let opts = OutputOpts::default();
        let faults = FaultOpts { spec: Some("gpu@nonsense".to_string()), ..FaultOpts::default() };
        let err = cmd_dag("cholesky", 4, &plat, DagAlgoArg::HeteroPrio, &opts, &faults);
        assert!(err.unwrap_err().contains("invalid fault plan"));
        // HEFT is static and must refuse fault injection.
        let faults = FaultOpts { spec: Some("w0@1+2".to_string()), ..FaultOpts::default() };
        let err = cmd_dag("cholesky", 4, &plat, DagAlgoArg::Heft, &opts, &faults);
        assert!(err.unwrap_err().contains("fault injection"));
    }

    #[test]
    fn dag_jitter_alone_activates_the_fault_path() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let opts = OutputOpts::default();
        let faults = FaultOpts { exec_jitter: 0.2, seed: Some(42), ..FaultOpts::default() };
        let out = cmd_dag("cholesky", 5, &plat, DagAlgoArg::HeteroPrio, &opts, &faults).unwrap();
        assert!(out.report.contains("jitter=0.2, seed=42"), "{}", out.report);
    }

    #[test]
    fn dag_algo_names_parse() {
        assert_eq!(DagAlgoArg::parse("hp"), Some(DagAlgoArg::HeteroPrio));
        assert_eq!(DagAlgoArg::parse("dualhp-fifo"), Some(DagAlgoArg::DualHpFifo));
        assert_eq!(DagAlgoArg::parse("LIST"), Some(DagAlgoArg::List));
        assert_eq!(DagAlgoArg::parse("??"), None);
    }

    /// Unique temp paths for journal/snapshot files (tests run in parallel).
    fn temp_paths(tag: &str) -> (String, String) {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        (
            dir.join(format!("hp_cli_{tag}_{pid}.journal")).display().to_string(),
            dir.join(format!("hp_cli_{tag}_{pid}.snap")).display().to_string(),
        )
    }

    #[test]
    fn schedule_crash_then_resume_reproduces_the_run() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let (journal, snapshot) = temp_paths("sched");
        let trace_opts = OutputOpts { trace: Some("ref.jsonl".into()), ..OutputOpts::default() };
        let reference = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &trace_opts).unwrap();
        let (_, ref_trace) = reference.trace.unwrap();
        let crash = OutputOpts {
            durable: DurableOpts {
                journal: Some(journal.clone()),
                crash_at: Some(4),
                snapshot: Some(snapshot.clone()),
                checkpoint_every: Some(2),
                resume: false,
            },
            ..OutputOpts::default()
        };
        let out = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &crash).unwrap();
        assert!(out.report.contains("simulated crash after event 4"), "{}", out.report);
        assert!(out.report.contains("resume"), "{}", out.report);
        let resume = OutputOpts {
            audit: true,
            trace: Some("res.jsonl".into()),
            durable: DurableOpts {
                journal: Some(journal.clone()),
                snapshot: Some(snapshot.clone()),
                resume: true,
                ..DurableOpts::default()
            },
            ..OutputOpts::default()
        };
        let out = cmd_schedule(SAMPLE, &plat, Algo::HeteroPrio, &resume).unwrap();
        assert!(out.report.contains("resumed    : replayed 4"), "{}", out.report);
        assert!(out.report.contains("audit clean"), "{}", out.report);
        // The resumed trace is bit-identical to the uninterrupted one, and
        // the journal now holds the full stream.
        assert_eq!(out.trace.unwrap().1, ref_trace);
        let (recovered, damage) = FileJournal::recover(&journal).unwrap();
        assert!(damage.is_none());
        assert_eq!(jsonl(&recovered), ref_trace);
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&snapshot);
    }

    #[test]
    fn dag_crash_then_resume_reproduces_the_run() {
        let plat = ClassTable::cpu_gpu(2, 1).unwrap();
        let (journal, snapshot) = temp_paths("dag");
        let trace_opts = OutputOpts { trace: Some("ref.jsonl".into()), ..OutputOpts::default() };
        let reference = cmd_dag(
            "cholesky",
            4,
            &plat,
            DagAlgoArg::HeteroPrio,
            &trace_opts,
            &FaultOpts::default(),
        )
        .unwrap();
        let (_, ref_trace) = reference.trace.unwrap();
        let crash = OutputOpts {
            durable: DurableOpts {
                journal: Some(journal.clone()),
                crash_at: Some(25),
                snapshot: Some(snapshot.clone()),
                checkpoint_every: Some(8),
                resume: false,
            },
            ..OutputOpts::default()
        };
        let out =
            cmd_dag("cholesky", 4, &plat, DagAlgoArg::HeteroPrio, &crash, &FaultOpts::default())
                .unwrap();
        assert!(out.report.contains("simulated crash after event 25"), "{}", out.report);
        let resume = OutputOpts {
            audit: true,
            trace: Some("res.jsonl".into()),
            metrics: true,
            durable: DurableOpts {
                journal: Some(journal.clone()),
                snapshot: Some(snapshot.clone()),
                resume: true,
                ..DurableOpts::default()
            },
            ..OutputOpts::default()
        };
        let out =
            cmd_dag("cholesky", 4, &plat, DagAlgoArg::HeteroPrio, &resume, &FaultOpts::default())
                .unwrap();
        assert!(out.report.contains("resumed    : replayed 25"), "{}", out.report);
        assert!(out.report.contains("audit clean"), "{}", out.report);
        // Journal-overhead counters surfaced through --metrics.
        assert!(out.report.contains("journal_appends_total"), "{}", out.report);
        assert_eq!(out.trace.unwrap().1, ref_trace);
        // A journal recorded for different inputs is rejected, not accepted.
        let err = cmd_dag("qr", 4, &plat, DagAlgoArg::HeteroPrio, &resume, &FaultOpts::default())
            .unwrap_err();
        assert!(
            err.contains("diverge") || err.contains("short") || err.contains("snapshot"),
            "{err}"
        );
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&snapshot);
    }

    #[test]
    fn durable_flags_reject_static_algorithms() {
        let plat = ClassTable::cpu_gpu(1, 1).unwrap();
        let opts = OutputOpts {
            durable: DurableOpts {
                journal: Some("unused.journal".into()),
                ..DurableOpts::default()
            },
            ..OutputOpts::default()
        };
        let err = cmd_schedule(SAMPLE, &plat, Algo::Heft, &opts).unwrap_err();
        assert!(err.contains("static"), "{err}");
        let err = cmd_dag("cholesky", 4, &plat, DagAlgoArg::Heft, &opts, &FaultOpts::default())
            .unwrap_err();
        assert!(err.contains("cannot journal"), "{err}");
        // The rejection must fire before the journal file is created — a
        // refused run leaves nothing behind.
        assert!(!std::path::Path::new("unused.journal").exists());
    }

    #[test]
    fn platform_flag_roundtrips_and_aliases_cpus_gpus() {
        // `--platform cpu=2,gpu=1` and `--cpus 2 --gpus 1` are the same table.
        let spec = parse_platform_args(Some("cpu=2,gpu=1"), None, None).unwrap();
        let alias = parse_platform_args(None, Some(2), Some(1)).unwrap();
        assert_eq!(spec.spec(), alias.spec());
        // parse -> spec -> parse is the identity on a k=3 spec.
        let k3 = parse_platform_args(Some("cpu=16,gpu=4,fpga=2"), None, None).unwrap();
        assert_eq!(k3.spec(), "cpu=16,gpu=4,fpga=2");
        let again = parse_platform_args(Some(&k3.spec()), None, None).unwrap();
        assert_eq!(again.spec(), k3.spec());
        assert_eq!(again.k(), 3);
        // Mixing the flag with its alias, or giving neither, is an error.
        assert!(parse_platform_args(Some("cpu=1,gpu=1"), Some(1), None).is_err());
        assert!(parse_platform_args(None, Some(2), None).is_err());
        assert!(parse_platform_args(None, None, None).is_err());
        assert!(parse_platform_args(Some("cpu=0,gpu=1"), None, None).is_err());
    }

    const SAMPLE_K3: &str = "# cpu gpu fpga\n28.8 1.0 4.0\n8.72 1.0 2.0 3\n\
                             1.72 1.0 9.0\n1.0 3.0 0.5\n2.0 6.0 2.0\n9.0 2.5 1.1\n";

    #[test]
    fn schedule_runs_a_three_class_platform_end_to_end() {
        // The acceptance path: a k=3 cpu/gpu/fpga instance schedules through
        // the generalized kernel with the audit clean and the --metrics
        // cross-check passing.
        let plat = parse_platform_args(Some("cpu=2,gpu=1,fpga=1"), None, None).unwrap();
        let opts =
            OutputOpts { audit: true, metrics: true, summary: true, ..OutputOpts::default() };
        let out = cmd_schedule(SAMPLE_K3, &plat, Algo::HeteroPrio, &opts).unwrap();
        assert!(out.report.contains("2 CPUs + 1 GPUs + 1 FPGAs"), "{}", out.report);
        assert!(out.report.contains("audit clean"), "{}", out.report);
        assert!(out.report.contains("kernel_trace_events_total"), "{}", out.report);
        assert!(out.report.contains("FPGA busy"), "{}", out.report);
        assert!(out.report.contains("FPGA 0"), "{}", out.report);
    }

    #[test]
    fn bounds_reports_the_dual_certificate_on_three_classes() {
        let plat = parse_platform_args(Some("cpu=2,gpu=1,fpga=1"), None, None).unwrap();
        let out = cmd_bounds(SAMPLE_K3, &plat).unwrap();
        assert!(out.contains("k-class dual certificate"), "{out}");
        assert!(out.contains("exact optimum  : (two-class only)"), "{out}");
    }

    #[test]
    fn dag_rejects_platforms_beyond_two_classes() {
        let plat = parse_platform_args(Some("cpu=2,gpu=1,fpga=1"), None, None).unwrap();
        let err = cmd_dag(
            "cholesky",
            4,
            &plat,
            DagAlgoArg::HeteroPrio,
            &svg_only(),
            &FaultOpts::default(),
        )
        .unwrap_err();
        assert!(err.contains("two-class"), "{err}");
        // Renamed two-class platforms are fine: only the count matters.
        let plat = parse_platform_args(Some("big=2,little=1"), None, None).unwrap();
        let out = cmd_dag(
            "cholesky",
            4,
            &plat,
            DagAlgoArg::HeteroPrio,
            &OutputOpts::default(),
            &FaultOpts::default(),
        )
        .unwrap();
        assert!(out.report.contains("2 BIGs + 1 LITTLEs"), "{}", out.report);
    }

    #[test]
    fn bad_input_is_reported() {
        let plat = ClassTable::cpu_gpu(1, 1).unwrap();
        let opts = OutputOpts::default();
        let err = cmd_schedule("garbage here too many fields\n", &plat, Algo::HeteroPrio, &opts)
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(cmd_schedule("", &plat, Algo::HeteroPrio, &opts).is_err());
    }
}
