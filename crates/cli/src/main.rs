#![forbid(unsafe_code)]

//! Command-line interface to the HeteroPrio reproduction.
//!
//! ```text
//! heteroprio-cli schedule --cpus M --gpus N [--algo NAME] [--svg FILE] [--trace FILE] [--summary] INSTANCE
//! heteroprio-cli bounds   --cpus M --gpus N INSTANCE
//! heteroprio-cli gen      (cholesky|qr|lu) N [OUTPUT]
//! ```

use heteroprio_cli::{
    cmd_audit, cmd_bounds, cmd_dag, cmd_gen, cmd_perf, cmd_perf_gate, cmd_schedule,
    parse_platform_args, Algo, DagAlgoArg, DurableOpts, FaultOpts, OutputOpts,
};
use heteroprio_core::ClassTable;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  heteroprio-cli schedule --cpus M --gpus N [--algo NAME] [--svg FILE]
                          (--cpus M --gpus N may be replaced everywhere by
                          --platform name=count[,name=count...], e.g.
                          --platform cpu=16,gpu=4,fpga=2)
                          [--trace FILE] [--summary] [--audit] [--metrics]
                          [--journal FILE [--crash-at N] [--snapshot FILE]
                          [--checkpoint-every K]] INSTANCE
  heteroprio-cli bounds   --cpus M --gpus N INSTANCE
  heteroprio-cli gen      (cholesky|qr|lu) N [OUTPUT]
  heteroprio-cli dag      (cholesky|qr|lu) N --cpus M --gpus N [--algo NAME]
                          [--svg FILE] [--trace FILE] [--summary] [--audit]
                          [--metrics] [--faults SPEC] [--exec-jitter J]
                          [--retry-max K] [--fault-seed S]
                          [--journal FILE [--crash-at N] [--snapshot FILE]
                          [--checkpoint-every K]]
  heteroprio-cli resume   --journal FILE [--snapshot FILE] --cpus M --gpus N
                          [--algo NAME] [--no-audit] [--trace FILE]
                          [--summary] [--metrics] (INSTANCE | (cholesky|qr|lu) N
                          [--faults SPEC] [--exec-jitter J] ...)
  heteroprio-cli audit    --cpus M --gpus N [--algo NAME]
                          [--trace FILE.jsonl] INSTANCE
  heteroprio-cli audit    (cholesky|qr|lu) N --cpus M --gpus N [--algo NAME]
                          [--faults SPEC] [--exec-jitter J]
  heteroprio-cli perf     [--smoke] [--out FILE] [--against BASELINE]
                          [--platform name=count[,...]]

INSTANCE is a text file with one `cpu_time gpu_time [priority]` task per
line (`#` comments); under a k-class --platform each line carries k
per-class times. `gen` writes such a file for the kernel mix of an
N-tile factorization. Algorithms: see --algo (default hp).

--platform declares the worker classes by name and count (class 0 pops
the affinity queue from the CPU end, the last class from the GPU end).
`--cpus M --gpus N` is the two-class alias `cpu=M,gpu=N`. `dag` and
`resume` accept any two-class --platform; k>2 needs `schedule` (the
factorization timing model is two-class). `perf --platform` appends a
custom-platform case to the suite.

--trace FILE exports the scheduler's event stream: Chrome trace_event
JSON (open in https://ui.perfetto.dev) by default, or JSONL when FILE
ends in `.jsonl`. --summary appends per-worker busy/idle/aborted time,
spoliation wasted work, and ready-queue statistics to the report.

--audit (and the `audit` command) replays the recorded event stream
through the paper-invariant auditor: pop-order consistency, the no-idle
list property, spoliation legality, and the Lemma 1-2 / Theorem 7-9-12
certificates. `audit INSTANCE --trace FILE.jsonl` checks a previously
exported JSONL trace instead of running a scheduler; `audit
(cholesky|qr|lu) N` audits a fresh runtime execution. Violations are
printed with their rule name and the exit code is nonzero.

--metrics runs the scheduler with the kernel's self-profiling registry
enabled and appends the counter/gauge/histogram report (events, queue
pushes/pops, spoliations, pick latency percentiles, peak queue depths).
The kernel's own event counter is cross-checked against the recorded
trace, so dropped events fail the command. Only live kernel runs can be
metered; static algorithms (heft, minmin, ...) are rejected.

perf runs the kernel self-profiling suite (Fig. 6-scale and 1000x-scale
workloads) and prints the schema-versioned BENCH_kernel.json document;
--out FILE writes it instead, --smoke runs the tiny deterministic cases
used as a CI gate. --against BASELINE compares the run's tasks/sec
case-by-case against a committed BENCH_kernel.json and fails if any
overlapping case regressed more than 20% (run in release mode: debug
timings always regress). `scripts/bench.sh` wraps the full run.

--journal FILE appends the kernel's event stream to a crash-durable
length+CRC-framed journal as it runs. --crash-at N kills the run right
after the Nth journaled event (deterministic crash injection; the
command still exits 0 — the crash is the harness, not an error).
--snapshot FILE additionally checkpoints the kernel state every K
events (--checkpoint-every, default 64). `resume` recovers the journal
(truncating any torn tail), restores the snapshot when one is usable,
replays deterministically — verifying the journaled prefix event for
event — and continues the run to completion, re-auditing the full
stream against the paper's invariants (--no-audit skips that). Resume
must be given the same inputs (instance/workload, platform, --algo,
fault flags) as the original run; divergence is detected and reported.

--faults injects worker failures and task failures into the `dag`
command. SPEC is comma-separated clauses: `wN|cpu|gpu|all @ time[+dur]`
(no duration = permanent; `time%` = percent of the fault-free makespan,
which is measured by a baseline run first), `fail=P` (per-attempt task
failure probability), `seed=N`. Example: `--faults gpu@25%,fail=0.05`.
--exec-jitter J draws actual runtimes log-uniformly from
[est/(1+J), est*(1+J)]; --retry-max K caps attempts per task (default 3).
";

struct Args {
    positional: Vec<String>,
    /// `--platform name=count[,name=count...]`: a k-class worker spec.
    /// `--cpus M --gpus N` stays as the `cpu=M,gpu=N` alias.
    platform: Option<String>,
    cpus: Option<usize>,
    gpus: Option<usize>,
    algo: Algo,
    /// Raw `--algo` value, for subcommands with their own algorithm set.
    dag_algo: Option<String>,
    svg: Option<String>,
    trace: Option<String>,
    summary: bool,
    audit: bool,
    metrics: bool,
    /// `perf --smoke`: tiny deterministic cases only.
    smoke: bool,
    /// `perf --out FILE`: write the JSON document instead of printing it.
    out: Option<String>,
    /// `perf --against FILE`: fail if tasks/sec regressed more than the
    /// gate tolerance versus this committed baseline.
    against: Option<String>,
    faults: FaultOpts,
    durable: DurableOpts,
    /// `resume --no-audit`: skip the post-recovery invariant audit.
    no_audit: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        platform: None,
        cpus: None,
        gpus: None,
        algo: Algo::HeteroPrio,
        dag_algo: None,
        svg: None,
        trace: None,
        summary: false,
        audit: false,
        metrics: false,
        smoke: false,
        out: None,
        against: None,
        faults: FaultOpts::default(),
        durable: DurableOpts::default(),
        no_audit: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--platform" => {
                args.platform = Some(argv.next().ok_or("--platform needs name=count[,...]")?);
            }
            "--cpus" => {
                let v = argv.next().ok_or("--cpus needs a value")?;
                args.cpus = Some(v.parse().map_err(|_| format!("bad --cpus `{v}`"))?);
            }
            "--gpus" => {
                let v = argv.next().ok_or("--gpus needs a value")?;
                args.gpus = Some(v.parse().map_err(|_| format!("bad --gpus `{v}`"))?);
            }
            "--algo" => {
                let v = argv.next().ok_or("--algo needs a value")?;
                args.dag_algo = Some(v.clone());
                if let Some(a) = Algo::parse(&v) {
                    args.algo = a;
                } else if DagAlgoArg::parse(&v).is_none() {
                    return Err(format!(
                        "unknown algorithm `{v}` (independent: {}; dag: {})",
                        Algo::NAMES,
                        DagAlgoArg::NAMES
                    ));
                }
            }
            "--svg" => {
                args.svg = Some(argv.next().ok_or("--svg needs a file name")?);
            }
            "--trace" => {
                args.trace = Some(argv.next().ok_or("--trace needs a file name")?);
            }
            "--summary" => args.summary = true,
            "--audit" => args.audit = true,
            "--metrics" => args.metrics = true,
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = Some(argv.next().ok_or("--out needs a file name")?);
            }
            "--against" => {
                args.against = Some(argv.next().ok_or("--against needs a baseline file")?);
            }
            "--faults" => {
                args.faults.spec = Some(argv.next().ok_or("--faults needs a spec")?);
            }
            "--exec-jitter" => {
                let v = argv.next().ok_or("--exec-jitter needs a value")?;
                args.faults.exec_jitter =
                    v.parse().map_err(|_| format!("bad --exec-jitter `{v}`"))?;
            }
            "--retry-max" => {
                let v = argv.next().ok_or("--retry-max needs a value")?;
                args.faults.retry_max =
                    Some(v.parse().map_err(|_| format!("bad --retry-max `{v}`"))?);
            }
            "--fault-seed" => {
                let v = argv.next().ok_or("--fault-seed needs a value")?;
                args.faults.seed = Some(v.parse().map_err(|_| format!("bad --fault-seed `{v}`"))?);
            }
            "--journal" => {
                args.durable.journal = Some(argv.next().ok_or("--journal needs a file name")?);
            }
            "--crash-at" => {
                let v = argv.next().ok_or("--crash-at needs an event number")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --crash-at `{v}`"))?;
                if n == 0 {
                    return Err("--crash-at counts from 1 (the first journaled event)".into());
                }
                args.durable.crash_at = Some(n);
            }
            "--snapshot" => {
                args.durable.snapshot = Some(argv.next().ok_or("--snapshot needs a file name")?);
            }
            "--checkpoint-every" => {
                let v = argv.next().ok_or("--checkpoint-every needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --checkpoint-every `{v}`"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                args.durable.checkpoint_every = Some(n);
            }
            "--no-audit" => args.no_audit = true,
            "--help" | "-h" => return Err(String::new()),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn platform_of(args: &Args) -> Result<ClassTable, String> {
    parse_platform_args(args.platform.as_deref(), args.cpus, args.gpus)
}

fn output_opts(args: &Args) -> OutputOpts {
    OutputOpts {
        svg: args.svg.is_some(),
        trace: args.trace.clone(),
        summary: args.summary,
        audit: args.audit,
        metrics: args.metrics,
        durable: args.durable.clone(),
    }
}

/// Print the report and write the artifacts a command produced.
fn emit(out: heteroprio_cli::CmdOutput, svg_path: Option<&String>) -> Result<(), String> {
    print!("{}", out.report);
    if let (Some(path), Some(svg)) = (svg_path, out.svg) {
        std::fs::write(path, svg).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some((path, contents)) = out.trace {
        std::fs::write(&path, contents).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("")?;
    let args = parse_args(argv)?;
    match command.as_str() {
        "schedule" => {
            let platform = platform_of(&args)?;
            let file = args.positional.first().ok_or("missing INSTANCE file")?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let out = cmd_schedule(&text, &platform, args.algo, &output_opts(&args))?;
            emit(out, args.svg.as_ref())
        }
        "bounds" => {
            let platform = platform_of(&args)?;
            let file = args.positional.first().ok_or("missing INSTANCE file")?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            print!("{}", cmd_bounds(&text, &platform)?);
            Ok(())
        }
        "dag" => {
            let platform = platform_of(&args)?;
            let kind = args.positional.first().ok_or("dag needs a workload kind")?.clone();
            let n: usize = args
                .positional
                .get(1)
                .ok_or("dag needs a tile count")?
                .parse()
                .map_err(|_| "bad tile count")?;
            let algo = match &args.dag_algo {
                Some(name) => DagAlgoArg::parse(name).ok_or_else(|| {
                    format!("unknown DAG algorithm `{name}` ({})", DagAlgoArg::NAMES)
                })?,
                None => DagAlgoArg::HeteroPrio,
            };
            let out = cmd_dag(&kind, n, &platform, algo, &output_opts(&args), &args.faults)?;
            emit(out, args.svg.as_ref())
        }
        "resume" => {
            let platform = platform_of(&args)?;
            if args.durable.journal.is_none() {
                return Err("resume needs --journal FILE".to_string());
            }
            if args.durable.crash_at.is_some() {
                return Err("--crash-at only applies to the original run".to_string());
            }
            let mut args = args;
            args.durable.resume = true;
            // Recovery re-audits the full stream by default.
            args.audit = !args.no_audit;
            let first = args
                .positional
                .first()
                .ok_or("resume needs an INSTANCE file or a workload kind")?;
            if matches!(first.as_str(), "cholesky" | "qr" | "lu") {
                let kind = first.clone();
                let n: usize = args
                    .positional
                    .get(1)
                    .ok_or("resume needs a tile count")?
                    .parse()
                    .map_err(|_| "bad tile count")?;
                let algo = match &args.dag_algo {
                    Some(name) => DagAlgoArg::parse(name).ok_or_else(|| {
                        format!("unknown DAG algorithm `{name}` ({})", DagAlgoArg::NAMES)
                    })?,
                    None => DagAlgoArg::HeteroPrio,
                };
                let out = cmd_dag(&kind, n, &platform, algo, &output_opts(&args), &args.faults)?;
                emit(out, args.svg.as_ref())
            } else {
                let text = std::fs::read_to_string(first).map_err(|e| format!("{first}: {e}"))?;
                let out = cmd_schedule(&text, &platform, args.algo, &output_opts(&args))?;
                emit(out, args.svg.as_ref())
            }
        }
        "audit" => {
            let platform = platform_of(&args)?;
            let first = args
                .positional
                .first()
                .ok_or("audit needs an INSTANCE file or a workload kind")?
                .clone();
            if matches!(first.as_str(), "cholesky" | "qr" | "lu") {
                // Workload form: audit a fresh runtime execution.
                let n: usize = args
                    .positional
                    .get(1)
                    .ok_or("audit needs a tile count")?
                    .parse()
                    .map_err(|_| "bad tile count")?;
                let algo = match &args.dag_algo {
                    Some(name) => DagAlgoArg::parse(name).ok_or_else(|| {
                        format!("unknown DAG algorithm `{name}` ({})", DagAlgoArg::NAMES)
                    })?,
                    None => DagAlgoArg::HeteroPrio,
                };
                let opts = OutputOpts { audit: true, ..OutputOpts::default() };
                let out = cmd_dag(&first, n, &platform, algo, &opts, &args.faults)?;
                print!("{}", out.report);
                Ok(())
            } else {
                // Instance form: audit a recorded JSONL trace, or a fresh
                // traced run when no --trace is given.
                let text = std::fs::read_to_string(&first).map_err(|e| format!("{first}: {e}"))?;
                let trace_text = match &args.trace {
                    Some(path) => {
                        Some(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?)
                    }
                    None => None,
                };
                print!("{}", cmd_audit(&text, &platform, args.algo, trace_text.as_deref())?);
                Ok(())
            }
        }
        "perf" => {
            let custom = match &args.platform {
                Some(spec) => Some(ClassTable::parse(spec).map_err(|e| e.to_string())?),
                None => None,
            };
            let doc = cmd_perf(args.smoke, custom.as_ref())?;
            match &args.out {
                Some(path) => {
                    std::fs::write(path, &doc).map_err(|e| format!("{path}: {e}"))?;
                    println!("wrote {path}");
                }
                None if args.against.is_none() => print!("{doc}"),
                None => {}
            }
            if let Some(path) = &args.against {
                let baseline = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                print!("{}", cmd_perf_gate(&doc, &baseline)?);
            }
            Ok(())
        }
        "gen" => {
            let kind = args.positional.first().ok_or("gen needs a workload kind")?;
            let n: usize = args
                .positional
                .get(1)
                .ok_or("gen needs a tile count")?
                .parse()
                .map_err(|_| "bad tile count")?;
            let text = cmd_gen(kind, n)?;
            match args.positional.get(2) {
                Some(path) => {
                    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                    println!("wrote {path}");
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
