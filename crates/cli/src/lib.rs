#![forbid(unsafe_code)]

//! # heteroprio-cli
//!
//! Library backing the `heteroprio-cli` binary: a plain-text instance
//! format ([`mod@format`]) and testable subcommand implementations
//! ([`commands`]). See `heteroprio-cli --help` for usage.

pub mod commands;
pub mod format;

pub use commands::{
    cmd_audit, cmd_bounds, cmd_dag, cmd_gen, cmd_perf, cmd_perf_gate, cmd_schedule,
    parse_platform_args, Algo, CmdOutput, DagAlgoArg, DurableOpts, FaultOpts, OutputOpts,
};
pub use format::{parse_instance, parse_instance_k, serialize_instance, ParseError};
