#![forbid(unsafe_code)]

//! # heteroprio-workloads
//!
//! The workloads of the paper's evaluation and analysis:
//!
//! * the calibrated **kernel timing model** reproducing Table 1's
//!   acceleration factors ([`ChameleonTiming`], [`paper_platform`]);
//! * **independent-task instances** built from the kernel multiset of an
//!   N-tile Cholesky/QR/LU factorization (Figure 6's inputs)
//!   ([`independent_instance`]);
//! * the **worst-case families** of Theorems 8, 11 and 14, including the
//!   Figure 4 `T2` packing/list-order constructions ([`worst_case`]);
//! * seeded **random instance generators** for property tests;
//! * **k-class workloads**: the `cpu=16,gpu=4,fpga=2` demonstration
//!   platform and per-class affinity generators ([`multi_class`]).

pub mod instances;
pub mod kernels;
pub mod multi_class;
pub mod random;
pub mod worst_case;

pub use instances::{independent_instance, kernel_counts};
pub use kernels::{
    paper_platform, profile, ChameleonTiming, JitteredTiming, KernelProfile, TileScaledTiming,
    PROFILES,
};
pub use multi_class::{multi_class_instance, three_class_platform, MultiClassParams};
pub use random::{bimodal_instance, random_instance, RandomInstanceParams};
pub use worst_case::{
    no_spoliation_gap, t2_best_packing, t2_durations, t2_worst_order, theorem11, theorem14,
    theorem14_r, theorem8, WorstCase,
};
