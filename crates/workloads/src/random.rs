//! Random independent-task instance generators, for property tests and
//! robustness experiments.

use heteroprio_core::{Instance, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for uniform random instances.
#[derive(Clone, Copy, Debug)]
pub struct RandomInstanceParams {
    pub tasks: usize,
    /// CPU times drawn uniformly from this range.
    pub cpu_range: (f64, f64),
    /// Acceleration factors drawn log-uniformly from this range (may span 1,
    /// giving tasks that prefer either resource).
    pub accel_range: (f64, f64),
}

impl Default for RandomInstanceParams {
    fn default() -> Self {
        RandomInstanceParams { tasks: 20, cpu_range: (1.0, 10.0), accel_range: (0.1, 30.0) }
    }
}

/// Uniform random instance.
pub fn random_instance(params: &RandomInstanceParams, seed: u64) -> Instance {
    assert!(params.tasks >= 1);
    assert!(params.cpu_range.0 > 0.0 && params.cpu_range.1 >= params.cpu_range.0);
    assert!(params.accel_range.0 > 0.0 && params.accel_range.1 >= params.accel_range.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    for _ in 0..params.tasks {
        let cpu = rng.random_range(params.cpu_range.0..=params.cpu_range.1);
        let rho = rng.random_range(params.accel_range.0.ln()..=params.accel_range.1.ln()).exp();
        inst.push(Task::new(cpu, cpu / rho));
    }
    inst
}

/// Bimodal instance: a fraction of strongly GPU-friendly tasks (ρ around
/// `gpu_rho`) and the rest CPU-friendly (ρ around `cpu_rho`), mimicking the
/// GEMM-vs-POTRF affinity split of the linear-algebra workloads.
pub fn bimodal_instance(
    tasks: usize,
    gpu_fraction: f64,
    gpu_rho: f64,
    cpu_rho: f64,
    seed: u64,
) -> Instance {
    assert!((0.0..=1.0).contains(&gpu_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    for _ in 0..tasks {
        let cpu = rng.random_range(1.0..=10.0);
        let base = if rng.random_bool(gpu_fraction) { gpu_rho } else { cpu_rho };
        let rho = base * rng.random_range(0.8..=1.25);
        inst.push(Task::new(cpu, cpu / rho));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instance_is_reproducible() {
        let p = RandomInstanceParams::default();
        let a = random_instance(&p, 9);
        let b = random_instance(&p, 9);
        assert_eq!(a, b);
        let c = random_instance(&p, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let p = RandomInstanceParams { tasks: 200, cpu_range: (2.0, 4.0), accel_range: (0.5, 8.0) };
        let inst = random_instance(&p, 3);
        for t in inst.tasks() {
            assert!((2.0..=4.0).contains(&t.cpu_time()));
            let rho = t.accel_factor();
            assert!((0.5 - 1e-9..=8.0 + 1e-9).contains(&rho), "{rho}");
        }
    }

    #[test]
    fn bimodal_has_two_clusters() {
        let inst = bimodal_instance(400, 0.5, 20.0, 0.5, 4);
        let fast = inst.tasks().iter().filter(|t| t.accel_factor() > 5.0).count();
        let slow = inst.tasks().iter().filter(|t| t.accel_factor() < 1.0).count();
        assert!(fast > 100, "{fast}");
        assert!(slow > 100, "{slow}");
        assert_eq!(fast + slow, 400);
    }
}
