//! The paper's tightness constructions: adversarial instance families on
//! which HeteroPrio's ratio approaches the proved bounds.
//!
//! Each builder returns a [`WorstCase`]: the instance, the platform, the
//! HeteroPrio configuration that realizes the adversarial tie-breaking the
//! proof picks ("consider the following *valid* HeteroPrio schedule"), the
//! exact makespan HeteroPrio reaches, and a *witness schedule* certifying an
//! upper bound on the optimal makespan.

use heteroprio_core::time::PHI;
use heteroprio_core::{
    HeteroPrioConfig, Instance, Platform, QueueTieBreak, Schedule, SpoliationTieBreak, Task,
    TaskId, TaskRun, WorkerId, WorkerOrder,
};

/// A worst-case family member.
#[derive(Clone, Debug)]
pub struct WorstCase {
    pub name: &'static str,
    pub instance: Instance,
    pub platform: Platform,
    pub config: HeteroPrioConfig,
    /// Makespan HeteroPrio reaches under `config` (from the proof).
    pub expected_hp_makespan: f64,
    /// A valid schedule certifying `C_max^Opt <= witness.makespan()`.
    pub witness: Schedule,
    /// The bound this family approaches as it scales.
    pub asymptotic_ratio: f64,
}

impl WorstCase {
    /// Lower bound on the approximation ratio demonstrated by this instance.
    pub fn demonstrated_ratio(&self) -> f64 {
        self.expected_hp_makespan / self.witness.makespan()
    }
}

/// Theorem 8: two tasks on (1 CPU, 1 GPU) forcing ratio φ.
///
/// `X = (p=φ, q=1)` and `Y = (p=1, q=1/φ)`, both with ρ = φ. With `Y` ahead
/// of `X` in the queue the GPU takes `Y` and the CPU takes `X`; the GPU then
/// idles at 1/φ but spoliating `X` would finish at 1/φ + 1 = φ — no strict
/// improvement. HeteroPrio ends at φ while the optimum is 1.
pub fn theorem8() -> WorstCase {
    let mut instance = Instance::new();
    let y = instance.push(Task::new(1.0, 1.0 / PHI));
    let x = instance.push(Task::new(PHI, 1.0));
    let platform = Platform::new(1, 1);
    let witness = Schedule {
        runs: vec![
            TaskRun { task: x, worker: WorkerId(1), start: 0.0, end: 1.0 },
            TaskRun { task: y, worker: WorkerId(0), start: 0.0, end: 1.0 },
        ],
        aborted: Vec::new(),
    };
    WorstCase {
        name: "theorem8 (1 CPU, 1 GPU)",
        instance,
        platform,
        config: HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            worker_order: WorkerOrder::GpusFirst,
            ..HeteroPrioConfig::new()
        },
        expected_hp_makespan: PHI,
        witness,
        asymptotic_ratio: PHI,
    }
}

/// Theorem 11: the (m CPUs, 1 GPU) family approaching ratio 1 + φ.
///
/// With `x = (m-1)/(m+φ)` and filler granularity `ε = x / steps`:
/// `T1 = (1, 1/φ)`, `T2 = (φ, 1)`, `steps` fillers `T4 = (εφ, ε)` and
/// `m·steps` fillers `T3 = (ε, ε)`. HeteroPrio keeps everyone busy on
/// fillers until `x`, then the GPU runs `T1` and a CPU runs `T2`; at
/// `x + 1/φ` the GPU cannot improve `T2` (tie) and the makespan is `x + φ`.
/// The optimum is 1 + O(ε) (witness built below).
pub fn theorem11(m: usize, steps: usize) -> WorstCase {
    assert!(m >= 2, "the family needs at least 2 CPUs");
    assert!(steps >= 1);
    let x = (m as f64 - 1.0) / (m as f64 + PHI);
    let eps = x / steps as f64;
    let mut instance = Instance::new();
    // Queue is sorted by ρ descending, insertion order breaking ties.
    // ρ = φ block: T4 fillers first, then T1, then T2; ρ = 1 block: T3.
    let mut t4 = Vec::with_capacity(steps);
    for _ in 0..steps {
        t4.push(instance.push(Task::new(eps * PHI, eps)));
    }
    let t1 = instance.push(Task::new(1.0, 1.0 / PHI));
    let t2 = instance.push(Task::new(PHI, 1.0));
    let mut t3 = Vec::with_capacity(m * steps);
    for _ in 0..m * steps {
        t3.push(instance.push(Task::new(eps, eps)));
    }
    let platform = Platform::new(m, 1);

    // Witness: T2 on the GPU, T1 on CPU 0, fillers spread over CPUs 1..m
    // longest-first; total filler work is exactly (m-1)·x... times 1/x each
    // CPU — i.e. m-1 CPUs with load ~1.
    let mut runs = vec![
        TaskRun { task: t2, worker: WorkerId(m as u32), start: 0.0, end: 1.0 },
        TaskRun { task: t1, worker: WorkerId(0), start: 0.0, end: 1.0 },
    ];
    let mut loads = vec![0.0_f64; m - 1];
    let fillers: Vec<(TaskId, f64)> =
        t4.iter().map(|&t| (t, eps * PHI)).chain(t3.iter().map(|&t| (t, eps))).collect();
    for (task, dur) in fillers {
        let w = (0..loads.len())
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("m > 1, so there is at least one filler machine");
        runs.push(TaskRun {
            task,
            worker: WorkerId((w + 1) as u32),
            start: loads[w],
            end: loads[w] + dur,
        });
        loads[w] += dur;
    }
    WorstCase {
        name: "theorem11 (m CPUs, 1 GPU)",
        instance,
        platform,
        config: HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            worker_order: WorkerOrder::GpusFirst,
            ..HeteroPrioConfig::new()
        },
        expected_hp_makespan: x + PHI,
        witness: Schedule { runs, aborted: Vec::new() },
        asymptotic_ratio: 1.0 + PHI,
    }
}

/// The `T2` GPU durations of Theorem 14, parameterized by `k` (so `n = 6k`):
/// one task of length `6k` and, for each `0 ≤ i ≤ 2k-1`, six tasks of
/// length `2k + i`.
pub fn t2_durations(k: usize) -> Vec<f64> {
    assert!(k >= 1);
    let mut v = vec![(6 * k) as f64];
    for i in 0..2 * k {
        for _ in 0..6 {
            v.push((2 * k + i) as f64);
        }
    }
    v
}

/// Figure 4 (top): a perfect packing of the `T2` set on `n = 6k` machines,
/// as per-machine task lists, all with load exactly `6k`.
pub fn t2_best_packing(k: usize) -> Vec<Vec<f64>> {
    assert!(k >= 1);
    let kf = k as f64;
    let mut procs: Vec<Vec<f64>> = Vec::with_capacity(6 * k);
    // 6 machines per i in 1..k: pair (2k+i, 4k-i), summing to 6k.
    for i in 1..k {
        for _ in 0..6 {
            procs.push(vec![2.0 * kf + i as f64, 4.0 * kf - i as f64]);
        }
    }
    // The six 3k tasks pair among themselves on 3 machines.
    for _ in 0..3 {
        procs.push(vec![3.0 * kf, 3.0 * kf]);
    }
    // The 6k task alone, and the six 2k tasks in two triples.
    procs.push(vec![6.0 * kf]);
    procs.push(vec![2.0 * kf; 3]);
    procs.push(vec![2.0 * kf; 3]);
    procs
}

/// Figure 4 (bottom): a list order of the `T2` set whose list schedule on
/// `n = 6k` machines reaches `2n - 1`: the six tasks of length `2k+i` first
/// (i ascending), then their partners of length `4k-1-i` by decreasing
/// length, then the `6k` task last.
pub fn t2_worst_order(k: usize) -> Vec<f64> {
    assert!(k >= 1);
    let mut v = Vec::with_capacity(12 * k + 1);
    for i in 0..k {
        for _ in 0..6 {
            v.push((2 * k + i) as f64);
        }
    }
    for i in (k..2 * k).rev() {
        for _ in 0..6 {
            v.push((2 * k + i) as f64);
        }
    }
    v.push((6 * k) as f64);
    v
}

/// The `r` of Theorem 14: the positive root of `n/r + 2n - 1 = nr/3`,
/// i.e. `n·r² - 3(2n-1)·r - 3n = 0`. Tends to `3 + 2√3` as `n` grows.
pub fn theorem14_r(n: usize) -> f64 {
    let nf = n as f64;
    let b = 3.0 * (2.0 * nf - 1.0);
    (b + (b * b + 12.0 * nf * nf).sqrt()) / (2.0 * nf)
}

/// Theorem 14: the (n GPUs, n² CPUs) family with `n = 6k`, approaching
/// ratio `2 + 2/√3 ≈ 3.15`.
///
/// Spoliation tie-breaking is steered through task priorities so the GPUs
/// re-execute the `T2` set in the worst list order of Figure 4 (all `T2`
/// tasks complete simultaneously on the CPUs, so the order among them is
/// the adversary's choice — exactly the freedom the proof exploits).
pub fn theorem14(k: usize) -> WorstCase {
    assert!(k >= 1);
    let n = 6 * k;
    let m = n * n;
    let r = theorem14_r(n);
    let nf = n as f64;
    // The paper's x = (m-n)·n/(m+nr); rounded down to an integer so the
    // filler phase ends simultaneously everywhere.
    let x = ((m - n) as f64 * nf / (m as f64 + nf * r)).floor();
    let xi = x as usize;
    assert!(xi >= 1, "k too small for an integral filler phase");

    let mut instance = Instance::new();
    // Insertion order sets the queue order among equal ρ: T4 fillers, then
    // T1, then T2 (shortest T2 ties with them at ρ = r), then T3 at ρ = 1.
    for _ in 0..n * xi {
        instance.push(Task::new(r, 1.0)); // T4
    }
    let t1_first = instance.len();
    for _ in 0..n {
        instance.push(Task::new(nf, nf / r)); // T1
    }
    // T2: CPU time rn/3 for all; GPU times from the Figure 4 set. Priorities
    // realize the worst spoliation order: "firsts" (lengths 2k..3k-1) above
    // "seconds" (lengths 3k..4k-1, by decreasing length), the 6k task last.
    let t2_first = instance.len();
    let cpu_t2 = r * nf / 3.0;
    for i in 0..k {
        for _ in 0..6 {
            instance.push(Task::new(cpu_t2, (2 * k + i) as f64).with_priority(3e6));
        }
    }
    for i in (k..2 * k).rev() {
        for _ in 0..6 {
            instance.push(
                Task::new(cpu_t2, (2 * k + i) as f64).with_priority(2e6 + (2 * k + i) as f64),
            );
        }
    }
    instance.push(Task::new(cpu_t2, nf).with_priority(0.0)); // the 6k task
    let t2_last = instance.len();
    for _ in 0..m * xi {
        instance.push(Task::new(1.0, 1.0)); // T3
    }
    let platform = Platform::new(m, n);

    // Witness: T2 perfectly packed on the GPUs (load n each), T1 on n CPUs,
    // fillers longest-first on the remaining m-n CPUs.
    let mut runs = Vec::with_capacity(instance.len());
    // GPUs: walk the best packing and consume matching T2 task ids.
    let mut t2_pool: Vec<(TaskId, f64)> = (t2_first..t2_last)
        .map(|i| {
            let id = TaskId(i as u32);
            (id, instance.task(id).gpu_time())
        })
        .collect();
    for (g, proc_tasks) in t2_best_packing(k).into_iter().enumerate() {
        let mut t = 0.0;
        for dur in proc_tasks {
            let pos = t2_pool
                .iter()
                .position(|&(_, d)| d == dur)
                .expect("best packing uses exactly the T2 durations");
            let (id, _) = t2_pool.swap_remove(pos);
            runs.push(TaskRun {
                task: id,
                worker: WorkerId((m + g) as u32),
                start: t,
                end: t + dur,
            });
            t += dur;
        }
    }
    assert!(t2_pool.is_empty());
    // T1 on CPUs 0..n.
    for (j, i) in (t1_first..t2_first).enumerate() {
        runs.push(TaskRun {
            task: TaskId(i as u32),
            worker: WorkerId(j as u32),
            start: 0.0,
            end: nf,
        });
    }
    // Fillers on CPUs n..m: T4 (length r) longest-first, then T3 (length 1).
    let mut loads = vec![0.0_f64; m - n];
    let place = |id: usize, dur: f64, runs: &mut Vec<TaskRun>, loads: &mut [f64]| {
        let w = (0..loads.len())
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("m > n, so there is at least one filler CPU");
        runs.push(TaskRun {
            task: TaskId(id as u32),
            worker: WorkerId((n + w) as u32),
            start: loads[w],
            end: loads[w] + dur,
        });
        loads[w] += dur;
    };
    for i in 0..n * xi {
        place(i, r, &mut runs, &mut loads); // T4 on CPU
    }
    for i in t2_last..instance.len() {
        place(i, 1.0, &mut runs, &mut loads); // T3
    }

    WorstCase {
        name: "theorem14 (n GPUs, n^2 CPUs)",
        instance,
        platform,
        config: HeteroPrioConfig {
            queue_tie: QueueTieBreak::InsertionOrder,
            spoliation_tie: SpoliationTieBreak::PriorityThenId,
            worker_order: WorkerOrder::GpusFirst,
            ..HeteroPrioConfig::new()
        },
        expected_hp_makespan: x + nf / r + 2.0 * nf - 1.0,
        witness: Schedule { runs, aborted: Vec::new() },
        asymptotic_ratio: 2.0 + 2.0 / 3.0_f64.sqrt(),
    }
}

/// The §3 cautionary example: without spoliation, list scheduling on
/// unrelated resources is unboundedly bad. Two tasks `(gap, 1)` on
/// (1 CPU, 1 GPU): the list phase parks one on the CPU forever.
pub fn no_spoliation_gap(gap: f64) -> WorstCase {
    // lint: allow(float-ord): construction precondition on the caller's parameter, not a
    // schedule-time comparison; any gap comfortably above 2 works.
    assert!(gap > 2.0);
    let instance = Instance::from_times(&[(gap, 1.0), (gap, 1.0)]);
    let platform = Platform::new(1, 1);
    let witness = Schedule {
        runs: vec![
            TaskRun { task: TaskId(0), worker: WorkerId(1), start: 0.0, end: 1.0 },
            TaskRun { task: TaskId(1), worker: WorkerId(1), start: 1.0, end: 2.0 },
        ],
        aborted: Vec::new(),
    };
    WorstCase {
        name: "no-spoliation gap (1 CPU, 1 GPU)",
        instance,
        platform,
        config: HeteroPrioConfig::without_spoliation(),
        expected_hp_makespan: gap,
        witness,
        asymptotic_ratio: f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::heteroprio;
    use heteroprio_core::list::list_schedule;
    use heteroprio_core::time::approx_eq;

    fn run_case(case: &WorstCase) -> f64 {
        case.witness.validate(&case.instance, &case.platform).expect("witness schedule is valid");
        let res = heteroprio(&case.instance, &case.platform, &case.config);
        res.schedule.validate(&case.instance, &case.platform).expect("HP schedule valid");
        assert!(
            approx_eq(res.makespan(), case.expected_hp_makespan),
            "{}: HP reached {} instead of {}",
            case.name,
            res.makespan(),
            case.expected_hp_makespan
        );
        case.demonstrated_ratio()
    }

    #[test]
    fn theorem8_reaches_phi() {
        let case = theorem8();
        let ratio = run_case(&case);
        assert!(approx_eq(ratio, PHI), "{ratio}");
    }

    #[test]
    fn theorem11_ratio_approaches_one_plus_phi() {
        let mut last = 0.0;
        for m in [4, 16, 64] {
            // Finer filler granularity tightens the witness toward 1.
            let case = theorem11(m, 8 * m);
            let ratio = run_case(&case);
            assert!(ratio > last, "ratio must grow with m");
            last = ratio;
        }
        // m = 64: x ≈ 0.96, witness ≈ 1 + small → ratio close to 1 + φ.
        assert!(last > 2.4, "{last}");
        assert!(last <= 1.0 + PHI + 1e-9);
    }

    #[test]
    fn t2_set_best_packing_is_perfect() {
        for k in 1..=4 {
            let packing = t2_best_packing(k);
            assert_eq!(packing.len(), 6 * k);
            for proc in &packing {
                let load: f64 = proc.iter().sum();
                assert!(approx_eq(load, (6 * k) as f64));
            }
            // Exactly the T2 multiset.
            let mut flat: Vec<f64> = packing.into_iter().flatten().collect();
            let mut expected = t2_durations(k);
            flat.sort_by(f64::total_cmp);
            expected.sort_by(f64::total_cmp);
            assert_eq!(flat, expected);
        }
    }

    #[test]
    fn t2_worst_order_hits_two_n_minus_one() {
        for k in 1..=4 {
            let order = t2_worst_order(k);
            let mut sorted = order.clone();
            let mut expected = t2_durations(k);
            sorted.sort_by(f64::total_cmp);
            expected.sort_by(f64::total_cmp);
            assert_eq!(sorted, expected, "worst order is a permutation of T2");
            let ms = list_schedule(&order, 6 * k).makespan();
            assert!(approx_eq(ms, (12 * k - 1) as f64), "k={k}: {ms}");
        }
    }

    #[test]
    fn theorem14_k1_reaches_its_analytical_makespan() {
        // k = 1: n = 6, r = 6 exactly, x = 2.
        let case = theorem14(1);
        assert!(approx_eq(theorem14_r(6), 6.0));
        assert!(approx_eq(case.expected_hp_makespan, 2.0 + 1.0 + 11.0));
        let ratio = run_case(&case);
        // Witness is ~n + filler slack; the ratio beats 2 already at k=1.
        assert!(ratio > 2.0, "{ratio}");
    }

    #[test]
    fn theorem14_ratio_grows_towards_asymptote() {
        let r1 = run_case(&theorem14(1));
        let r2 = run_case(&theorem14(2));
        assert!(r2 > r1, "{r2} vs {r1}");
        assert!(r2 < 2.0 + 2.0 / 3.0_f64.sqrt());
    }

    #[test]
    fn no_spoliation_is_unbounded() {
        let case = no_spoliation_gap(50.0);
        let ratio = run_case(&case);
        assert!(approx_eq(ratio, 25.0), "{ratio}");
        // With spoliation enabled the same instance is fine.
        let fixed = heteroprio(&case.instance, &case.platform, &HeteroPrioConfig::new());
        assert!(approx_eq(fixed.makespan(), 2.0));
    }

    #[test]
    fn theorem14_r_tends_to_three_plus_two_sqrt3() {
        let target = 3.0 + 2.0 * 3.0_f64.sqrt();
        assert!((theorem14_r(6000) - target).abs() < 1e-2);
    }
}
