//! The calibrated kernel timing model (paper §2.1, Table 1).
//!
//! The paper measures Chameleon kernels (tile size 960) on 20 Haswell cores
//! and 4 K40 GPUs through StarPU's calibration. We do not have that machine;
//! following the substitution policy of DESIGN.md, CPU times are derived
//! from published per-core Haswell kernel rates, and GPU times follow from
//! the paper's Table 1 acceleration factors, which are reproduced exactly:
//!
//! | kernel | DPOTRF | DTRSM | DSYRK | DGEMM |
//! |--------|--------|-------|-------|-------|
//! | GPU / 1 core | 1.72 | 8.72 | 26.96 | 28.80 |
//!
//! QR and LU kernel factors are documented estimates in the same spirit
//! (panel kernels barely accelerated, update kernels strongly accelerated).
//! All experiments report ratios to lower bounds, which are invariant under
//! a global rescaling of these times.

use heteroprio_taskgraph::{Kernel, KernelTiming};

/// Times in milliseconds for one 960×960 tile kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelProfile {
    pub kernel: Kernel,
    pub cpu_ms: f64,
    pub accel: f64,
}

impl KernelProfile {
    pub fn gpu_ms(&self) -> f64 {
        self.cpu_ms / self.accel
    }
}

/// The paper-calibrated model (tile size 960).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChameleonTiming;

/// The per-kernel profile table behind [`ChameleonTiming`].
pub const PROFILES: [KernelProfile; 9] = [
    // Cholesky — acceleration factors straight from Table 1.
    KernelProfile { kernel: Kernel::Potrf, cpu_ms: 17.1, accel: 1.72 },
    KernelProfile { kernel: Kernel::Trsm, cpu_ms: 34.0, accel: 8.72 },
    KernelProfile { kernel: Kernel::Syrk, cpu_ms: 32.3, accel: 26.96 },
    KernelProfile { kernel: Kernel::Gemm, cpu_ms: 59.0, accel: 28.80 },
    // QR — estimated: panel factorizations are sequential-heavy (low
    // acceleration), update kernels are GEMM-like (high acceleration).
    KernelProfile { kernel: Kernel::Geqrt, cpu_ms: 45.0, accel: 2.0 },
    KernelProfile { kernel: Kernel::Ormqr, cpu_ms: 60.0, accel: 6.0 },
    KernelProfile { kernel: Kernel::Tsqrt, cpu_ms: 50.0, accel: 2.5 },
    KernelProfile { kernel: Kernel::Tsmqr, cpu_ms: 65.0, accel: 13.0 },
    // LU — the panel is slightly better accelerated than POTRF.
    KernelProfile { kernel: Kernel::Getrf, cpu_ms: 25.0, accel: 1.8 },
];

/// Profile of one kernel.
pub fn profile(kernel: Kernel) -> KernelProfile {
    PROFILES.iter().copied().find(|p| p.kernel == kernel).expect("every kernel has a profile")
}

impl KernelTiming for ChameleonTiming {
    fn times(&self, kernel: Kernel) -> (f64, f64) {
        let p = profile(kernel);
        (p.cpu_ms, p.gpu_ms())
    }
}

/// The paper's evaluation machine: 20 CPU cores (2× Haswell E5-2680) and
/// 4 NVIDIA K40-M GPUs.
pub fn paper_platform() -> heteroprio_core::Platform {
    heteroprio_core::Platform::new(20, 4)
}

/// A timing wrapper that perturbs CPU and GPU times with deterministic
/// multiplicative noise (log-uniform in `[1/(1+jitter), 1+jitter]`),
/// modelling calibration error. Used by robustness tests.
#[derive(Clone, Debug)]
pub struct JitteredTiming<T> {
    pub inner: T,
    pub jitter: f64,
    pub seed: u64,
}

impl<T: KernelTiming> KernelTiming for JitteredTiming<T> {
    fn times(&self, kernel: Kernel) -> (f64, f64) {
        use rand::{Rng, SeedableRng};
        let (p, q) = self.inner.times(kernel);
        // Derive a per-kernel RNG so times are stable per kernel.
        let k = Kernel::ALL
            .iter()
            .position(|&x| x == kernel)
            .expect("every Kernel variant is listed in Kernel::ALL") as u64;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(self.seed ^ (k.wrapping_mul(0x9E3779B97F4A7C15)));
        let lo = (1.0 + self.jitter).recip().ln();
        let hi = (1.0 + self.jitter).ln();
        let fp = rng.random_range(lo..=hi).exp();
        let fq = rng.random_range(lo..=hi).exp();
        (p * fp, q * fq)
    }
}

/// Tile-size-parametric timing model, anchored at the paper's 960 tile.
///
/// Work per tile kernel is cubic in the tile size, so CPU times scale as
/// `(b/960)³`. GPU *efficiency* degrades on small tiles (kernels stop
/// saturating the device), which we model by shrinking the acceleration
/// factor toward 1 with a `(b/960)^1.5` law, capped at the calibrated
/// value: `accel(b) = 1 + (accel₉₆₀ − 1) · min(1, b/960)^1.5`. This is a
/// modeling choice (documented here and in DESIGN.md), qualitatively
/// consistent with published Chameleon/MAGMA tile-size studies: the
/// affinity *spread* between panel and update kernels collapses as tiles
/// shrink, which is exactly the regime where affinity-based scheduling
/// loses its edge (exercised by the `robustness` experiment).
#[derive(Clone, Copy, Debug)]
pub struct TileScaledTiming {
    pub tile: usize,
}

impl TileScaledTiming {
    pub const REFERENCE_TILE: usize = 960;

    pub fn new(tile: usize) -> Self {
        assert!(tile > 0);
        TileScaledTiming { tile }
    }

    fn scale(&self) -> f64 {
        self.tile as f64 / Self::REFERENCE_TILE as f64
    }

    /// The effective acceleration factor of a kernel at this tile size.
    pub fn accel(&self, kernel: Kernel) -> f64 {
        let base = profile(kernel).accel;
        1.0 + (base - 1.0) * self.scale().min(1.0).powf(1.5)
    }
}

impl KernelTiming for TileScaledTiming {
    fn times(&self, kernel: Kernel) -> (f64, f64) {
        let p = profile(kernel);
        let cpu = p.cpu_ms * self.scale().powi(3);
        (cpu, cpu / self.accel(kernel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;

    #[test]
    fn tile_scaled_reference_matches_chameleon() {
        let t = TileScaledTiming::new(TileScaledTiming::REFERENCE_TILE);
        for k in Kernel::ALL {
            let (p_ref, q_ref) = ChameleonTiming.times(k);
            let (p, q) = t.times(k);
            assert!(approx_eq(p, p_ref), "{k:?}");
            assert!(approx_eq(q, q_ref), "{k:?}");
        }
    }

    #[test]
    fn small_tiles_collapse_the_affinity_spread() {
        let small = TileScaledTiming::new(240);
        let big = TileScaledTiming::new(960);
        assert!(small.accel(Kernel::Gemm) < big.accel(Kernel::Gemm));
        assert!(small.accel(Kernel::Gemm) > 1.0);
        // The GEMM/POTRF ratio of ratios shrinks with the tile.
        let spread = |t: &TileScaledTiming| t.accel(Kernel::Gemm) / t.accel(Kernel::Potrf);
        assert!(spread(&small) < spread(&big));
    }

    #[test]
    fn cpu_time_is_cubic_in_tile() {
        let half = TileScaledTiming::new(480);
        let (p, _) = half.times(Kernel::Gemm);
        assert!(approx_eq(p, 59.0 / 8.0), "{p}");
    }

    #[test]
    fn accel_is_capped_above_the_reference() {
        // Bigger-than-reference tiles do not exceed the calibrated factor.
        let huge = TileScaledTiming::new(1920);
        assert!(approx_eq(huge.accel(Kernel::Gemm), 28.80));
    }

    #[test]
    fn table1_acceleration_factors_reproduced() {
        // The headline Table 1 numbers must be exact.
        assert_eq!(profile(Kernel::Potrf).accel, 1.72);
        assert_eq!(profile(Kernel::Trsm).accel, 8.72);
        assert_eq!(profile(Kernel::Syrk).accel, 26.96);
        assert_eq!(profile(Kernel::Gemm).accel, 28.80);
    }

    #[test]
    fn timing_trait_returns_cpu_over_accel() {
        let t = ChameleonTiming;
        for p in PROFILES {
            let (cpu, gpu) = t.times(p.kernel);
            assert_eq!(cpu, p.cpu_ms);
            assert!(approx_eq(cpu / gpu, p.accel));
        }
    }

    #[test]
    fn gemm_is_most_accelerated_potrf_least_of_cholesky() {
        let order = [Kernel::Potrf, Kernel::Trsm, Kernel::Syrk, Kernel::Gemm];
        for pair in order.windows(2) {
            assert!(profile(pair[0]).accel < profile(pair[1]).accel);
        }
    }

    #[test]
    fn paper_platform_is_20_plus_4() {
        let p = paper_platform();
        assert_eq!(p.cpus(), 20);
        assert_eq!(p.gpus(), 4);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let j = JitteredTiming { inner: ChameleonTiming, jitter: 0.2, seed: 11 };
        let (p1, q1) = j.times(Kernel::Gemm);
        let (p2, q2) = j.times(Kernel::Gemm);
        assert_eq!((p1, q1), (p2, q2));
        let (p0, q0) = ChameleonTiming.times(Kernel::Gemm);
        assert!(p1 >= p0 / 1.2 - 1e-9 && p1 <= p0 * 1.2 + 1e-9);
        assert!(q1 >= q0 / 1.2 - 1e-9 && q1 <= q0 * 1.2 + 1e-9);
    }

    #[test]
    fn zero_jitter_is_identity() {
        let j = JitteredTiming { inner: ChameleonTiming, jitter: 0.0, seed: 5 };
        for k in Kernel::ALL {
            let (p, q) = j.times(k);
            let (p0, q0) = ChameleonTiming.times(k);
            assert!(approx_eq(p, p0));
            assert!(approx_eq(q, q0));
        }
    }
}
