//! Independent-task instances for the Figure 6 experiments.
//!
//! "To obtain realistic instances with independent tasks, we have taken the
//! actual measurements from tasks of each kernel (Cholesky, QR and LU) and
//! considered these as independent tasks" — i.e. the kernel multiset of an
//! N-tile factorization with dependencies dropped.

use heteroprio_core::Instance;
use heteroprio_taskgraph::{Factorization, Kernel, KernelTiming};

/// Kernel multiset of an `n`-tile factorization: `(kernel, count)` pairs.
pub fn kernel_counts(f: Factorization, n: usize) -> Vec<(Kernel, usize)> {
    let c2 = n * (n - 1) / 2;
    let c3 = if n >= 3 { n * (n - 1) * (n - 2) / 6 } else { 0 };
    let sq_sum = (n - 1) * n * (2 * n - 1) / 6;
    match f {
        Factorization::Cholesky => {
            vec![(Kernel::Potrf, n), (Kernel::Trsm, c2), (Kernel::Syrk, c2), (Kernel::Gemm, c3)]
        }
        Factorization::Qr => vec![
            (Kernel::Geqrt, n),
            (Kernel::Ormqr, c2),
            (Kernel::Tsqrt, c2),
            (Kernel::Tsmqr, sq_sum),
        ],
        Factorization::Lu => {
            vec![(Kernel::Getrf, n), (Kernel::Trsm, 2 * c2), (Kernel::Gemm, sq_sum)]
        }
    }
}

/// The tasks of an `n`-tile factorization as an independent-task instance.
pub fn independent_instance(f: Factorization, n: usize, timing: &impl KernelTiming) -> Instance {
    let mut inst = Instance::new();
    for (kernel, count) in kernel_counts(f, n) {
        let task = timing.task(kernel);
        for _ in 0..count {
            inst.push(task);
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ChameleonTiming;
    use heteroprio_taskgraph::expected_task_count;

    #[test]
    fn counts_match_dag_generators() {
        for f in Factorization::ALL {
            for n in 1..=10 {
                let total: usize = kernel_counts(f, n).iter().map(|&(_, c)| c).sum();
                assert_eq!(total, expected_task_count(f, n), "{} n={n}", f.name());
            }
        }
    }

    #[test]
    fn instance_size_matches_counts() {
        let inst = independent_instance(Factorization::Cholesky, 8, &ChameleonTiming);
        assert_eq!(inst.len(), expected_task_count(Factorization::Cholesky, 8));
    }

    #[test]
    fn gemm_dominates_large_cholesky() {
        // For large N the GEMM count (~N³/6) dwarfs the others (~N²).
        let counts = kernel_counts(Factorization::Cholesky, 32);
        let gemm = counts.iter().find(|(k, _)| *k == Kernel::Gemm).unwrap().1;
        let rest: usize = counts.iter().filter(|(k, _)| *k != Kernel::Gemm).map(|&(_, c)| c).sum();
        assert!(gemm > 3 * rest);
    }

    #[test]
    fn tiny_instances_have_no_update_kernels() {
        let counts = kernel_counts(Factorization::Cholesky, 2);
        let gemm = counts.iter().find(|(k, _)| *k == Kernel::Gemm).unwrap().1;
        assert_eq!(gemm, 0);
        assert_eq!(independent_instance(Factorization::Cholesky, 2, &ChameleonTiming).len(), 4);
    }
}
