//! Workloads for platforms with more than two resource classes.
//!
//! The paper's evaluation is CPU+GPU, but the class model generalizes to
//! any `k`; this module provides the canonical three-class demonstration
//! platform (16 CPUs, 4 GPUs, 2 FPGAs) and a seeded generator drawing
//! per-class acceleration factors, so the k-class paths (pair queues,
//! k-dimensional DualHP partition, dual area bound) can be exercised with
//! realistic affinity spreads.

use heteroprio_core::{ClassTable, Instance, Platform, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical three-class demonstration platform: `cpu=16,gpu=4,fpga=2`.
pub fn three_class_platform() -> (ClassTable, Platform) {
    let table = ClassTable::new(&[("cpu", 16), ("gpu", 4), ("fpga", 2)])
        .expect("static spec is well-formed");
    let platform = table.platform();
    (table, platform)
}

/// Parameters for k-class random instances.
///
/// Class 0 times are drawn uniformly from `base_range`; each further class
/// `c` gets `time_c = base / ρ_c` with `ρ_c` log-uniform in
/// `accel_ranges[c - 1]` (ranges may span 1, so a class can be slower than
/// class 0 for some tasks).
#[derive(Clone, Debug)]
pub struct MultiClassParams {
    pub tasks: usize,
    pub base_range: (f64, f64),
    pub accel_ranges: Vec<(f64, f64)>,
}

impl MultiClassParams {
    /// Defaults matched to [`three_class_platform`]: GPUs strongly
    /// accelerated (GEMM-like spread), FPGAs modestly and less uniformly so.
    pub fn three_class(tasks: usize) -> Self {
        MultiClassParams {
            tasks,
            base_range: (1.0, 10.0),
            accel_ranges: vec![(0.5, 30.0), (0.2, 8.0)],
        }
    }
}

/// Seeded uniform random k-class instance (`k = 1 + accel_ranges.len()`).
pub fn multi_class_instance(params: &MultiClassParams, seed: u64) -> Instance {
    assert!(params.tasks >= 1);
    assert!(!params.accel_ranges.is_empty(), "need at least one non-base class");
    assert!(params.base_range.0 > 0.0 && params.base_range.1 >= params.base_range.0);
    for r in &params.accel_ranges {
        assert!(r.0 > 0.0 && r.1 >= r.0, "acceleration ranges must be positive");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    let mut times = Vec::with_capacity(1 + params.accel_ranges.len());
    for _ in 0..params.tasks {
        times.clear();
        let base = rng.random_range(params.base_range.0..=params.base_range.1);
        times.push(base);
        for r in &params.accel_ranges {
            let rho = rng.random_range(r.0.ln()..=r.1.ln()).exp();
            times.push(base / rho);
        }
        inst.push(Task::from_times(&times));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_is_the_documented_shape() {
        let (table, platform) = three_class_platform();
        assert_eq!(table.spec(), "cpu=16,gpu=4,fpga=2");
        assert_eq!(platform.k(), 3);
        assert_eq!(platform.workers(), 22);
    }

    #[test]
    fn generator_is_reproducible_and_in_range() {
        let p = MultiClassParams::three_class(50);
        let a = multi_class_instance(&p, 7);
        let b = multi_class_instance(&p, 7);
        assert_eq!(a, b);
        assert_ne!(a, multi_class_instance(&p, 8));
        for t in a.tasks() {
            assert_eq!(t.k(), 3);
            let base = t.times()[0];
            assert!((1.0..=10.0).contains(&base));
            let rho_gpu = base / t.times()[1];
            let rho_fpga = base / t.times()[2];
            assert!((0.5 - 1e-9..=30.0 + 1e-9).contains(&rho_gpu), "{rho_gpu}");
            assert!((0.2 - 1e-9..=8.0 + 1e-9).contains(&rho_fpga), "{rho_fpga}");
        }
    }
}
