//! The submission front-end: register data, submit tasks, run.

use crate::handles::{Access, DataHandle};
use heteroprio_bounds::dag_lower_bound;
use heteroprio_core::{
    DurabilityOptions, HeteroPrioConfig, KernelSnapshot, Platform, Schedule, Task, TaskId,
};
use heteroprio_metrics::{MetricsRegistry, NullRegistry};
use heteroprio_schedulers::{
    heft, DualHpDagPolicy, DualHpRank, HeftVariant, HeteroPrioDagPolicy, PriorityListPolicy,
};
use heteroprio_simulator::{
    try_resume_faulty, try_simulate_durable, try_simulate_faulty_metered, FaultPlan, OnlinePolicy,
    SimError, SnapshotOnlinePolicy, TransferModel,
};
use heteroprio_taskgraph::{
    apply_bottom_level_priorities, check_precedence, CycleError, DagBuilder, TaskGraph,
    WeightScheme,
};
use heteroprio_trace::{
    Journal, JournalSink, NullSink, SchedEvent, TeeSink, TraceSummary, VecSink,
};

/// Which scheduler executes the submitted graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scheduler {
    /// HeteroPrio with bottom-level priorities under the given scheme.
    HeteroPrio(WeightScheme),
    /// DualHP; `Priority` rank uses bottom levels under the given scheme.
    DualHp(DualHpRank, WeightScheme),
    /// Static HEFT.
    Heft(WeightScheme, HeftVariant),
    /// Plain priority list scheduling (no affinity, no spoliation).
    PriorityList(WeightScheme),
}

impl Scheduler {
    /// Whether this scheduler runs inside the event kernel and can
    /// therefore journal and resume. Static HEFT builds its schedule
    /// offline and never enters the kernel. Callers should check this
    /// *before* creating journal or checkpoint files, so a rejected run
    /// leaves nothing behind.
    pub fn supports_durable(&self) -> bool {
        !matches!(self, Scheduler::Heft(..))
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::HeteroPrio(WeightScheme::Min)
    }
}

/// Everything the runtime knows after an execution.
#[derive(Clone, Debug)]
pub struct Report {
    pub graph: TaskGraph,
    pub schedule: Schedule,
    pub makespan: f64,
    pub lower_bound: f64,
    pub spoliations: usize,
    /// Per-worker busy/idle/aborted accounting aggregated from the
    /// scheduler's event stream (or reconstructed from the schedule for
    /// static schedulers such as HEFT).
    pub summary: TraceSummary,
    /// The full event stream; empty unless the report came from
    /// [`Runtime::run_traced`].
    pub events: Vec<SchedEvent>,
    /// The fault plan the run executed under ([`FaultPlan::NONE`] for a
    /// fault-free run). Failure/retry/downtime counters live in `summary`.
    pub fault_plan: FaultPlan,
}

impl Report {
    pub fn ratio(&self) -> f64 {
        self.makespan / self.lower_bound
    }
}

/// What a durable run produced: a finished [`Report`], or the injected
/// crash point. On a crash everything emitted before the cut is already in
/// the journal, ready for [`Runtime::resume_from`].
#[derive(Debug)]
pub enum DurableOutcome {
    Completed(Box<Report>),
    Crashed { time: f64, events: u64 },
}

impl DurableOutcome {
    /// The report, if the run survived to the end.
    pub fn report(self) -> Option<Report> {
        match self {
            DurableOutcome::Completed(r) => Some(*r),
            DurableOutcome::Crashed { .. } => None,
        }
    }
}

/// Run a policy under a fault plan, optionally recording the event stream
/// and always reporting kernel metrics into `metrics` (a
/// [`NullRegistry`] compiles the instrumentation away).
fn run_policy<P: OnlinePolicy, M: MetricsRegistry + ?Sized>(
    graph: &TaskGraph,
    platform: &Platform,
    policy: &mut P,
    transfer: &TransferModel,
    plan: &FaultPlan,
    record: bool,
    metrics: &M,
) -> Result<(Schedule, TraceSummary, Vec<SchedEvent>), String> {
    if record {
        let mut sink = VecSink::new();
        let res = try_simulate_faulty_metered(
            graph, platform, policy, transfer, plan, &mut sink, metrics,
        )
        .map_err(|e| e.to_string())?;
        Ok((res.schedule, res.summary, sink.into_events()))
    } else {
        let res = try_simulate_faulty_metered(
            graph,
            platform,
            policy,
            transfer,
            plan,
            &mut NullSink,
            metrics,
        )
        .map_err(|e| e.to_string())?;
        Ok((res.schedule, res.summary, Vec::new()))
    }
}

/// A StarPU-like runtime: data registration, task submission with access
/// modes, sequential-consistency dependency inference, and execution on a
/// simulated CPU+GPU node.
///
/// ```
/// use heteroprio_runtime::{Access, Runtime, Scheduler};
/// use heteroprio_core::{Platform, Task};
///
/// let mut rt = Runtime::new(Platform::new(2, 1));
/// let a = rt.register_data("A");
/// let b = rt.register_data("B");
/// // t0 writes A; t1 reads A and writes B → t1 depends on t0.
/// rt.submit(Task::new(2.0, 1.0), "producer", &[(a, Access::Write)]);
/// rt.submit(Task::new(4.0, 1.0), "consumer", &[(a, Access::Read), (b, Access::Write)]);
/// let report = rt.run(Scheduler::default()).unwrap();
/// assert_eq!(report.makespan, 2.0); // both on the GPU, back to back
/// ```
#[derive(Debug, Default)]
pub struct Runtime {
    platform: Option<Platform>,
    builder: DagBuilder,
    data_labels: Vec<&'static str>,
    /// Per handle: the last writer and the readers since that write.
    last_writer: Vec<Option<TaskId>>,
    readers: Vec<Vec<TaskId>>,
    transfer: TransferModel,
    faults: FaultPlan,
}

impl Runtime {
    pub fn new(platform: Platform) -> Self {
        Runtime { platform: Some(platform), ..Runtime::default() }
    }

    /// Set a cross-class transfer penalty (see
    /// [`heteroprio_simulator::TransferModel`]). Zero by default.
    pub fn with_transfer_penalty(mut self, penalty: f64) -> Self {
        self.transfer = TransferModel::new(penalty);
        self
    }

    /// Execute under a fault plan (worker failures, stochastic runtimes,
    /// task-level failures with retry). Not supported by static HEFT.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Register a datum (e.g. a tile); its label is used in reports.
    pub fn register_data(&mut self, label: &'static str) -> DataHandle {
        let h = DataHandle(u32::try_from(self.data_labels.len()).expect("too many handles"));
        self.data_labels.push(label);
        self.last_writer.push(None);
        self.readers.push(Vec::new());
        h
    }

    pub fn data_count(&self) -> usize {
        self.data_labels.len()
    }

    pub fn task_count(&self) -> usize {
        self.builder.len()
    }

    /// Submit a task touching the given handles. Dependencies are inferred
    /// for sequential consistency:
    ///
    /// * a **read** depends on the handle's last writer;
    /// * a **write** depends on the last writer *and* on every reader since
    ///   that write (readers run before the value is clobbered);
    /// * concurrent reads do not order among themselves.
    pub fn submit(
        &mut self,
        task: Task,
        name: &'static str,
        accesses: &[(DataHandle, Access)],
    ) -> TaskId {
        let id = self.builder.add_task(task, name);
        for &(h, access) in accesses {
            assert!(h.index() < self.data_labels.len(), "unregistered handle {h:?}");
            let writer = *self.last_writer.get(h.index()).expect("handle range asserted above");
            if access.writes() {
                self.builder.add_edge_opt(writer, id);
                let readers = self.readers.get_mut(h.index()).expect("handle range asserted above");
                for &r in readers.iter() {
                    if r != id {
                        self.builder.add_edge(r, id);
                    }
                }
                readers.clear();
                *self.last_writer.get_mut(h.index()).expect("handle range asserted above") =
                    Some(id);
                if access.reads() {
                    // RW: the task is also the first reader of its own write;
                    // nothing to record (it cannot depend on itself).
                }
            } else {
                self.builder.add_edge_opt(writer, id);
                self.readers.get_mut(h.index()).expect("handle range asserted above").push(id);
            }
        }
        id
    }

    /// Freeze the submitted graph (without running it).
    pub fn build_graph(self) -> Result<TaskGraph, CycleError> {
        self.builder.build()
    }

    /// Execute everything submitted so far and return the report.
    /// The schedule is validated (structure + precedence) before returning.
    pub fn run(self, scheduler: Scheduler) -> Result<Report, String> {
        self.run_impl(scheduler, false, &NullRegistry)
    }

    /// [`Runtime::run`], additionally recording the scheduler's full
    /// [`SchedEvent`] stream in [`Report::events`] (for export to
    /// Chrome-trace/JSONL). Static schedulers get a stream reconstructed
    /// from the finished schedule.
    pub fn run_traced(self, scheduler: Scheduler) -> Result<Report, String> {
        self.run_impl(scheduler, true, &NullRegistry)
    }

    /// [`Runtime::run_traced`] with a metrics registry: the scheduling
    /// kernel's perf counters, queue-depth gauges and pick-latency
    /// histograms are recorded into `metrics`. Static HEFT builds its
    /// schedule outside the kernel, so it reports no kernel metrics.
    pub fn run_metered<M: MetricsRegistry + ?Sized>(
        self,
        scheduler: Scheduler,
        metrics: &M,
    ) -> Result<Report, String> {
        self.run_impl(scheduler, true, metrics)
    }

    fn run_impl<M: MetricsRegistry + ?Sized>(
        self,
        scheduler: Scheduler,
        record: bool,
        metrics: &M,
    ) -> Result<Report, String> {
        let platform = self.platform.ok_or("runtime has no platform")?;
        let transfer = self.transfer;
        let plan = self.faults;
        let mut graph = self.builder.build().map_err(|e| e.to_string())?;
        if graph.is_empty() {
            return Err("no tasks were submitted".to_string());
        }
        let (schedule, summary, events) = match scheduler {
            Scheduler::HeteroPrio(scheme) => {
                apply_bottom_level_priorities(&mut graph, scheme);
                let mut policy = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
                run_policy(&graph, &platform, &mut policy, &transfer, &plan, record, metrics)?
            }
            Scheduler::DualHp(rank, scheme) => {
                apply_bottom_level_priorities(&mut graph, scheme);
                let mut policy = DualHpDagPolicy::new(rank);
                run_policy(&graph, &platform, &mut policy, &transfer, &plan, record, metrics)?
            }
            Scheduler::Heft(scheme, variant) => {
                if transfer != TransferModel::NONE {
                    return Err("static HEFT does not support transfer penalties".to_string());
                }
                if !plan.is_none() {
                    return Err("static HEFT does not support fault injection; \
                         use an online scheduler"
                        .to_string());
                }
                let schedule = heft(&graph, &platform, scheme, variant);
                let events = schedule.to_events(&platform);
                let summary = TraceSummary::from_events(platform.workers(), &events);
                (schedule, summary, if record { events } else { Vec::new() })
            }
            Scheduler::PriorityList(scheme) => {
                apply_bottom_level_priorities(&mut graph, scheme);
                let mut policy = PriorityListPolicy::new();
                run_policy(&graph, &platform, &mut policy, &transfer, &plan, record, metrics)?
            }
        };
        finish_report(graph, &platform, &transfer, plan, schedule, summary, events)
    }

    /// [`Runtime::run_traced`] with the event stream additionally appended
    /// to `journal` as it is emitted, and an optional crash/checkpoint plan.
    /// An injected crash ([`heteroprio_core::CrashPlan`]) cuts the run at
    /// the chosen event and returns [`DurableOutcome::Crashed`]; the journal
    /// then holds exactly the pre-crash prefix. Static HEFT builds its
    /// schedule outside the kernel and cannot journal.
    pub fn run_durable<J, M>(
        self,
        scheduler: Scheduler,
        journal: &mut J,
        durability: DurabilityOptions<'_>,
        metrics: &M,
    ) -> Result<DurableOutcome, String>
    where
        J: Journal,
        M: MetricsRegistry + ?Sized,
    {
        let platform = self.platform.ok_or("runtime has no platform")?;
        let transfer = self.transfer;
        let plan = self.faults;
        let mut graph = self.builder.build().map_err(|e| e.to_string())?;
        if graph.is_empty() {
            return Err("no tasks were submitted".to_string());
        }
        let mut policy = durable_policy(scheduler, &mut graph)?;
        let mut events = VecSink::new();
        let mut jsink = JournalSink::new(journal);
        let res = try_simulate_durable(
            &graph,
            &platform,
            &mut PolicyRef(policy.as_mut()),
            &transfer,
            &plan,
            durability,
            &mut TeeSink(&mut events, &mut jsink),
            metrics,
        );
        if let Some(e) = jsink.error() {
            return Err(format!("journal append failed: {e}"));
        }
        // Commit the tail: the sync cadence only bounds loss *during* the
        // run; at completion (or at a simulated crash, whose report points
        // the user at this journal) the whole stream must be durable.
        journal.sync().map_err(|e| format!("final journal sync failed: {e}"))?;
        let res = match res {
            Ok(r) => r,
            Err(SimError::Crashed { time, events }) => {
                return Ok(DurableOutcome::Crashed { time, events })
            }
            Err(e) => return Err(e.to_string()),
        };
        let report = finish_report(
            graph,
            &platform,
            &transfer,
            plan,
            res.schedule,
            res.summary,
            events.into_events(),
        )?;
        Ok(DurableOutcome::Completed(Box::new(report)))
    }

    /// Recover an interrupted durable run: replay the journal (and apply
    /// `snapshot`, when one was checkpointed) to rebuild the exact kernel
    /// state, then continue to completion. The continuation is appended to
    /// `journal`, so after a successful resume the journal holds the full
    /// stream; [`Report::events`] holds it too. Replay is verified
    /// event-for-event — a journal from different inputs is rejected, never
    /// silently accepted.
    pub fn resume_from<J, M>(
        self,
        scheduler: Scheduler,
        snapshot: Option<&KernelSnapshot>,
        journal: &mut J,
        metrics: &M,
    ) -> Result<Report, String>
    where
        J: Journal,
        M: MetricsRegistry + ?Sized,
    {
        let platform = self.platform.ok_or("runtime has no platform")?;
        let transfer = self.transfer;
        let plan = self.faults;
        let mut graph = self.builder.build().map_err(|e| e.to_string())?;
        if graph.is_empty() {
            return Err("no tasks were submitted".to_string());
        }
        let tail = journal.replay().map_err(|e| format!("journal replay failed: {e}"))?;
        let mut policy = durable_policy(scheduler, &mut graph)?;
        let mut events = VecSink::new();
        let mut jsink = JournalSink::resuming(journal, tail.len());
        let res = try_resume_faulty(
            &graph,
            &platform,
            &mut PolicyRef(policy.as_mut()),
            &transfer,
            &plan,
            snapshot,
            &tail,
            &mut TeeSink(&mut events, &mut jsink),
            metrics,
        )
        .map_err(|e| e.to_string())?;
        if let Some(e) = jsink.error() {
            return Err(format!("journal append failed: {e}"));
        }
        // After a successful resume the journal holds the full stream —
        // make the appended continuation durable before reporting success.
        journal.sync().map_err(|e| format!("final journal sync failed: {e}"))?;
        finish_report(
            graph,
            &platform,
            &transfer,
            plan,
            res.schedule,
            res.summary,
            events.into_events(),
        )
    }
}

/// The durable entry points dispatch on [`Scheduler`] at runtime, so the
/// three snapshotable policies are handled behind one object-safe facade.
trait ErasedSnapshotPolicy {
    fn as_online(&mut self) -> &mut dyn OnlinePolicy;
    fn ready_order_erased(&self) -> Vec<TaskId>;
    fn worker_order_erased(&self) -> heteroprio_core::WorkerOrder;
}

impl<P: SnapshotOnlinePolicy> ErasedSnapshotPolicy for P {
    fn as_online(&mut self) -> &mut dyn OnlinePolicy {
        self
    }

    fn ready_order_erased(&self) -> Vec<TaskId> {
        self.ready_order()
    }

    fn worker_order_erased(&self) -> heteroprio_core::WorkerOrder {
        self.worker_order()
    }
}

/// Wrapper giving `&mut dyn ErasedSnapshotPolicy` the concrete
/// [`SnapshotOnlinePolicy`] bound the engine entry points require.
struct PolicyRef<'p>(&'p mut dyn ErasedSnapshotPolicy);

impl OnlinePolicy for PolicyRef<'_> {
    fn init(&mut self, graph: &TaskGraph, platform: &Platform) {
        self.0.as_online().init(graph, platform);
    }

    fn on_ready(&mut self, tasks: &[TaskId], ctx: &heteroprio_simulator::SimContext<'_>) {
        self.0.as_online().on_ready(tasks, ctx);
    }

    fn pick_task(
        &mut self,
        worker: heteroprio_core::WorkerId,
        ctx: &heteroprio_simulator::SimContext<'_>,
    ) -> Option<TaskId> {
        self.0.as_online().pick_task(worker, ctx)
    }

    fn spoliation_victim(
        &mut self,
        worker: heteroprio_core::WorkerId,
        ctx: &heteroprio_simulator::SimContext<'_>,
    ) -> Option<heteroprio_core::WorkerId> {
        self.0.as_online().spoliation_victim(worker, ctx)
    }

    fn worker_order(&self) -> heteroprio_core::WorkerOrder {
        // `as_online` needs `&mut`; route through the erased trait instead.
        self.0.worker_order_erased()
    }
}

impl SnapshotOnlinePolicy for PolicyRef<'_> {
    fn ready_order(&self) -> Vec<TaskId> {
        self.0.ready_order_erased()
    }
}

/// Build the snapshotable policy for `scheduler`, applying its priority
/// scheme to `graph`. Static HEFT has no online state to journal.
fn durable_policy(
    scheduler: Scheduler,
    graph: &mut TaskGraph,
) -> Result<Box<dyn ErasedSnapshotPolicy>, String> {
    Ok(match scheduler {
        Scheduler::HeteroPrio(scheme) => {
            apply_bottom_level_priorities(graph, scheme);
            Box::new(HeteroPrioDagPolicy::new(HeteroPrioConfig::new()))
        }
        Scheduler::DualHp(rank, scheme) => {
            apply_bottom_level_priorities(graph, scheme);
            Box::new(DualHpDagPolicy::new(rank))
        }
        Scheduler::PriorityList(scheme) => {
            apply_bottom_level_priorities(graph, scheme);
            Box::new(PriorityListPolicy::new())
        }
        Scheduler::Heft(..) => {
            return Err("static HEFT builds its schedule outside the kernel and cannot journal; \
                 use an online scheduler"
                .to_string())
        }
    })
}

/// Validate the finished schedule and assemble the [`Report`] (shared by
/// the plain, durable and resumed execution paths).
fn finish_report(
    graph: TaskGraph,
    platform: &Platform,
    transfer: &TransferModel,
    plan: FaultPlan,
    schedule: Schedule,
    summary: TraceSummary,
    events: Vec<SchedEvent>,
) -> Result<Report, String> {
    if plan.is_none() {
        schedule
            .validate_with_overhead(graph.instance(), platform, transfer.cross_class_penalty)
            .map_err(|e| format!("invalid schedule: {e}"))?;
    } else {
        // Jitter perturbs durations and failures truncate aborted runs,
        // so only the duration-agnostic invariants can be enforced.
        schedule
            .validate_structure(graph.instance(), platform)
            .map_err(|e| format!("invalid schedule: {e}"))?;
    }
    check_precedence(&graph, &schedule)?;
    let makespan = schedule.makespan();
    let spoliations = schedule.spoliation_count();
    let lower_bound = dag_lower_bound(&graph, platform);
    Ok(Report {
        graph,
        schedule,
        makespan,
        lower_bound,
        spoliations,
        summary,
        events,
        fault_plan: plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;

    fn unit(p: f64, q: f64) -> Task {
        Task::new(p, q)
    }

    #[test]
    fn read_after_write_orders() {
        let mut rt = Runtime::new(Platform::new(1, 1));
        let a = rt.register_data("a");
        let w = rt.submit(unit(1.0, 1.0), "w", &[(a, Access::Write)]);
        let r = rt.submit(unit(1.0, 1.0), "r", &[(a, Access::Read)]);
        let g = rt.build_graph().unwrap();
        assert_eq!(g.predecessors(r), &[w]);
    }

    #[test]
    fn reads_are_concurrent() {
        let mut rt = Runtime::new(Platform::new(2, 2));
        let a = rt.register_data("a");
        rt.submit(unit(1.0, 1.0), "w", &[(a, Access::Write)]);
        let r1 = rt.submit(unit(1.0, 1.0), "r1", &[(a, Access::Read)]);
        let r2 = rt.submit(unit(1.0, 1.0), "r2", &[(a, Access::Read)]);
        let g = rt.build_graph().unwrap();
        assert!(!g.predecessors(r2).contains(&r1));
        // Both readers depend only on the writer: 1 + 1 = 2 time units.
        let mut rt2 = Runtime::new(Platform::new(2, 2));
        let a = rt2.register_data("a");
        rt2.submit(unit(1.0, 1.0), "w", &[(a, Access::Write)]);
        rt2.submit(unit(1.0, 1.0), "r1", &[(a, Access::Read)]);
        rt2.submit(unit(1.0, 1.0), "r2", &[(a, Access::Read)]);
        let report = rt2.run(Scheduler::default()).unwrap();
        assert!(approx_eq(report.makespan, 2.0), "{}", report.makespan);
    }

    #[test]
    fn write_after_read_waits_for_readers() {
        let mut rt = Runtime::new(Platform::new(2, 2));
        let a = rt.register_data("a");
        let w1 = rt.submit(unit(1.0, 1.0), "w1", &[(a, Access::Write)]);
        let r = rt.submit(unit(5.0, 5.0), "r", &[(a, Access::Read)]);
        let w2 = rt.submit(unit(1.0, 1.0), "w2", &[(a, Access::Write)]);
        let g = rt.build_graph().unwrap();
        let mut preds = g.predecessors(w2).to_vec();
        preds.sort();
        assert_eq!(preds, vec![w1, r]);
    }

    #[test]
    fn writers_chain() {
        let mut rt = Runtime::new(Platform::new(1, 1));
        let a = rt.register_data("a");
        let ids: Vec<_> =
            (0..5).map(|_| rt.submit(unit(1.0, 2.0), "acc", &[(a, Access::ReadWrite)])).collect();
        // Each RW depends exactly on the previous RW.
        let g = rt.builder.clone().build().unwrap();
        for pair in ids.windows(2) {
            assert_eq!(g.predecessors(pair[1]), &[pair[0]]);
        }
        let mut rt = Runtime::new(Platform::new(1, 1));
        let a = rt.register_data("a");
        for _ in 0..5 {
            rt.submit(unit(1.0, 2.0), "acc", &[(a, Access::ReadWrite)]);
        }
        let report = rt.run(Scheduler::default()).unwrap();
        // Fully serial chain, CPU faster (1.0 each).
        assert!(approx_eq(report.makespan, 5.0), "{}", report.makespan);
    }

    #[test]
    fn independent_data_runs_in_parallel() {
        let mut rt = Runtime::new(Platform::new(2, 2));
        for i in 0..4 {
            let h = rt.register_data(if i % 2 == 0 { "x" } else { "y" });
            rt.submit(unit(3.0, 3.0), "job", &[(h, Access::ReadWrite)]);
        }
        let report = rt.run(Scheduler::default()).unwrap();
        assert!(approx_eq(report.makespan, 3.0), "{}", report.makespan);
    }

    #[test]
    fn all_schedulers_run_a_stencil() {
        // A small 1D stencil: u[i] ← f(u[i-1], u[i], u[i+1]) over 3 sweeps.
        let build = || {
            let mut rt = Runtime::new(Platform::new(2, 1));
            let cells: Vec<DataHandle> = (0..6).map(|_| rt.register_data("cell")).collect();
            for _sweep in 0..3 {
                for i in 0..cells.len() {
                    let mut acc = vec![(cells[i], Access::ReadWrite)];
                    if i > 0 {
                        acc.push((cells[i - 1], Access::Read));
                    }
                    if i + 1 < cells.len() {
                        acc.push((cells[i + 1], Access::Read));
                    }
                    rt.submit(unit(2.0, 1.0), "stencil", &acc);
                }
            }
            rt
        };
        for scheduler in [
            Scheduler::HeteroPrio(WeightScheme::Min),
            Scheduler::DualHp(DualHpRank::Fifo, WeightScheme::Min),
            Scheduler::DualHp(DualHpRank::Priority, WeightScheme::Avg),
            Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion),
            Scheduler::PriorityList(WeightScheme::Avg),
        ] {
            let report = build().run(scheduler).unwrap();
            assert!(report.makespan >= report.lower_bound - 1e-9, "{scheduler:?}");
            assert_eq!(report.graph.len(), 18);
        }
    }

    #[test]
    fn transfer_penalty_flows_through() {
        let mut rt = Runtime::new(Platform::new(1, 1)).with_transfer_penalty(0.5);
        let a = rt.register_data("a");
        rt.submit(unit(10.0, 1.0), "w", &[(a, Access::Write)]);
        rt.submit(unit(1.0, 10.0), "r", &[(a, Access::Read)]);
        let report = rt.run(Scheduler::HeteroPrio(WeightScheme::Min)).unwrap();
        // GPU runs the first (1.0), CPU the second (1.0 + 0.5 cross penalty).
        assert!(approx_eq(report.makespan, 2.5), "{}", report.makespan);
    }

    #[test]
    fn empty_submission_is_an_error() {
        let rt = Runtime::new(Platform::new(1, 1));
        assert!(rt.run(Scheduler::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "unregistered handle")]
    fn unknown_handle_panics() {
        let mut rt = Runtime::new(Platform::new(1, 1));
        rt.submit(unit(1.0, 1.0), "bad", &[(DataHandle(7), Access::Read)]);
    }

    #[test]
    fn faults_flow_through_the_runtime() {
        use heteroprio_simulator::{FaultPlan, WorkerFault};
        // 2 CPUs + 1 GPU; the GPU dies early, yet the chain completes.
        let build = || {
            let mut rt = Runtime::new(Platform::new(2, 1));
            let a = rt.register_data("a");
            for _ in 0..6 {
                rt.submit(unit(2.0, 1.0), "step", &[(a, Access::ReadWrite)]);
            }
            rt
        };
        let baseline = build().run(Scheduler::default()).unwrap();
        let plan = FaultPlan {
            worker_faults: vec![WorkerFault::permanent(2, 1.5)],
            ..FaultPlan::default()
        };
        let report = build().with_faults(plan.clone()).run_traced(Scheduler::default()).unwrap();
        assert_eq!(report.fault_plan, plan);
        assert_eq!(report.summary.worker_failures, 1);
        assert!(report.makespan > baseline.makespan, "losing the GPU must cost time");
        // Every task still completed exactly once.
        assert_eq!(report.schedule.runs.len(), 6);
    }

    #[test]
    fn zero_fault_plan_matches_fault_free_run() {
        use heteroprio_simulator::FaultPlan;
        let build = || {
            let mut rt = Runtime::new(Platform::new(2, 1));
            let a = rt.register_data("a");
            rt.submit(unit(2.0, 1.0), "w", &[(a, Access::Write)]);
            rt.submit(unit(3.0, 1.0), "r", &[(a, Access::ReadWrite)]);
            rt
        };
        let plain = build().run(Scheduler::default()).unwrap();
        let faulty = build().with_faults(FaultPlan::NONE).run(Scheduler::default()).unwrap();
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(plain.schedule.runs, faulty.schedule.runs);
    }

    #[test]
    fn crash_and_resume_matches_the_uninterrupted_run() {
        use heteroprio_core::{CrashPlan, MemCheckpointStore};
        use heteroprio_trace::MemJournal;
        let build = || {
            let mut rt = Runtime::new(Platform::new(2, 1));
            let cells: Vec<DataHandle> = (0..4).map(|_| rt.register_data("c")).collect();
            for _ in 0..3 {
                for &c in &cells {
                    rt.submit(unit(3.0, 1.0), "sweep", &[(c, Access::ReadWrite)]);
                }
            }
            rt
        };
        for scheduler in [
            Scheduler::HeteroPrio(WeightScheme::Min),
            Scheduler::DualHp(DualHpRank::Priority, WeightScheme::Min),
            Scheduler::PriorityList(WeightScheme::Min),
        ] {
            let reference = build().run_traced(scheduler).unwrap();
            let total = reference.events.len() as u64;
            for crash_at in [1, total / 2, total] {
                let mut journal = MemJournal::new();
                let mut store = MemCheckpointStore::default();
                let durability = DurabilityOptions {
                    crash: CrashPlan::at_event(crash_at),
                    checkpoint_every: Some(3),
                    store: Some(&mut store),
                };
                let outcome = build()
                    .run_durable(scheduler, &mut journal, durability, &NullRegistry)
                    .unwrap();
                assert!(
                    matches!(outcome, DurableOutcome::Crashed { events, .. } if events == crash_at)
                );
                assert_eq!(journal.len() as u64, crash_at);
                let resumed = build()
                    .resume_from(scheduler, store.latest.as_ref(), &mut journal, &NullRegistry)
                    .unwrap();
                assert_eq!(resumed.events, reference.events, "{scheduler:?} @ {crash_at}");
                assert_eq!(resumed.schedule.runs, reference.schedule.runs);
                // The journal now holds the full stream again, and both the
                // crashed run and the resume committed their tails.
                assert_eq!(journal.events(), reference.events.as_slice());
                assert!(journal.syncs() >= 2, "final syncs at crash and at resume");
            }
        }
    }

    #[test]
    fn durable_run_without_crash_completes_and_journals_everything() {
        use heteroprio_trace::MemJournal;
        let build = || {
            let mut rt = Runtime::new(Platform::new(1, 1));
            let a = rt.register_data("a");
            for _ in 0..4 {
                rt.submit(unit(2.0, 1.0), "step", &[(a, Access::ReadWrite)]);
            }
            rt
        };
        let reference = build().run_traced(Scheduler::default()).unwrap();
        let mut journal = MemJournal::new();
        let report = build()
            .run_durable(
                Scheduler::default(),
                &mut journal,
                DurabilityOptions::default(),
                &NullRegistry,
            )
            .unwrap()
            .report()
            .expect("no crash was injected");
        assert_eq!(report.events, reference.events);
        assert_eq!(journal.events(), reference.events.as_slice());
        assert_eq!(journal.syncs(), 1, "completion commits the journal tail");
        // HEFT has no kernel to journal.
        let mut journal = MemJournal::new();
        let err = build().run_durable(
            Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion),
            &mut journal,
            DurabilityOptions::default(),
            &NullRegistry,
        );
        assert!(err.unwrap_err().contains("cannot journal"));
    }

    #[test]
    fn heft_rejects_fault_injection() {
        use heteroprio_simulator::{FaultPlan, WorkerFault};
        let mut rt = Runtime::new(Platform::new(1, 1));
        let a = rt.register_data("a");
        rt.submit(unit(1.0, 1.0), "t", &[(a, Access::Write)]);
        let plan = FaultPlan {
            worker_faults: vec![WorkerFault::permanent(0, 1.0)],
            ..FaultPlan::default()
        };
        let err =
            rt.with_faults(plan).run(Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion));
        assert!(err.unwrap_err().contains("fault injection"));
    }

    #[test]
    fn heft_rejects_transfer_model() {
        let mut rt = Runtime::new(Platform::new(1, 1)).with_transfer_penalty(1.0);
        let a = rt.register_data("a");
        rt.submit(unit(1.0, 1.0), "t", &[(a, Access::Write)]);
        let err = rt.run(Scheduler::Heft(WeightScheme::Avg, HeftVariant::Insertion));
        assert!(err.is_err());
    }
}
