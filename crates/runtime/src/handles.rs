//! Data handles and access modes.
//!
//! Task-based runtime systems (StarPU, StarSs, PaRSEC, …) do not take an
//! explicit DAG: the application *submits* tasks that name the data they
//! touch and how (read / write / read-write), and the runtime infers
//! dependencies under sequential consistency — tasks behave as if executed
//! in submission order with respect to each datum.

use std::fmt;

/// Identifier of a registered piece of data (e.g. a matrix tile).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataHandle(pub u32);

impl DataHandle {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DataHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// How a task accesses a handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Read-only: concurrent with other reads of the same handle.
    Read,
    /// Write (the previous value is not read).
    Write,
    /// Read-modify-write.
    ReadWrite,
}

impl Access {
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }

    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_predicates() {
        assert!(Access::Read.reads() && !Access::Read.writes());
        assert!(Access::Write.writes() && !Access::Write.reads());
        assert!(Access::ReadWrite.reads() && Access::ReadWrite.writes());
    }
}
