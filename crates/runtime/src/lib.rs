#![forbid(unsafe_code)]

//! # heteroprio-runtime
//!
//! A StarPU-like task-submission front-end over the simulator: applications
//! register **data handles**, submit tasks with **access modes**
//! (read / write / read-write), and the runtime infers the dependency DAG
//! under sequential consistency, then executes it with a pluggable
//! scheduler (HeteroPrio by default). This is the programming model the
//! paper's workloads actually use — [`apps`] contains the three tiled
//! factorizations written as submission loops, cross-validated against the
//! explicit DAG generators.
//!
//! ```
//! use heteroprio_runtime::{Access, Runtime, Scheduler};
//! use heteroprio_core::{Platform, Task};
//!
//! let mut rt = Runtime::new(Platform::new(2, 1));
//! let x = rt.register_data("x");
//! rt.submit(Task::new(3.0, 1.0), "init", &[(x, Access::Write)]);
//! rt.submit(Task::new(9.0, 1.0), "update", &[(x, Access::ReadWrite)]);
//! let report = rt.run(Scheduler::default()).unwrap();
//! assert_eq!(report.makespan, 2.0);
//! ```

pub mod apps;
pub mod handles;
pub mod runtime;

pub use apps::{submit_cholesky, submit_lu, submit_qr};
pub use handles::{Access, DataHandle};
pub use heteroprio_simulator::{FaultPlan, RetryPolicy, SimError, WorkerFault};
pub use runtime::{DurableOutcome, Report, Runtime, Scheduler};
