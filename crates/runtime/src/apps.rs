//! Chameleon-style applications written against the submission API: the
//! tiled factorizations expressed as loops of task submissions with data
//! access modes, letting the runtime infer the DAG — exactly how the
//! paper's workloads reach StarPU.
//!
//! These cross-validate the explicit generators in `heteroprio-taskgraph`:
//! for Cholesky and LU the inferred DAG matches the generator edge for
//! edge; for QR the inferred DAG additionally carries the
//! write-after-read edges on the diagonal tile (`ORMQR` reads it, `TSQRT`
//! overwrites it) that the simplified generator leaves out.

use crate::handles::{Access, DataHandle};
use crate::runtime::Runtime;
use heteroprio_taskgraph::{Kernel, KernelTiming};

/// Register the lower-triangular tiles of an `n × n` tiled matrix.
/// `tiles[i][j]` is defined for `j <= i`.
fn register_lower(rt: &mut Runtime, n: usize) -> Vec<Vec<Option<DataHandle>>> {
    (0..n).map(|i| (0..n).map(|j| (j <= i).then(|| rt.register_data("tile"))).collect()).collect()
}

/// Register all tiles of an `n × n` tiled matrix.
fn register_full(rt: &mut Runtime, n: usize) -> Vec<Vec<DataHandle>> {
    (0..n).map(|_| (0..n).map(|_| rt.register_data("tile")).collect()).collect()
}

/// Submit a tiled Cholesky factorization (`A = L·Lᵀ`, lower triangular).
pub fn submit_cholesky(rt: &mut Runtime, n: usize, timing: &impl KernelTiming) {
    assert!(n >= 1);
    let a = register_lower(rt, n);
    let tile = |i: usize, j: usize| a[i][j].expect("lower-triangular tile");
    for k in 0..n {
        rt.submit(
            timing.task(Kernel::Potrf),
            Kernel::Potrf.name(),
            &[(tile(k, k), Access::ReadWrite)],
        );
        for i in k + 1..n {
            rt.submit(
                timing.task(Kernel::Trsm),
                Kernel::Trsm.name(),
                &[(tile(k, k), Access::Read), (tile(i, k), Access::ReadWrite)],
            );
        }
        for i in k + 1..n {
            rt.submit(
                timing.task(Kernel::Syrk),
                Kernel::Syrk.name(),
                &[(tile(i, k), Access::Read), (tile(i, i), Access::ReadWrite)],
            );
            for j in k + 1..i {
                rt.submit(
                    timing.task(Kernel::Gemm),
                    Kernel::Gemm.name(),
                    &[
                        (tile(i, k), Access::Read),
                        (tile(j, k), Access::Read),
                        (tile(i, j), Access::ReadWrite),
                    ],
                );
            }
        }
    }
}

/// Submit a tiled QR factorization (flat reduction tree).
pub fn submit_qr(rt: &mut Runtime, n: usize, timing: &impl KernelTiming) {
    assert!(n >= 1);
    let a = register_full(rt, n);
    for k in 0..n {
        rt.submit(
            timing.task(Kernel::Geqrt),
            Kernel::Geqrt.name(),
            &[(a[k][k], Access::ReadWrite)],
        );
        for j in k + 1..n {
            rt.submit(
                timing.task(Kernel::Ormqr),
                Kernel::Ormqr.name(),
                &[(a[k][k], Access::Read), (a[k][j], Access::ReadWrite)],
            );
        }
        for i in k + 1..n {
            rt.submit(
                timing.task(Kernel::Tsqrt),
                Kernel::Tsqrt.name(),
                &[(a[k][k], Access::ReadWrite), (a[i][k], Access::ReadWrite)],
            );
            for j in k + 1..n {
                rt.submit(
                    timing.task(Kernel::Tsmqr),
                    Kernel::Tsmqr.name(),
                    &[
                        (a[i][k], Access::Read),
                        (a[k][j], Access::ReadWrite),
                        (a[i][j], Access::ReadWrite),
                    ],
                );
            }
        }
    }
}

/// Submit a tiled LU factorization without pivoting.
pub fn submit_lu(rt: &mut Runtime, n: usize, timing: &impl KernelTiming) {
    assert!(n >= 1);
    let a = register_full(rt, n);
    for k in 0..n {
        rt.submit(
            timing.task(Kernel::Getrf),
            Kernel::Getrf.name(),
            &[(a[k][k], Access::ReadWrite)],
        );
        for j in k + 1..n {
            rt.submit(
                timing.task(Kernel::Trsm),
                Kernel::Trsm.name(),
                &[(a[k][k], Access::Read), (a[k][j], Access::ReadWrite)],
            );
        }
        for i in k + 1..n {
            rt.submit(
                timing.task(Kernel::Trsm),
                Kernel::Trsm.name(),
                &[(a[k][k], Access::Read), (a[i][k], Access::ReadWrite)],
            );
        }
        for i in k + 1..n {
            for j in k + 1..n {
                rt.submit(
                    timing.task(Kernel::Gemm),
                    Kernel::Gemm.name(),
                    &[
                        (a[i][k], Access::Read),
                        (a[k][j], Access::Read),
                        (a[i][j], Access::ReadWrite),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Scheduler;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::{HeteroPrioConfig, Platform};
    use heteroprio_schedulers::HeteroPrioDagPolicy;
    use heteroprio_simulator::simulate;
    use heteroprio_taskgraph::{
        cholesky, critical_path, expected_task_count, lu, qr, ConstTiming, Factorization,
        WeightScheme,
    };

    const T: ConstTiming = ConstTiming { cpu: 3.0, gpu: 1.0 };

    fn submitted_graph(f: Factorization, n: usize) -> heteroprio_taskgraph::TaskGraph {
        let mut rt = Runtime::new(Platform::new(2, 2));
        match f {
            Factorization::Cholesky => submit_cholesky(&mut rt, n, &T),
            Factorization::Qr => submit_qr(&mut rt, n, &T),
            Factorization::Lu => submit_lu(&mut rt, n, &T),
        }
        rt.build_graph().unwrap()
    }

    #[test]
    fn cholesky_submission_matches_generator_exactly() {
        for n in 1..=6 {
            let sub = submitted_graph(Factorization::Cholesky, n);
            let gen = cholesky(n, &T);
            assert_eq!(sub.len(), gen.len(), "n={n}");
            assert_eq!(sub.edge_count(), gen.edge_count(), "n={n}");
            assert_eq!(
                critical_path(&sub, WeightScheme::Min),
                critical_path(&gen, WeightScheme::Min),
                "n={n}"
            );
            // Same scheduler → same makespan on both graphs.
            let plat = Platform::new(3, 2);
            let ms = |g: &heteroprio_taskgraph::TaskGraph| {
                let mut p = HeteroPrioDagPolicy::new(HeteroPrioConfig::new());
                simulate(g, &plat, &mut p).makespan()
            };
            assert!(approx_eq(ms(&sub), ms(&gen)), "n={n}");
        }
    }

    #[test]
    fn lu_submission_matches_generator_exactly() {
        for n in 1..=5 {
            let sub = submitted_graph(Factorization::Lu, n);
            let gen = lu(n, &T);
            assert_eq!(sub.len(), gen.len(), "n={n}");
            assert_eq!(sub.edge_count(), gen.edge_count(), "n={n}");
            assert_eq!(
                critical_path(&sub, WeightScheme::Min),
                critical_path(&gen, WeightScheme::Min),
                "n={n}"
            );
        }
    }

    #[test]
    fn qr_submission_adds_war_edges_on_diagonal() {
        // The submission DAG is at least as constrained as the simplified
        // generator: same nodes, extra write-after-read edges (ORMQR reads
        // the diagonal tile that TSQRT then overwrites).
        for n in 2..=5 {
            let sub = submitted_graph(Factorization::Qr, n);
            let gen = qr(n, &T);
            assert_eq!(sub.len(), gen.len(), "n={n}");
            assert!(sub.edge_count() > gen.edge_count(), "n={n}");
            assert!(
                critical_path(&sub, WeightScheme::Min) >= critical_path(&gen, WeightScheme::Min),
                "n={n}"
            );
        }
    }

    #[test]
    fn submitted_cholesky_runs_end_to_end() {
        let mut rt = Runtime::new(Platform::new(4, 2));
        submit_cholesky(&mut rt, 6, &T);
        assert_eq!(rt.task_count(), expected_task_count(Factorization::Cholesky, 6));
        let report = rt.run(Scheduler::default()).unwrap();
        assert!(report.ratio() >= 1.0 - 1e-9);
        assert_eq!(report.schedule.runs.len(), report.graph.len());
    }

    #[test]
    fn single_tile_factorizations_are_single_tasks() {
        for f in Factorization::ALL {
            let g = submitted_graph(f, 1);
            assert_eq!(g.len(), 1, "{}", f.name());
            assert_eq!(g.edge_count(), 0);
        }
    }
}
