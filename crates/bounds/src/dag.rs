//! Lower bound for DAG instances (used as the Figure 7 baseline).
//!
//! Following \[12\] (Agullo et al., IPDPS 2016), the independent-task area
//! bound is strengthened with the dependency constraint: no schedule can
//! beat the critical path where every task runs on its fastest resource.
//! The Figure 7 ratios in the paper are taken against exactly this kind of
//! optimistic bound.

use crate::area::combined_lower_bound;
use heteroprio_core::Platform;
use heteroprio_taskgraph::{critical_path, TaskGraph, WeightScheme};

/// `max(AreaBound(I), max_min critical path)`.
pub fn dag_lower_bound(graph: &TaskGraph, platform: &Platform) -> f64 {
    let area = combined_lower_bound(graph.instance(), platform);
    let cp = critical_path(graph, WeightScheme::Min);
    area.max(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_taskgraph::{chain, fork_join};

    #[test]
    fn chain_bound_is_critical_path() {
        // A serial chain cannot be parallelized: bound = Σ min times.
        let g = chain(10, 4.0, 1.0);
        let plat = Platform::new(4, 4);
        assert!(approx_eq(dag_lower_bound(&g, &plat), 10.0));
    }

    #[test]
    fn wide_graph_bound_is_area() {
        // Fork-join with a huge middle: area dominates the 3-task path.
        let g = fork_join(100, 1.0, 1.0);
        let plat = Platform::new(1, 1);
        let lb = dag_lower_bound(&g, &plat);
        // 102 unit tasks over 2 unit-speed workers → at least 51.
        assert!(lb >= 51.0 - 1e-9, "{lb}");
    }

    #[test]
    fn bound_dominates_both_components() {
        let g = chain(5, 2.0, 3.0);
        let plat = Platform::new(2, 2);
        let lb = dag_lower_bound(&g, &plat);
        let area = combined_lower_bound(g.instance(), &plat);
        let cp = critical_path(&g, WeightScheme::Min);
        assert!(lb >= area - 1e-12);
        assert!(lb >= cp - 1e-12);
    }
}
