//! Exact optimal makespan for small instances, by branch and bound.
//!
//! Two nested searches: the outer one assigns each task to a resource
//! *class* (CPU or GPU); the inner one solves `P||Cmax` exactly within each
//! class (identical machines). Pruning uses the area bound, the trivial
//! `max_i min(p_i, q_i)` bound, per-class load bounds, and an LPT-based
//! incumbent. Practical to roughly a dozen tasks — enough to certify the
//! paper's approximation ratios on thousands of random micro-instances.

use crate::area::combined_lower_bound;
use heteroprio_core::list::lpt_makespan;
use heteroprio_core::model::{Instance, Platform, ResourceKind, TaskId};

/// Hard cap on instance size; the search is exponential.
pub const MAX_EXACT_TASKS: usize = 16;

/// Exact optimal makespan of `P||Cmax` on identical machines (DFS + pruning).
///
/// `durations` need not be sorted. Returns 0 for an empty set.
pub fn optimal_homogeneous_makespan(durations: &[f64], machines: usize) -> f64 {
    assert!(machines > 0);
    assert!(durations.len() <= 24, "too many tasks for the exact P||Cmax search");
    if durations.is_empty() {
        return 0.0;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let machines = machines.min(sorted.len());
    let total: f64 = sorted.iter().sum();
    let lower = (total / machines as f64).max(sorted[0]);
    let mut best = lpt_makespan(&sorted, machines);
    // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
    if best <= lower + 1e-12 {
        return best;
    }
    let mut loads = vec![0.0; machines];
    dfs_pcmax(&sorted, 0, &mut loads, &mut best, lower);
    best
}

fn dfs_pcmax(tasks: &[f64], idx: usize, loads: &mut [f64], best: &mut f64, lower: f64) {
    // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
    if *best <= lower + 1e-12 {
        return; // incumbent is provably optimal
    }
    if idx == tasks.len() {
        let ms = loads.iter().copied().fold(0.0, f64::max);
        if ms < *best {
            *best = ms;
        }
        return;
    }
    let d = tasks[idx];
    // Remaining work can't beat this partial max — prune.
    let current_max = loads.iter().copied().fold(0.0, f64::max);
    // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
    if current_max >= *best - 1e-12 {
        return;
    }
    let mut tried_empty = false;
    // Try machines in load order, skipping duplicate loads (symmetry).
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|&a, &b| loads[a].total_cmp(&loads[b]));
    let mut prev_load = f64::NEG_INFINITY;
    for &m in &order {
        // lint: allow(float-ord): symmetry pruning — machines with identical load are equivalent.
        if (loads[m] - prev_load).abs() <= 1e-15 {
            continue; // identical machine state
        }
        prev_load = loads[m];
        // lint: allow(float-eq): exact sentinel — a load is 0.0 only if never assigned to
        // (0.0 + d - d restores exactly 0.0), never the result of general arithmetic.
        if loads[m] == 0.0 {
            if tried_empty {
                continue;
            }
            tried_empty = true;
        }
        // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
        if loads[m] + d >= *best - 1e-12 {
            continue;
        }
        loads[m] += d;
        dfs_pcmax(tasks, idx + 1, loads, best, lower);
        loads[m] -= d;
    }
}

/// Result of the exact two-class search.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    pub makespan: f64,
    /// Class of each task in the optimal assignment found.
    pub assignment: Vec<ResourceKind>,
}

/// Exact optimal makespan for independent tasks on `m` CPUs + `n` GPUs.
///
/// Panics if the instance has more than [`MAX_EXACT_TASKS`] tasks.
pub fn optimal_makespan(instance: &Instance, platform: &Platform) -> ExactSolution {
    assert!(
        instance.len() <= MAX_EXACT_TASKS,
        "exact solver limited to {MAX_EXACT_TASKS} tasks, got {}",
        instance.len()
    );
    if instance.is_empty() {
        return ExactSolution { makespan: 0.0, assignment: Vec::new() };
    }
    // Order tasks by decreasing max time: big rocks first tightens pruning.
    let mut order: Vec<TaskId> = instance.ids().collect();
    order.sort_by(|&a, &b| instance.task(b).max_time().total_cmp(&instance.task(a).max_time()));

    let lower = combined_lower_bound(instance, platform);

    // Incumbent: every task on its faster class, LPT within classes.
    let mut cpu0 = Vec::new();
    let mut gpu0 = Vec::new();
    let mut greedy_assign = vec![ResourceKind::Cpu; instance.len()];
    for id in instance.ids() {
        let t = instance.task(id);
        if t.gpu_time() <= t.cpu_time() {
            gpu0.push(t.gpu_time());
            greedy_assign[id.index()] = ResourceKind::Gpu;
        } else {
            cpu0.push(t.cpu_time());
        }
    }
    let mut best = optimal_homogeneous_makespan(&cpu0, platform.cpus())
        .max(optimal_homogeneous_makespan(&gpu0, platform.gpus()));
    let mut best_assign = greedy_assign;

    let mut state = ClassSearch {
        instance,
        platform,
        order,
        lower,
        cpu_tasks: Vec::new(),
        gpu_tasks: Vec::new(),
        assign: vec![ResourceKind::Cpu; instance.len()],
    };
    state.dfs(0, 0.0, 0.0, &mut best, &mut best_assign);
    ExactSolution { makespan: best, assignment: best_assign }
}

struct ClassSearch<'a> {
    instance: &'a Instance,
    platform: &'a Platform,
    order: Vec<TaskId>,
    lower: f64,
    cpu_tasks: Vec<f64>,
    gpu_tasks: Vec<f64>,
    assign: Vec<ResourceKind>,
}

impl ClassSearch<'_> {
    fn dfs(
        &mut self,
        idx: usize,
        cpu_load: f64,
        gpu_load: f64,
        best: &mut f64,
        best_assign: &mut Vec<ResourceKind>,
    ) {
        // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
        if *best <= self.lower + 1e-12 {
            return;
        }
        // Load-based pruning: even perfectly balanced, each class needs at
        // least its current total over its machine count.
        let cpu_lb = cpu_load / self.platform.cpus() as f64;
        let gpu_lb = gpu_load / self.platform.gpus() as f64;
        // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
        if cpu_lb >= *best - 1e-12 || gpu_lb >= *best - 1e-12 {
            return;
        }
        if idx == self.order.len() {
            let ms = optimal_homogeneous_makespan(&self.cpu_tasks, self.platform.cpus())
                .max(optimal_homogeneous_makespan(&self.gpu_tasks, self.platform.gpus()));
            if ms < *best {
                *best = ms;
                best_assign.clone_from(&self.assign);
            }
            return;
        }
        let id = self.order[idx];
        let t = *self.instance.task(id);
        // Branch on the class whose single-task time is smaller first.
        let first_gpu = t.gpu_time() <= t.cpu_time();
        for gpu_side in [first_gpu, !first_gpu] {
            if gpu_side {
                // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
                if t.gpu_time() < *best - 1e-12 {
                    self.gpu_tasks.push(t.gpu_time());
                    self.assign[id.index()] = ResourceKind::Gpu;
                    self.dfs(idx + 1, cpu_load, gpu_load + t.gpu_time(), best, best_assign);
                    self.gpu_tasks.pop();
                }
            // lint: allow(float-ord): deliberate branch-and-bound pruning slack, not a time comparison.
            } else if t.cpu_time() < *best - 1e-12 {
                self.cpu_tasks.push(t.cpu_time());
                self.assign[id.index()] = ResourceKind::Cpu;
                self.dfs(idx + 1, cpu_load + t.cpu_time(), gpu_load, best, best_assign);
                self.cpu_tasks.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::{approx_eq, PHI};

    #[test]
    fn homogeneous_exact_beats_or_matches_lpt() {
        let durations = [7.0, 5.0, 5.0, 4.0, 4.0, 3.0];
        let exact = optimal_homogeneous_makespan(&durations, 2);
        assert!(approx_eq(exact, 14.0), "{exact}");
        // LPT gives 7+4+3 = 14 here as well.
        assert!(exact <= lpt_makespan(&durations, 2) + 1e-12);
    }

    #[test]
    fn homogeneous_exact_finds_perfect_split() {
        // LPT fails on this classic: [3,3,2,2,2] on 2 machines → LPT 7, OPT 6.
        let durations = [3.0, 3.0, 2.0, 2.0, 2.0];
        assert!(approx_eq(optimal_homogeneous_makespan(&durations, 2), 6.0));
        assert!(approx_eq(lpt_makespan(&durations, 2), 7.0));
    }

    #[test]
    fn theorem8_optimum_is_one() {
        let inst = Instance::from_times(&[(PHI, 1.0), (1.0, 1.0 / PHI)]);
        let plat = Platform::new(1, 1);
        let sol = optimal_makespan(&inst, &plat);
        assert!(approx_eq(sol.makespan, 1.0), "{}", sol.makespan);
        assert_eq!(sol.assignment[0], ResourceKind::Gpu);
        assert_eq!(sol.assignment[1], ResourceKind::Cpu);
    }

    #[test]
    fn exact_at_least_area_bound() {
        let inst =
            Instance::from_times(&[(3.0, 1.5), (2.0, 4.0), (6.0, 1.0), (1.0, 1.0), (2.5, 2.5)]);
        let plat = Platform::new(2, 1);
        let sol = optimal_makespan(&inst, &plat);
        let lb = combined_lower_bound(&inst, &plat);
        assert!(sol.makespan >= lb - 1e-9, "{} < {lb}", sol.makespan);
    }

    #[test]
    fn exact_assignment_realizes_makespan() {
        let inst = Instance::from_times(&[(3.0, 1.5), (2.0, 4.0), (6.0, 1.0), (1.0, 1.0)]);
        let plat = Platform::new(2, 2);
        let sol = optimal_makespan(&inst, &plat);
        // Recompute per-class optimal makespans from the reported assignment.
        let cpu: Vec<f64> = inst
            .ids()
            .filter(|id| sol.assignment[id.index()] == ResourceKind::Cpu)
            .map(|id| inst.task(id).cpu_time())
            .collect();
        let gpu: Vec<f64> = inst
            .ids()
            .filter(|id| sol.assignment[id.index()] == ResourceKind::Gpu)
            .map(|id| inst.task(id).gpu_time())
            .collect();
        let ms = optimal_homogeneous_makespan(&cpu, plat.cpus())
            .max(optimal_homogeneous_makespan(&gpu, plat.gpus()));
        assert!(approx_eq(ms, sol.makespan));
    }

    #[test]
    fn single_task_optimum_is_min_time() {
        let inst = Instance::from_times(&[(4.0, 9.0)]);
        let plat = Platform::new(1, 1);
        assert!(approx_eq(optimal_makespan(&inst, &plat).makespan, 4.0));
    }

    #[test]
    fn empty_instance_is_zero() {
        let inst = Instance::new();
        let plat = Platform::new(1, 1);
        assert_eq!(optimal_makespan(&inst, &plat).makespan, 0.0);
    }

    #[test]
    fn brute_force_cross_check_small() {
        // Compare against full enumeration on a 6-task instance.
        let times = [(2.0, 5.0), (5.0, 2.0), (3.0, 3.0), (4.0, 1.0), (1.0, 4.0), (2.5, 2.5)];
        let inst = Instance::from_times(&times);
        let plat = Platform::new(2, 1);
        let sol = optimal_makespan(&inst, &plat);
        let mut brute = f64::INFINITY;
        for mask in 0u32..(1 << times.len()) {
            let mut cpu = Vec::new();
            let mut gpu = Vec::new();
            for (i, &(p, q)) in times.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cpu.push(p);
                } else {
                    gpu.push(q);
                }
            }
            let ms = optimal_homogeneous_makespan(&cpu, plat.cpus())
                .max(optimal_homogeneous_makespan(&gpu, plat.gpus()));
            brute = brute.min(ms);
        }
        assert!(approx_eq(sol.makespan, brute), "{} vs {brute}", sol.makespan);
    }
}
