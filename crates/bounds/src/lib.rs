#![forbid(unsafe_code)]

//! # heteroprio-bounds
//!
//! Lower bounds and exact optima for the two-resource-class scheduling model:
//!
//! * the paper's §4.2 **area bound** in closed form, with the structural
//!   guarantees of Lemmas 1 and 2 ([`area_bound`]);
//! * the trivial `max_i min(p_i, q_i)` bound and the combined experiment
//!   baseline ([`combined_lower_bound`]);
//! * a **DAG lower bound** (area + critical path, as used for Figure 7)
//!   ([`dag_lower_bound`]);
//! * an **exact branch-and-bound** optimum for small instances, used to
//!   certify the approximation ratios in tests ([`optimal_makespan`]).

pub mod area;
pub mod dag;
pub mod exact;

pub use area::{
    area_bound, area_bound_dual, check_structure, class_usage, combined_lower_bound,
    fractional_objective, min_time_bound, AreaBound,
};
pub use dag::dag_lower_bound;
pub use exact::{optimal_homogeneous_makespan, optimal_makespan, ExactSolution, MAX_EXACT_TASKS};
