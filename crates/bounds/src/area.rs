//! The area (divisible-load) lower bound of §4.2, in closed form.
//!
//! The paper defines `AreaBound(I)` as the optimum of a linear program that
//! lets every task be split fractionally between the CPU class and the GPU
//! class. Lemma 1 shows both classes finish simultaneously at the optimum;
//! Lemma 2 shows the optimal assignment is a threshold on the acceleration
//! factor: there is a `k > 0` such that every task with ρ > k is entirely on
//! GPUs and every task with ρ < k entirely on CPUs, with at most the
//! threshold tasks split. This module computes that optimum exactly by
//! sorting on ρ and locating the crossing point — no LP solver needed.

use heteroprio_core::model::{ClassId, Instance, Platform, ResourceKind, TaskId};
use heteroprio_core::time::{approx_le, strictly_less};

/// The exact solution of the area-bound linear program.
#[derive(Clone, Debug)]
pub struct AreaBound {
    /// The bound itself: a lower bound on the optimal makespan.
    pub value: f64,
    /// `x[i]`: fraction of task `i` processed on the CPU class
    /// (`1 - x[i]` on the GPU class), indexed by task id.
    pub cpu_fraction: Vec<f64>,
    /// The acceleration-factor threshold `k` of Lemma 2 (any value separating
    /// the GPU side from the CPU side; the ρ of the split task when one is
    /// split).
    pub threshold: f64,
}

impl AreaBound {
    /// Total CPU-class load of the fractional assignment, divided by `m`
    /// (i.e. the CPU-class finish time).
    pub fn cpu_finish(&self, instance: &Instance, platform: &Platform) -> f64 {
        let load: f64 = instance
            .ids()
            .map(|id| self.cpu_fraction[id.index()] * instance.task(id).cpu_time())
            .sum();
        load / platform.cpus() as f64
    }

    /// GPU-class finish time of the fractional assignment.
    pub fn gpu_finish(&self, instance: &Instance, platform: &Platform) -> f64 {
        let load: f64 = instance
            .ids()
            .map(|id| (1.0 - self.cpu_fraction[id.index()]) * instance.task(id).gpu_time())
            .sum();
        load / platform.gpus() as f64
    }
}

/// Compute `AreaBound(I)` exactly.
///
/// Runs in `O(|I| log |I|)` (the sort dominates).
pub fn area_bound(instance: &Instance, platform: &Platform) -> AreaBound {
    let n = instance.len();
    if n == 0 {
        return AreaBound { value: 0.0, cpu_fraction: Vec::new(), threshold: 1.0 };
    }
    let m = platform.cpus() as f64;
    let g = platform.gpus() as f64;

    // Tasks by non-increasing acceleration factor: GPU-friendliest first.
    let mut order: Vec<TaskId> = instance.ids().collect();
    order.sort_by(|&a, &b| {
        instance.task(b).accel_factor().total_cmp(&instance.task(a).accel_factor()).then(a.cmp(&b))
    });

    // Prefix GPU work and suffix CPU work along that order.
    // gpu_prefix[j] = Σ_{i<j} q_(order[i]); cpu_suffix[j] = Σ_{i>=j} p_(order[i]).
    let mut gpu_prefix = vec![0.0; n + 1];
    for j in 0..n {
        gpu_prefix[j + 1] = gpu_prefix[j] + instance.task(order[j]).gpu_time();
    }
    let mut cpu_suffix = vec![0.0; n + 1];
    for j in (0..n).rev() {
        cpu_suffix[j] = cpu_suffix[j + 1] + instance.task(order[j]).cpu_time();
    }

    // Find the smallest j such that the GPU class, holding the first j tasks,
    // finishes no earlier than the CPU class holding the rest. j = n always
    // qualifies (CPU side is then empty).
    let gpu_finish = |j: usize| gpu_prefix[j] / g;
    let cpu_finish = |j: usize| cpu_suffix[j] / m;
    let mut j_star = n;
    for j in 0..=n {
        if gpu_finish(j) >= cpu_finish(j) {
            j_star = j;
            break;
        }
    }

    let mut cpu_fraction = vec![0.0; n];
    // Tasks strictly after the crossing go to CPUs.
    for &id in &order[j_star.min(n)..] {
        cpu_fraction[id.index()] = 1.0;
    }

    if j_star == 0 {
        // Even with every task on the CPUs the GPU class is the bottleneck at
        // level 0 — only possible when there are no tasks, handled above.
        // With j_star == 0 and tasks present: gpu_finish(0) = 0 >= cpu_finish(0)
        // requires cpu_finish(0) == 0, impossible for positive times.
        unreachable!("positive processing times make cpu_finish(0) > 0");
    }

    // Split the crossing task (position j_star - 1): fraction x on CPUs.
    let split = order[j_star - 1];
    let p = instance.task(split).cpu_time();
    let q = instance.task(split).gpu_time();
    let base_cpu = cpu_finish(j_star); // CPU finish without the split task
    let base_gpu = gpu_prefix[j_star - 1] / g; // GPU finish without it
                                               // Solve base_cpu + x p / m = base_gpu + (1 - x) q / g.
    let x = ((base_gpu + q / g - base_cpu) / (p / m + q / g)).clamp(0.0, 1.0);
    cpu_fraction[split.index()] = x;
    let value = base_cpu + x * p / m;

    AreaBound { value, cpu_fraction, threshold: instance.task(split).accel_factor() }
}

/// Check that a fractional assignment `x` (CPU fractions) is feasible and
/// compute its objective `max(CPU finish, GPU finish)`. Used by property
/// tests to certify optimality of [`area_bound`] against random assignments.
pub fn fractional_objective(instance: &Instance, platform: &Platform, x: &[f64]) -> f64 {
    assert_eq!(x.len(), instance.len());
    let mut cpu = 0.0;
    let mut gpu = 0.0;
    for id in instance.ids() {
        let f = x[id.index()];
        assert!((-1e-12..=1.0 + 1e-12).contains(&f), "fraction out of range");
        cpu += f * instance.task(id).cpu_time();
        gpu += (1.0 - f) * instance.task(id).gpu_time();
    }
    (cpu / platform.cpus() as f64).max(gpu / platform.gpus() as f64)
}

/// A valid lower bound on the k-class area LP, by supergradient ascent on
/// its Lagrangian dual.
///
/// The LP generalizes §4.2 to k classes: minimize `T` subject to
/// `Σ_c x_ic = 1` and `Σ_i x_ic t_ic ≤ T · m_c`. For any class weights
/// `y ≥ 0` normalized to `Σ_c y_c m_c = 1`,
///
/// ```text
/// T* ≥ Σ_i min_c (y_c · t_ic)
/// ```
///
/// because every unit of task `i` must pay at least its cheapest weighted
/// time somewhere. The right-hand side is concave in `y`, so a projected
/// supergradient ascent (deterministic: fixed start, fixed diminishing
/// steps) tightens it; every iterate is itself a certificate, and the best
/// one is returned. At `k = 2` the exact threshold solution of
/// [`area_bound`] is the LP optimum; this routine approaches it from below
/// (tested), and [`combined_lower_bound`] uses the exact form there.
pub fn area_bound_dual(instance: &Instance, platform: &Platform) -> f64 {
    let n = instance.len();
    if n == 0 {
        return 0.0;
    }
    let k = platform.k();
    let caps: Vec<f64> = (0..k).map(|c| platform.count(ClassId(c as u16)) as f64).collect();

    // Dual objective and its supergradient at y: each task contributes its
    // cheapest weighted time; the gradient component of the winning class
    // is that task's raw time there.
    let eval = |y: &[f64], grad: &mut [f64]| -> f64 {
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut total = 0.0;
        for id in instance.ids() {
            let task = instance.task(id);
            let mut best_c = 0;
            let mut best = f64::INFINITY;
            for (c, &yc) in y.iter().enumerate() {
                let v = yc * task.time_on(ClassId(c as u16));
                if v < best {
                    best = v;
                    best_c = c;
                }
            }
            total += best;
            grad[best_c] += task.time_on(ClassId(best_c as u16));
        }
        total
    };

    // Project onto the normalization Σ_c y_c m_c = 1 (scale invariance of
    // the bound makes this a rescale, not a true projection).
    let normalize = |y: &mut [f64]| {
        let s: f64 = y.iter().zip(&caps).map(|(yc, mc)| yc * mc).sum();
        if s > 0.0 {
            y.iter_mut().for_each(|yc| *yc /= s);
        }
    };

    let mut y: Vec<f64> = caps.iter().map(|&mc| 1.0 / (k as f64 * mc)).collect();
    let mut grad = vec![0.0; k];
    let mut best = eval(&y, &mut grad);
    for step in 1..=200usize {
        let gnorm: f64 = grad.iter().zip(&caps).map(|(g, mc)| g / mc).fold(0.0, |a, b| a.max(b));
        if gnorm <= 0.0 {
            break;
        }
        let eta = 1.0 / (gnorm * (step as f64).sqrt() * k as f64);
        for (yc, g) in y.iter_mut().zip(&grad) {
            *yc = (*yc + eta * g).max(0.0);
        }
        normalize(&mut y);
        best = best.max(eval(&y, &mut grad));
    }
    best
}

/// `max_i min_c t_ic`: the other immediate lower bound of §4.2.
pub fn min_time_bound(instance: &Instance) -> f64 {
    instance.max_min_time()
}

/// The combined lower bound on the optimal makespan used throughout the
/// experiments: `max(AreaBound, max_i min_c t_ic)`. Two-class platforms use
/// the exact threshold solution; `k ≥ 3` the dual certificate of
/// [`area_bound_dual`].
pub fn combined_lower_bound(instance: &Instance, platform: &Platform) -> f64 {
    let area = if platform.k() == 2 {
        area_bound(instance, platform).value
    } else {
        area_bound_dual(instance, platform)
    };
    area.max(min_time_bound(instance))
}

/// Structural invariants of Lemmas 1 and 2, checked on a computed bound.
/// Returns an error message when violated (used by tests).
pub fn check_structure(
    instance: &Instance,
    platform: &Platform,
    ab: &AreaBound,
) -> Result<(), String> {
    if instance.is_empty() {
        return Ok(());
    }
    // Lemma 1: both classes finish at the same time, equal to the bound.
    let cf = ab.cpu_finish(instance, platform);
    let gf = ab.gpu_finish(instance, platform);
    if !(approx_le(cf, gf) && approx_le(gf, cf)) {
        return Err(format!("Lemma 1 violated: cpu {cf} vs gpu {gf}"));
    }
    if !(approx_le(ab.value, cf) && approx_le(cf, ab.value)) {
        return Err(format!("bound {} != finish {cf}", ab.value));
    }
    // Lemma 2: threshold structure on ρ.
    for id in instance.ids() {
        let rho = instance.task(id).accel_factor();
        let x = ab.cpu_fraction[id.index()];
        if strictly_less(x, 1.0) && strictly_less(rho, ab.threshold) {
            return Err(format!(
                "Lemma 2 violated: {id} partially on GPU with rho {rho} < k {}",
                ab.threshold
            ));
        }
        if strictly_less(0.0, x) && strictly_less(ab.threshold, rho) {
            return Err(format!(
                "Lemma 2 violated: {id} partially on CPU with rho {rho} > k {}",
                ab.threshold
            ));
        }
    }
    Ok(())
}

/// Per-class capacity used by the area-bound solution over `[0, value]`,
/// needed by the paper's Figure 9 normalization (idle time is normalized by
/// the amount of each resource used in the lower-bound solution).
pub fn class_usage(instance: &Instance, platform: &Platform, kind: ResourceKind) -> f64 {
    let ab = area_bound(instance, platform);
    match kind {
        ResourceKind::Cpu => instance
            .ids()
            .map(|id| ab.cpu_fraction[id.index()] * instance.task(id).cpu_time())
            .sum(),
        ResourceKind::Gpu => instance
            .ids()
            .map(|id| (1.0 - ab.cpu_fraction[id.index()]) * instance.task(id).gpu_time())
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::Platform;

    #[test]
    fn empty_instance_bound_is_zero() {
        let inst = Instance::new();
        let plat = Platform::new(1, 1);
        assert_eq!(area_bound(&inst, &plat).value, 0.0);
    }

    #[test]
    fn single_balanced_task_splits() {
        // One task (p=1, q=1) on (1,1): split evenly, bound 1/2.
        let inst = Instance::from_times(&[(1.0, 1.0)]);
        let plat = Platform::new(1, 1);
        let ab = area_bound(&inst, &plat);
        assert!(approx_eq(ab.value, 0.5), "{}", ab.value);
        assert!(approx_eq(ab.cpu_fraction[0], 0.5));
        check_structure(&inst, &plat, &ab).unwrap();
    }

    #[test]
    fn theorem8_instance_bound() {
        // X (φ, 1), Y (1, 1/φ) on (1,1): assigning X to GPU and Y to CPU
        // gives both classes load 1 — exactly the optimal integral schedule,
        // so the area bound equals 1 too (it can't exceed the optimum).
        use heteroprio_core::PHI;
        let inst = Instance::from_times(&[(PHI, 1.0), (1.0, 1.0 / PHI)]);
        let plat = Platform::new(1, 1);
        let ab = area_bound(&inst, &plat);
        assert!(approx_le(ab.value, 1.0));
        check_structure(&inst, &plat, &ab).unwrap();
    }

    #[test]
    fn gpu_heavy_mix_matches_hand_computation() {
        // Tasks: A (10, 1) ρ=10, B (4, 4) ρ=1, C (1, 10) ρ=0.1 on (2, 1).
        // Hand solve: put A on GPU, C on CPUs, split B.
        // x := CPU fraction of B: (1 + 4x)/2 = 1 + 4(1-x) → 2 + 8x = ... →
        // (1 + 4x)/2 = (1 + 4(1-x))/1 → 1 + 4x = 10 - 8x → x = 9/12 = 0.75;
        // value = (1 + 3)/2 = 2.
        let inst = Instance::from_times(&[(10.0, 1.0), (4.0, 4.0), (1.0, 10.0)]);
        let plat = Platform::new(2, 1);
        let ab = area_bound(&inst, &plat);
        assert!(approx_eq(ab.value, 2.0), "{}", ab.value);
        assert!(approx_eq(ab.cpu_fraction[1], 0.75));
        assert!(approx_eq(ab.cpu_fraction[0], 0.0));
        assert!(approx_eq(ab.cpu_fraction[2], 1.0));
        check_structure(&inst, &plat, &ab).unwrap();
    }

    #[test]
    fn bound_below_any_integral_assignment() {
        let inst = Instance::from_times(&[(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (5.0, 1.0)]);
        let plat = Platform::new(2, 2);
        let ab = area_bound(&inst, &plat);
        // Every integral class assignment is feasible for the LP, so the
        // area bound is at most each assignment's load objective.
        for mask in 0u32..16 {
            let mut cpu = 0.0;
            let mut gpu = 0.0;
            for i in 0..4 {
                if mask & (1 << i) != 0 {
                    cpu += inst.task(TaskId(i)).cpu_time();
                } else {
                    gpu += inst.task(TaskId(i)).gpu_time();
                }
            }
            let obj = (cpu / 2.0).max(gpu / 2.0);
            assert!(ab.value <= obj + 1e-9, "mask {mask}: {} > {obj}", ab.value);
        }
    }

    #[test]
    fn all_tasks_identical_balances_by_capacity() {
        // 10 tasks (2, 1) on (2, 2): ρ=2 for all. Pure rate balancing:
        // CPU rate m/p = 1 task/s, GPU rate n/q = 2 tasks/s → 10 tasks in
        // 10/3 s.
        let inst = Instance::from_times(&[(2.0, 1.0); 10]);
        let plat = Platform::new(2, 2);
        let ab = area_bound(&inst, &plat);
        assert!(approx_eq(ab.value, 10.0 / 3.0), "{}", ab.value);
        check_structure(&inst, &plat, &ab).unwrap();
    }

    #[test]
    fn class_usage_sums_to_balanced_loads() {
        let inst = Instance::from_times(&[(10.0, 1.0), (4.0, 4.0), (1.0, 10.0)]);
        let plat = Platform::new(2, 1);
        let cpu = class_usage(&inst, &plat, ResourceKind::Cpu);
        let gpu = class_usage(&inst, &plat, ResourceKind::Gpu);
        // value 2.0 with 2 CPUs → CPU usage 4.0; 1 GPU → GPU usage 2.0.
        assert!(approx_eq(cpu, 4.0), "{cpu}");
        assert!(approx_eq(gpu, 2.0), "{gpu}");
    }

    #[test]
    fn dual_bound_stays_below_exact_two_class_optimum() {
        // On two classes the dual ascent must certify from below the exact
        // threshold solution, and get usefully close.
        let cases: Vec<Vec<(f64, f64)>> = vec![
            vec![(10.0, 1.0), (4.0, 4.0), (1.0, 10.0)],
            vec![(2.0, 1.0); 10],
            vec![(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (5.0, 1.0)],
        ];
        for times in cases {
            let inst = Instance::from_times(&times);
            for plat in [Platform::new(1, 1), Platform::new(2, 1), Platform::new(2, 2)] {
                let exact = area_bound(&inst, &plat).value;
                let dual = area_bound_dual(&inst, &plat);
                assert!(dual <= exact + 1e-9, "dual {dual} above exact {exact}");
                assert!(dual >= 0.8 * exact, "dual {dual} too loose vs exact {exact}");
            }
        }
    }

    #[test]
    fn three_class_dual_bound_below_integral_assignments() {
        let inst = Instance::from_class_times(&[
            &[9.0, 3.0, 1.0],
            &[1.0, 5.0, 9.0],
            &[4.0, 1.0, 4.0],
            &[6.0, 6.0, 2.0],
            &[2.0, 2.0, 2.0],
        ]);
        let plat = Platform::from_counts(&[2, 1, 1]);
        let lb = area_bound_dual(&inst, &plat);
        assert!(lb > 0.0);
        // Every integral class assignment is LP-feasible, so the dual
        // certificate must lie below each one's load objective.
        let n = inst.len();
        for mask in 0..3usize.pow(n as u32) {
            let mut load = [0.0f64; 3];
            let mut m = mask;
            for i in 0..n {
                let c = m % 3;
                m /= 3;
                load[c] += inst.task(TaskId(i as u32)).time_on(ClassId(c as u16));
            }
            let obj = (load[0] / 2.0).max(load[1]).max(load[2]);
            assert!(lb <= obj + 1e-9, "mask {mask}: {lb} > {obj}");
        }
    }

    #[test]
    fn three_identical_classes_balance_by_capacity() {
        // 6 tasks costing 3.0 on every class, one worker per class: the LP
        // spreads them evenly, finishing at 6·3/3 = 6; the uniform dual
        // start already certifies that exactly.
        let inst = Instance::from_class_times(&[&[3.0, 3.0, 3.0] as &[f64]; 6]);
        let plat = Platform::from_counts(&[1, 1, 1]);
        let lb = area_bound_dual(&inst, &plat);
        assert!(approx_eq(lb, 6.0), "{lb}");
    }

    #[test]
    fn combined_bound_picks_min_time_when_binding() {
        // A single task with min time 5 but tiny area.
        let inst = Instance::from_times(&[(5.0, 5.0)]);
        let plat = Platform::new(4, 4);
        let lb = combined_lower_bound(&inst, &plat);
        assert!(approx_eq(lb, 5.0));
    }
}
