#![forbid(unsafe_code)]

//! # heteroprio-simulator
//!
//! Discrete-event simulation of a task-based runtime system (the StarPU-like
//! substrate of the paper's experiments): the engine tracks time, workers and
//! dependency release; an [`OnlinePolicy`] owns the ready queue and all
//! placement decisions, including spoliation.
//!
//! The engine is deterministic, validates policy behaviour (readiness,
//! cross-class spoliation with strict improvement, absence of deadlock), and
//! returns a [`heteroprio_core::Schedule`] that can be checked against the
//! task graph.

pub mod engine;
pub mod fault;
pub mod policy;

pub use engine::{
    simulate, simulate_traced, simulate_with, try_resume_faulty, try_simulate_durable,
    try_simulate_faulty, try_simulate_faulty_metered, SimResult,
};
pub use fault::{FaultPlan, FaultSpec, RetryPolicy, SimError, WorkerFault};
pub use policy::{
    OnlinePolicy, RunningTask, SimContext, SnapshotOnlinePolicy, TransferModel, WorkerOrder,
};
