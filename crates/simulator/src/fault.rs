//! Deterministic fault injection: worker failures, stochastic execution
//! times, and task-level failures with retry.
//!
//! A [`FaultPlan`] describes everything that can go wrong during a
//! simulated execution. It is fully deterministic per seed (the vendored
//! `rand` shim is a seeded xoshiro256++), so every failure scenario is
//! replayable. The zero plan ([`FaultPlan::NONE`]) draws no random numbers
//! and leaves the engine byte-identical to a fault-free run.
//!
//! Worker faults come in two flavours: *permanent* (the worker never comes
//! back — a GPU falling off the bus) and *transient* (down for a fixed
//! interval — a driver reset). In both cases in-flight work is lost, the
//! running task re-enters the ready set at its original priority, and the
//! dead worker is excluded from policy decisions until recovery.
//!
//! Task failures are Bernoulli per attempt; a failed attempt costs the
//! in-progress time and is retried after a capped exponential backoff, up
//! to [`RetryPolicy::max_attempts`] attempts, after which the engine
//! returns [`SimError::TaskAbandoned`].

use heteroprio_core::Platform;
use std::fmt;

/// One scheduled worker failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerFault {
    /// Raw worker id (the `u32` payload of `WorkerId`).
    pub worker: u32,
    /// Simulated time at which the worker goes down.
    pub at: f64,
    /// Downtime duration; `None` means the failure is permanent.
    pub down_for: Option<f64>,
}

impl WorkerFault {
    /// A worker that dies at `at` and never recovers.
    pub fn permanent(worker: u32, at: f64) -> Self {
        WorkerFault { worker, at, down_for: None }
    }

    /// A worker that is down for `down_for` time units starting at `at`.
    pub fn transient(worker: u32, at: f64, down_for: f64) -> Self {
        WorkerFault { worker, at, down_for: Some(down_for) }
    }
}

/// Retry policy for failed task attempts (re-exported from the shared event
/// kernel, which owns the retry heap).
pub use heteroprio_core::kernel::RetryPolicy;

/// Everything that can go wrong in one simulated execution.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Scheduled worker failures. Overlapping intervals on one worker are
    /// merged; a permanent failure swallows everything after it.
    pub worker_faults: Vec<WorkerFault>,
    /// Per-attempt probability that a task fails mid-run.
    pub task_failure_prob: f64,
    /// Multiplicative execution-time noise `j ≥ 0`: actual durations are
    /// drawn log-uniformly from `[estimate/(1+j), estimate·(1+j)]`.
    /// Policies still decide on the estimates.
    pub exec_jitter: f64,
    /// Seed for the failure/jitter draws.
    pub seed: u64,
    /// Retry policy for failed task attempts.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The zero plan: no faults, no noise, no random draws.
    pub const NONE: FaultPlan = FaultPlan {
        worker_faults: Vec::new(),
        task_failure_prob: 0.0,
        exec_jitter: 0.0,
        seed: 0,
        retry: RetryPolicy::DEFAULT,
    };

    /// True when the plan injects nothing (the engine then skips the fault
    /// machinery entirely and reproduces fault-free traces exactly).
    pub fn is_none(&self) -> bool {
        // lint: allow(float-eq): exact sentinel — 0.0 means "feature off", set literally by
        // FaultPlan::NONE / the parser, never produced by arithmetic.
        self.worker_faults.is_empty() && self.task_failure_prob == 0.0 && self.exec_jitter == 0.0
    }

    /// Check the plan's numeric sanity. The engine calls this before a run.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |reason: String| Err(SimError::InvalidPlan { reason });
        if !self.task_failure_prob.is_finite() || !(0.0..=1.0).contains(&self.task_failure_prob) {
            return bad(format!("task_failure_prob {} not in [0, 1]", self.task_failure_prob));
        }
        if !self.exec_jitter.is_finite() || self.exec_jitter < 0.0 {
            return bad(format!("exec_jitter {} must be finite and >= 0", self.exec_jitter));
        }
        if self.retry.max_attempts == 0 {
            return bad("retry.max_attempts must be at least 1".into());
        }
        if !self.retry.backoff_base.is_finite() || self.retry.backoff_base < 0.0 {
            return bad(format!(
                "backoff_base {} must be finite and >= 0",
                self.retry.backoff_base
            ));
        }
        if !self.retry.backoff_cap.is_finite() || self.retry.backoff_cap < 0.0 {
            return bad(format!("backoff_cap {} must be finite and >= 0", self.retry.backoff_cap));
        }
        for f in &self.worker_faults {
            if !f.at.is_finite() || f.at < 0.0 {
                return bad(format!(
                    "worker {} fault time {} must be finite and >= 0",
                    f.worker, f.at
                ));
            }
            if let Some(d) = f.down_for {
                if !d.is_finite() || d <= 0.0 {
                    return bad(format!("worker {} downtime {d} must be finite and > 0", f.worker));
                }
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Structured failure of a simulated execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A task exhausted its attempt budget; the run cannot complete.
    TaskAbandoned { task: u32, attempts: u32, time: f64 },
    /// Every worker is down with no recovery scheduled while tasks remain.
    AllWorkersDown { time: f64, remaining: usize },
    /// The fault plan itself is malformed.
    InvalidPlan { reason: String },
    /// An injected `CrashPlan` fired after `events` emitted events
    /// (durable simulation only); recover via `try_resume_faulty`.
    Crashed { time: f64, events: u64 },
    /// Recovery failed: the journal or snapshot disagrees with the
    /// supplied graph/policy/plan (see
    /// [`ResumeError`](heteroprio_core::ResumeError) for the cases).
    Recovery { detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TaskAbandoned { task, attempts, time } => {
                write!(f, "task {task} abandoned after {attempts} failed attempts at t={time}")
            }
            SimError::AllWorkersDown { time, remaining } => {
                write!(f, "all workers down at t={time} with {remaining} tasks remaining")
            }
            SimError::InvalidPlan { reason } => write!(f, "invalid fault plan: {reason}"),
            SimError::Crashed { time, events } => {
                write!(f, "simulated crash at t={time} after {events} journaled events")
            }
            SimError::Recovery { detail } => write!(f, "recovery failed: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<heteroprio_core::kernel::EngineError> for SimError {
    fn from(e: heteroprio_core::kernel::EngineError) -> Self {
        use heteroprio_core::kernel::EngineError;
        match e {
            EngineError::TaskAbandoned { task, attempts, time } => {
                SimError::TaskAbandoned { task, attempts, time }
            }
            EngineError::AllWorkersDown { time, remaining } => {
                SimError::AllWorkersDown { time, remaining }
            }
            EngineError::Crashed { time, events } => SimError::Crashed { time, events },
        }
    }
}

impl From<heteroprio_core::ResumeError> for SimError {
    fn from(e: heteroprio_core::ResumeError) -> Self {
        use heteroprio_core::ResumeError;
        match e {
            ResumeError::Engine(engine) => engine.into(),
            other => SimError::Recovery { detail: other.to_string() },
        }
    }
}

/// A time in a fault spec: absolute, or a percentage of the fault-free
/// makespan (resolved by the caller after a baseline run).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimeSpec {
    Abs(f64),
    Percent(f64),
}

impl TimeSpec {
    fn resolve(self, baseline: Option<f64>) -> Result<f64, SimError> {
        match self {
            TimeSpec::Abs(t) => Ok(t),
            TimeSpec::Percent(p) => {
                baseline.map(|m| m * p / 100.0).ok_or_else(|| SimError::InvalidPlan {
                    reason: "percent time in spec but no baseline makespan given".into(),
                })
            }
        }
    }
}

/// Which workers a fault clause hits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultTarget {
    Worker(u32),
    /// Every worker of one resource class (`cpu` = class 0, `gpu` = class 1,
    /// `cN` or a [`ClassTable`](heteroprio_core::ClassTable) name for the rest).
    Class(u16),
    All,
}

/// One parsed clause of a `--faults` spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultClause {
    pub target: FaultTarget,
    pub at: TimeSpec,
    /// Downtime; `None` means permanent.
    pub down_for: Option<f64>,
}

/// A parsed `--faults` specification.
///
/// Grammar (clauses separated by `,`):
///
/// ```text
/// SPEC   := clause (',' clause)*
/// clause := target '@' time ['+' dur]   -- worker fault (dur absent ⇒ permanent)
///         | 'fail=' p                   -- per-attempt task failure probability
///         | 'seed=' n                   -- RNG seed for failure/jitter draws
/// target := 'w' id | 'c' idx | class-name | 'all'
/// time   := float | float '%'          -- percent of the fault-free makespan
/// ```
///
/// Class targets: `cpu` and `gpu` always name classes 0 and 1, `cN` hits
/// class `N` on any platform, and [`parse_with`](FaultSpec::parse_with)
/// additionally resolves the class names of a [`ClassTable`](heteroprio_core::ClassTable)
/// (e.g. `fpga@10` on a `cpu=16,gpu=4,fpga=2` platform).
///
/// Examples: `gpu@25%` (all GPUs die for good at 25% of the fault-free
/// makespan), `w3@10+5` (worker 3 down from t=10 to t=15),
/// `cpu@50,fail=0.05,seed=7`, `c2@40%`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    pub clauses: Vec<FaultClause>,
    pub task_failure_prob: Option<f64>,
    pub seed: Option<u64>,
}

impl FaultSpec {
    /// Parse a spec string. Whitespace around clauses is ignored.
    pub fn parse(s: &str) -> Result<FaultSpec, SimError> {
        FaultSpec::parse_with(s, None)
    }

    /// [`parse`](FaultSpec::parse) with a [`ClassTable`](heteroprio_core::ClassTable): clause targets may
    /// then use the table's class names (case-insensitively) in addition to
    /// the builtin `cpu`/`gpu`/`cN` forms.
    pub fn parse_with(
        s: &str,
        table: Option<&heteroprio_core::ClassTable>,
    ) -> Result<FaultSpec, SimError> {
        let bad = |reason: String| SimError::InvalidPlan { reason };
        let mut spec = FaultSpec::default();
        for raw in s.split(',') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(p) = clause.strip_prefix("fail=") {
                let p: f64 =
                    p.parse().map_err(|_| bad(format!("bad probability in {clause:?}")))?;
                spec.task_failure_prob = Some(p);
                continue;
            }
            if let Some(n) = clause.strip_prefix("seed=") {
                let n: u64 = n.parse().map_err(|_| bad(format!("bad seed in {clause:?}")))?;
                spec.seed = Some(n);
                continue;
            }
            let (target, rest) = clause
                .split_once('@')
                .ok_or_else(|| bad(format!("expected target@time in {clause:?}")))?;
            let target = match target.trim() {
                "cpu" => FaultTarget::Class(0),
                "gpu" => FaultTarget::Class(1),
                "all" => FaultTarget::All,
                w => {
                    if let Some(id) = w.strip_prefix('w').and_then(|id| id.parse::<u32>().ok()) {
                        FaultTarget::Worker(id)
                    } else if let Some(c) = w.strip_prefix('c').and_then(|c| c.parse::<u16>().ok())
                    {
                        FaultTarget::Class(c)
                    } else if let Some(c) = table.and_then(|t| t.id_of(w)) {
                        FaultTarget::Class(c.0)
                    } else {
                        return Err(bad(format!(
                            "bad target {w:?} (want wN|cN|cpu|gpu|all or a platform class name)"
                        )));
                    }
                }
            };
            let (time, dur) = match rest.split_once('+') {
                Some((t, d)) => {
                    let d: f64 =
                        d.trim().parse().map_err(|_| bad(format!("bad duration in {clause:?}")))?;
                    (t.trim(), Some(d))
                }
                None => (rest.trim(), None),
            };
            let at = match time.strip_suffix('%') {
                Some(p) => TimeSpec::Percent(
                    p.parse().map_err(|_| bad(format!("bad percent in {clause:?}")))?,
                ),
                None => {
                    TimeSpec::Abs(time.parse().map_err(|_| bad(format!("bad time in {clause:?}")))?)
                }
            };
            spec.clauses.push(FaultClause { target, at, down_for: dur });
        }
        Ok(spec)
    }

    /// True if any clause uses a percent time (the caller must then run a
    /// fault-free baseline to obtain the makespan before resolving).
    pub fn needs_baseline(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c.at, TimeSpec::Percent(_)))
    }

    /// Expand the clauses into concrete per-worker faults on `platform`.
    /// `baseline` is the fault-free makespan, required iff
    /// [`needs_baseline`](FaultSpec::needs_baseline).
    pub fn resolve(
        &self,
        platform: &Platform,
        baseline: Option<f64>,
    ) -> Result<Vec<WorkerFault>, SimError> {
        let mut out = Vec::new();
        for c in &self.clauses {
            let at = c.at.resolve(baseline)?;
            let workers: Vec<u32> = match c.target {
                FaultTarget::Worker(w) => {
                    if w as usize >= platform.workers() {
                        return Err(SimError::InvalidPlan {
                            reason: format!(
                                "worker {w} out of range (platform has {})",
                                platform.workers()
                            ),
                        });
                    }
                    vec![w]
                }
                FaultTarget::Class(c) => {
                    if usize::from(c) >= platform.k() {
                        return Err(SimError::InvalidPlan {
                            reason: format!(
                                "class c{c} out of range (platform has {} classes)",
                                platform.k()
                            ),
                        });
                    }
                    platform.workers_of(heteroprio_core::ClassId(c)).map(|w| w.0).collect()
                }
                FaultTarget::All => platform.all_workers().map(|w| w.0).collect(),
            };
            out.extend(workers.into_iter().map(|w| WorkerFault {
                worker: w,
                at,
                down_for: c.down_for,
            }));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy { max_attempts: 10, backoff_base: 1.0, backoff_cap: 5.0 };
        assert_eq!(r.delay_after(1), 1.0);
        assert_eq!(r.delay_after(2), 2.0);
        assert_eq!(r.delay_after(3), 4.0);
        assert_eq!(r.delay_after(4), 5.0, "capped");
        assert_eq!(r.delay_after(60), 5.0, "no overflow");
    }

    #[test]
    fn parses_full_spec() {
        let s = FaultSpec::parse("gpu@25%, w3@10+5, fail=0.05, seed=7").unwrap();
        assert_eq!(s.task_failure_prob, Some(0.05));
        assert_eq!(s.seed, Some(7));
        assert_eq!(s.clauses.len(), 2);
        assert_eq!(
            s.clauses[0],
            FaultClause {
                target: FaultTarget::Class(1),
                at: TimeSpec::Percent(25.0),
                down_for: None
            }
        );
        assert_eq!(
            s.clauses[1],
            FaultClause {
                target: FaultTarget::Worker(3),
                at: TimeSpec::Abs(10.0),
                down_for: Some(5.0)
            }
        );
        assert!(s.needs_baseline());
        assert!(!FaultSpec::parse("w0@3").unwrap().needs_baseline());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["gpu", "x@5", "w@5", "gpu@x", "gpu@5+", "fail=x", "seed=-1"] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn class_targets_parse_by_index_and_table_name() {
        // `cN` needs no table; names beyond cpu/gpu resolve through one.
        let s = FaultSpec::parse("c2@10").unwrap();
        assert_eq!(s.clauses[0].target, FaultTarget::Class(2));
        assert!(FaultSpec::parse("fpga@10").is_err(), "unknown name without a table");
        let table =
            heteroprio_core::ClassTable::new(&[("cpu", 2), ("gpu", 1), ("fpga", 1)]).unwrap();
        let s = FaultSpec::parse_with("FPGA@10+5, cpu@3", Some(&table)).unwrap();
        assert_eq!(s.clauses[0].target, FaultTarget::Class(2));
        assert_eq!(s.clauses[1].target, FaultTarget::Class(0));
        // Resolution expands to exactly the class-block workers.
        let plat = table.platform();
        let faults = s.resolve(&plat, None).unwrap();
        assert_eq!(
            faults.iter().map(|f| f.worker).collect::<Vec<_>>(),
            vec![3, 0, 1],
            "fpga is worker 3; cpus are workers 0-1"
        );
        // A class index past the platform's k is rejected at resolve time.
        let err = FaultSpec::parse("c3@1").unwrap().resolve(&plat, None);
        assert!(err.is_err());
    }

    #[test]
    fn resolve_expands_classes_and_percents() {
        let plat = Platform::new(2, 2);
        let spec = FaultSpec::parse("gpu@50%").unwrap();
        let faults = spec.resolve(&plat, Some(200.0)).unwrap();
        assert_eq!(faults.len(), 2);
        for f in &faults {
            assert_eq!(f.at, 100.0);
            assert_eq!(f.down_for, None);
        }
        // Percent without a baseline is an error.
        assert!(spec.resolve(&plat, None).is_err());
        // Out-of-range worker is an error.
        assert!(FaultSpec::parse("w9@1").unwrap().resolve(&plat, None).is_err());
    }

    #[test]
    fn plan_validation_catches_bad_numbers() {
        let mut p = FaultPlan::NONE.clone();
        assert!(p.validate().is_ok() && p.is_none());
        p.task_failure_prob = 1.5;
        assert!(p.validate().is_err());
        p.task_failure_prob = 0.0;
        p.exec_jitter = -1.0;
        assert!(p.validate().is_err());
        p.exec_jitter = 0.0;
        p.retry.max_attempts = 0;
        assert!(p.validate().is_err());
        p.retry = RetryPolicy::DEFAULT;
        p.worker_faults.push(WorkerFault::transient(0, 1.0, 0.0));
        assert!(p.validate().is_err());
    }
}
