//! The interface between the runtime engine and an online scheduling policy.
//!
//! The engine owns time, workers and dependency tracking; the policy owns
//! the ready queue(s) and all placement decisions, mirroring how StarPU
//! separates its core from its pluggable schedulers.

use heteroprio_core::{ClassId, Platform, TaskId, WorkerId};
use heteroprio_taskgraph::TaskGraph;

/// A task currently executing on some worker (re-exported from the shared
/// event kernel, which owns the running set).
pub use heteroprio_core::kernel::RunningTask;

/// Optional execution-cost model: a fixed penalty added to a task's
/// duration when at least one predecessor completed on a *different*
/// resource class, approximating the data-transfer cost StarPU would pay to
/// move the input tiles across the PCI bus. The paper's model sets this to
/// zero; the robustness experiments sweep it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransferModel {
    pub cross_class_penalty: f64,
}

impl TransferModel {
    pub const NONE: TransferModel = TransferModel { cross_class_penalty: 0.0 };

    pub fn new(cross_class_penalty: f64) -> Self {
        assert!(cross_class_penalty >= 0.0 && cross_class_penalty.is_finite());
        TransferModel { cross_class_penalty }
    }
}

/// Read-only view of the simulation state handed to policy callbacks.
pub struct SimContext<'a> {
    pub now: f64,
    pub platform: &'a Platform,
    pub graph: &'a TaskGraph,
    /// Indexed by worker; `None` when the worker is idle.
    pub running: &'a [Option<RunningTask>],
    /// Resource class each completed task ran on (`None` if not finished).
    pub ran_kind: &'a [Option<ClassId>],
    /// The active transfer-cost model.
    pub model: &'a TransferModel,
    /// Liveness per worker: `false` while a worker is down after an
    /// injected failure. Dead workers never ask for work, but policies
    /// planning ahead (e.g. packing onto a worker set) must skip them.
    pub alive: &'a [bool],
}

impl SimContext<'_> {
    /// Whether `w` is currently up. Workers are alive unless a fault plan
    /// took them down.
    pub fn is_alive(&self, w: WorkerId) -> bool {
        self.alive.get(w.index()).copied().unwrap_or(false)
    }

    /// Alive workers of one resource class.
    pub fn alive_of(&self, class: impl Into<ClassId>) -> impl Iterator<Item = WorkerId> + '_ {
        self.platform.workers_of(class).filter(|&w| self.is_alive(w))
    }

    /// Running tasks on workers of one resource class.
    pub fn running_on(
        &self,
        class: impl Into<ClassId>,
    ) -> impl Iterator<Item = (WorkerId, RunningTask)> + '_ {
        self.platform
            .workers_of(class)
            .filter_map(|w| self.running.get(w.index()).copied().flatten().map(|r| (w, r)))
    }

    /// Effective execution time of `task` on class `class`, including the
    /// transfer penalty. This is what the engine will charge; policies must
    /// use it for spoliation-improvement checks.
    pub fn effective_time(&self, task: TaskId, class: impl Into<ClassId>) -> f64 {
        let class = class.into();
        let base = self.graph.instance().task(task).time_on(class);
        let cross = self.graph.predecessors(task).iter().any(
            |p| matches!(self.ran_kind.get(p.index()).copied().flatten(), Some(c) if c != class),
        );
        if cross {
            base + self.model.cross_class_penalty
        } else {
            base
        }
    }
}

/// Order in which simultaneously idle workers are offered work.
pub use heteroprio_core::WorkerOrder;

/// An online scheduling policy driven by the runtime engine.
///
/// Contract: a task handed to the policy via [`OnlinePolicy::on_ready`] must
/// eventually be returned (exactly once) from [`OnlinePolicy::pick_task`],
/// unless the engine restarts it itself after a spoliation. The engine
/// asserts these invariants.
pub trait OnlinePolicy {
    /// Called once before the simulation starts.
    fn init(&mut self, graph: &TaskGraph, platform: &Platform) {
        let _ = (graph, platform);
    }

    /// New tasks whose dependencies are all satisfied.
    fn on_ready(&mut self, tasks: &[TaskId], ctx: &SimContext<'_>);

    /// An idle worker asks for work. Returning `None` leaves it idle until
    /// the next event.
    fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId>;

    /// An idle worker with no pick may spoliate a task running on the
    /// *other* resource class: return the victim worker. The engine aborts
    /// the victim's run (progress is lost) and restarts the task on
    /// `worker`. The restart must strictly improve the task's completion
    /// time — the engine enforces this to guarantee progress.
    fn spoliation_victim(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<WorkerId> {
        let _ = (worker, ctx);
        None
    }

    /// Order in which simultaneously idle workers are served.
    fn worker_order(&self) -> WorkerOrder {
        WorkerOrder::GpusFirst
    }
}

/// An [`OnlinePolicy`] that can be checkpointed and restored — the
/// simulator-side mirror of
/// [`SnapshotPolicy`](heteroprio_core::kernel::SnapshotPolicy). A policy's
/// only legal state is a function of the tasks announced to it, so a
/// snapshot needs just the ready set in the policy's internal order, and
/// restoring is re-announcing that list.
pub trait SnapshotOnlinePolicy: OnlinePolicy {
    /// Ready tasks in the policy's internal queue order (front first).
    fn ready_order(&self) -> Vec<TaskId>;

    /// Rebuild internal state from a snapshot's ready list. The default
    /// re-announces through [`OnlinePolicy::on_ready`]. `init` has already
    /// been called when this runs.
    fn restore(&mut self, ready: &[TaskId], ctx: &SimContext<'_>) {
        self.on_ready(ready, ctx);
    }
}
