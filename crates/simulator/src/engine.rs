//! The discrete-event runtime engine.
//!
//! Simulates a task-based runtime system executing a [`TaskGraph`] on a
//! CPU+GPU platform under an [`OnlinePolicy`]: tasks become ready when their
//! predecessors complete, idle workers ask the policy for work, and policies
//! may spoliate tasks running on the other resource class (abort and
//! restart, losing all progress — the paper's §2.1 mechanism).

use crate::policy::{OnlinePolicy, RunningTask, SimContext, TransferModel};
use heteroprio_core::time::{strictly_less, F64Ord};
use heteroprio_core::{Platform, ResourceKind, Schedule, TaskId, TaskRun, WorkerId, WorkerOrder};
use heteroprio_taskgraph::{ReadyTracker, TaskGraph};
use heteroprio_trace::{Decision, NullSink, SchedEvent, TraceSink, TraceSummary};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a simulated execution.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub schedule: Schedule,
    /// First instant at which a worker asked for work and got none
    /// (derived from the trace summary; kept as a field for compatibility).
    pub first_idle: Option<f64>,
    /// Number of spoliations (derived from the trace summary).
    pub spoliations: usize,
    /// Per-worker time accounting and queue statistics aggregated from the
    /// event stream the engine emitted while running.
    pub summary: TraceSummary,
}

impl SimResult {
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskState {
    Pending,
    Ready,
    Running,
    Done,
}

/// Run `policy` over `graph` on `platform` to completion.
///
/// Panics on policy protocol violations: picking a task that is not ready,
/// spoliating an idle worker or one of the same class, a spoliation that
/// does not strictly improve the task's completion time, or a deadlock
/// (work remains, nothing runs, and the policy schedules nothing).
pub fn simulate<P: OnlinePolicy>(
    graph: &TaskGraph,
    platform: &Platform,
    policy: &mut P,
) -> SimResult {
    simulate_traced(graph, platform, policy, &TransferModel::NONE, &mut NullSink)
}

/// [`simulate`] with an explicit transfer-cost model: tasks whose inputs
/// were produced on the other resource class pay the model's penalty on top
/// of their base time.
pub fn simulate_with<P: OnlinePolicy>(
    graph: &TaskGraph,
    platform: &Platform,
    policy: &mut P,
    model: &TransferModel,
) -> SimResult {
    simulate_traced(graph, platform, policy, model, &mut NullSink)
}

/// [`simulate_with`] streaming every scheduler event into `sink`.
///
/// The engine emits [`SchedEvent`]s for dependency release, starts,
/// completions, spoliations, idle transitions, and policy decisions; with
/// [`NullSink`] the calls compile away and only the cheap per-worker
/// accounting in [`TraceSummary`] remains.
pub fn simulate_traced<P: OnlinePolicy, S: TraceSink>(
    graph: &TaskGraph,
    platform: &Platform,
    policy: &mut P,
    model: &TransferModel,
    sink: &mut S,
) -> SimResult {
    policy.init(graph, platform);
    let mut engine = Engine::new(graph, platform, model, sink);
    engine.run(policy);
    let mut summary = engine.summary;
    summary.finish();
    SimResult {
        schedule: engine.schedule,
        first_idle: summary.first_idle,
        spoliations: summary.spoliation_count,
        summary,
    }
}

struct Engine<'a, S: TraceSink> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    model: &'a TransferModel,
    ran_kind: Vec<Option<ResourceKind>>,
    tracker: ReadyTracker,
    state: Vec<TaskState>,
    running: Vec<Option<RunningTask>>,
    generation: Vec<u64>,
    events: BinaryHeap<Reverse<(F64Ord, u32, u64)>>,
    idle: Vec<WorkerId>,
    schedule: Schedule,
    sink: &'a mut S,
    summary: TraceSummary,
    /// Guards duplicate `WorkerIdleBegin` across fixpoint iterations.
    idle_announced: Vec<bool>,
}

impl<'a, S: TraceSink> Engine<'a, S> {
    fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        model: &'a TransferModel,
        sink: &'a mut S,
    ) -> Self {
        let summary = if sink.is_enabled() {
            TraceSummary::with_timeline(platform.workers())
        } else {
            TraceSummary::new(platform.workers())
        };
        Engine {
            graph,
            platform,
            model,
            ran_kind: vec![None; graph.len()],
            tracker: ReadyTracker::new(graph),
            state: vec![TaskState::Pending; graph.len()],
            running: vec![None; platform.workers()],
            generation: vec![0; platform.workers()],
            events: BinaryHeap::new(),
            idle: platform.all_workers().collect(),
            schedule: Schedule::new(),
            sink,
            summary,
            idle_announced: vec![false; platform.workers()],
        }
    }

    #[inline]
    fn emit(&mut self, event: SchedEvent) {
        self.summary.record(&event);
        self.sink.emit(event);
    }

    fn announce_ready<P: OnlinePolicy>(&mut self, policy: &mut P, tasks: &[TaskId], now: f64) {
        if tasks.is_empty() {
            return;
        }
        for &t in tasks {
            debug_assert_eq!(self.state[t.index()], TaskState::Pending);
            self.state[t.index()] = TaskState::Ready;
            self.emit(SchedEvent::TaskReady { time: now, task: t.0 });
        }
        let ctx = SimContext {
            now,
            platform: self.platform,
            graph: self.graph,
            running: &self.running,
            ran_kind: &self.ran_kind,
            model: self.model,
        };
        policy.on_ready(tasks, &ctx);
    }

    fn start(&mut self, w: WorkerId, task: TaskId, now: f64) {
        let end = now + self.effective_time(task, self.platform.kind_of(w));
        if self.idle_announced[w.index()] {
            self.idle_announced[w.index()] = false;
            self.emit(SchedEvent::WorkerIdleEnd { time: now, worker: w.0 });
        }
        self.emit(SchedEvent::TaskStart {
            time: now,
            task: task.0,
            worker: w.0,
            expected_end: end,
        });
        self.running[w.index()] = Some(RunningTask { task, start: now, end });
        self.state[task.index()] = TaskState::Running;
        self.events.push(Reverse((F64Ord::new(end), w.0, self.generation[w.index()])));
    }

    /// Duration the engine charges for `task` on class `kind` (base time
    /// plus the cross-class transfer penalty when an input was produced on
    /// the other class).
    fn effective_time(&self, task: TaskId, kind: ResourceKind) -> f64 {
        let base = self.graph.instance().task(task).time_on(kind);
        let cross = self
            .graph
            .predecessors(task)
            .iter()
            .any(|p| self.ran_kind[p.index()] == Some(kind.other()));
        if cross {
            base + self.model.cross_class_penalty
        } else {
            base
        }
    }

    fn worker_sort_key(&self, order: WorkerOrder, w: WorkerId) -> (u8, u32) {
        let kind = self.platform.kind_of(w);
        let class = match order {
            WorkerOrder::GpusFirst => (kind == ResourceKind::Cpu) as u8,
            WorkerOrder::CpusFirst => (kind == ResourceKind::Gpu) as u8,
            WorkerOrder::ById => 0,
        };
        (class, w.0)
    }

    fn assign_fixpoint<P: OnlinePolicy>(&mut self, policy: &mut P, now: f64) {
        loop {
            let order = policy.worker_order();
            let mut idle = std::mem::take(&mut self.idle);
            idle.sort_by_key(|&w| self.worker_sort_key(order, w));
            let mut acted = false;
            let mut still_idle = Vec::new();
            let mut newly_idle = Vec::new();
            for w in idle {
                // The context's shared borrows conflict with emitting, so
                // the policy is consulted first and events follow.
                let (picked, victim) = {
                    let ctx = SimContext {
                        now,
                        platform: self.platform,
                        graph: self.graph,
                        running: &self.running,
                        ran_kind: &self.ran_kind,
                        model: self.model,
                    };
                    match policy.pick_task(w, &ctx) {
                        Some(task) => (Some(task), None),
                        None => (None, policy.spoliation_victim(w, &ctx)),
                    }
                };
                if let Some(task) = picked {
                    assert_eq!(
                        self.state[task.index()],
                        TaskState::Ready,
                        "policy picked {task}, which is not ready"
                    );
                    self.emit(SchedEvent::PolicyDecision {
                        time: now,
                        worker: w.0,
                        decision: Decision::Pick(task.0),
                    });
                    self.start(w, task, now);
                    acted = true;
                    continue;
                }
                // The idle transition is announced before the spoliation
                // outcome: T_FirstIdle counts the instant a worker found no
                // ready work, including workers that then steal (§2.1).
                let went_idle = !self.idle_announced[w.index()];
                if went_idle {
                    self.idle_announced[w.index()] = true;
                    self.emit(SchedEvent::WorkerIdleBegin { time: now, worker: w.0 });
                }
                if let Some(victim) = victim {
                    let my_kind = self.platform.kind_of(w);
                    assert_eq!(
                        self.platform.kind_of(victim),
                        my_kind.other(),
                        "spoliation must cross resource classes"
                    );
                    let r = self.running[victim.index()]
                        .take()
                        .expect("policy spoliated an idle worker");
                    let new_end = now + self.effective_time(r.task, my_kind);
                    assert!(
                        strictly_less(new_end, r.end),
                        "spoliation of {} must strictly improve completion ({new_end} vs {})",
                        r.task,
                        r.end
                    );
                    self.generation[victim.index()] += 1;
                    self.schedule.aborted.push(TaskRun {
                        task: r.task,
                        worker: victim,
                        start: r.start,
                        end: now,
                    });
                    self.emit(SchedEvent::PolicyDecision {
                        time: now,
                        worker: w.0,
                        decision: Decision::Spoliate(victim.0),
                    });
                    self.emit(SchedEvent::Spoliation {
                        time: now,
                        task: r.task.0,
                        victim: victim.0,
                        thief: w.0,
                        wasted_work: now - r.start,
                    });
                    self.start(w, r.task, now);
                    newly_idle.push(victim);
                    acted = true;
                    continue;
                }
                if went_idle {
                    self.emit(SchedEvent::PolicyDecision {
                        time: now,
                        worker: w.0,
                        decision: Decision::Idle,
                    });
                }
                still_idle.push(w);
            }
            self.idle = still_idle;
            self.idle.extend(newly_idle);
            if !acted {
                return;
            }
        }
    }

    fn complete<P: OnlinePolicy>(&mut self, policy: &mut P, w: WorkerId, now: f64) {
        let r = self.running[w.index()].take().expect("completion on idle worker");
        self.emit(SchedEvent::TaskComplete { time: now, task: r.task.0, worker: w.0 });
        self.schedule.runs.push(TaskRun { task: r.task, worker: w, start: r.start, end: now });
        self.state[r.task.index()] = TaskState::Done;
        self.ran_kind[r.task.index()] = Some(self.platform.kind_of(w));
        self.idle.push(w);
        let ready = self.tracker.complete(self.graph, r.task);
        self.announce_ready(policy, &ready, now);
    }

    fn run<P: OnlinePolicy>(&mut self, policy: &mut P) {
        let mut now = 0.0;
        let initial = self.graph.sources();
        self.announce_ready(policy, &initial, now);
        self.assign_fixpoint(policy, now);
        while !self.tracker.is_done() {
            let (t, w) = loop {
                let Reverse((F64Ord(t), w, generation)) = self
                    .events
                    .pop()
                    .expect("deadlock: tasks remain but nothing is running (policy bug?)");
                if self.generation[w as usize] == generation {
                    break (t, WorkerId(w));
                }
            };
            debug_assert!(t >= now);
            now = t;
            self.complete(policy, w, now);
            while let Some(&Reverse((F64Ord(t2), w2, g2))) = self.events.peek() {
                if self.generation[w2 as usize] != g2 {
                    self.events.pop();
                } else if t2 == now {
                    self.events.pop();
                    self.complete(policy, WorkerId(w2), now);
                } else {
                    break;
                }
            }
            self.assign_fixpoint(policy, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteroprio_core::time::approx_eq;
    use heteroprio_core::Instance;
    use heteroprio_taskgraph::{chain, check_precedence, fork_join, DagBuilder, TaskGraph};
    use std::collections::VecDeque;

    /// Minimal FIFO policy: any idle worker takes the oldest ready task.
    struct Fifo {
        queue: VecDeque<TaskId>,
    }

    impl Fifo {
        fn new() -> Self {
            Fifo { queue: VecDeque::new() }
        }
    }

    impl OnlinePolicy for Fifo {
        fn on_ready(&mut self, tasks: &[TaskId], _ctx: &SimContext<'_>) {
            self.queue.extend(tasks);
        }

        fn pick_task(&mut self, _worker: WorkerId, _ctx: &SimContext<'_>) -> Option<TaskId> {
            self.queue.pop_front()
        }
    }

    fn run_fifo(graph: &TaskGraph, platform: &Platform) -> SimResult {
        let mut policy = Fifo::new();
        let res = simulate(graph, platform, &mut policy);
        res.schedule.validate(graph.instance(), platform).expect("valid schedule");
        check_precedence(graph, &res.schedule).expect("precedence respected");
        res
    }

    #[test]
    fn chain_executes_serially() {
        let g = chain(5, 2.0, 1.0);
        let plat = Platform::new(1, 1);
        let res = run_fifo(&g, &plat);
        // GPUs-first order: the single GPU takes every task as it readies.
        assert!(approx_eq(res.makespan(), 5.0), "{}", res.makespan());
    }

    #[test]
    fn fork_join_parallelizes_the_middle() {
        let g = fork_join(4, 1.0, 1.0);
        let plat = Platform::new(2, 2);
        let res = run_fifo(&g, &plat);
        // 1 (fork) + 1 (middle wave of 4 on 4 workers) + 1 (join).
        assert!(approx_eq(res.makespan(), 3.0), "{}", res.makespan());
    }

    #[test]
    fn independent_tasks_spread_over_workers() {
        let g = TaskGraph::independent(Instance::from_times(&[(1.0, 1.0); 8]));
        let plat = Platform::new(2, 2);
        let res = run_fifo(&g, &plat);
        assert!(approx_eq(res.makespan(), 2.0), "{}", res.makespan());
        assert_eq!(res.schedule.runs.len(), 8);
    }

    #[test]
    fn first_idle_recorded_when_starved() {
        let g = chain(3, 1.0, 1.0);
        let plat = Platform::new(1, 1);
        let res = run_fifo(&g, &plat);
        // Only one task ready at a time: someone is idle at t=0.
        assert_eq!(res.first_idle, Some(0.0));
    }

    #[test]
    fn policy_spoliation_is_checked_and_recorded() {
        /// Policy: CPU grabs the single task; the GPU then spoliates it.
        struct SpoliateOnce {
            queue: Vec<TaskId>,
        }
        impl OnlinePolicy for SpoliateOnce {
            fn on_ready(&mut self, tasks: &[TaskId], _ctx: &SimContext<'_>) {
                self.queue.extend_from_slice(tasks);
            }
            fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId> {
                if ctx.platform.kind_of(worker) == ResourceKind::Cpu {
                    self.queue.pop()
                } else {
                    None
                }
            }
            fn spoliation_victim(
                &mut self,
                worker: WorkerId,
                ctx: &SimContext<'_>,
            ) -> Option<WorkerId> {
                let kind = ctx.platform.kind_of(worker);
                ctx.running_on(kind.other())
                    .find(|(_, r)| {
                        let t = ctx.graph.instance().task(r.task).time_on(kind);
                        ctx.now + t < r.end
                    })
                    .map(|(w, _)| w)
            }
            fn worker_order(&self) -> WorkerOrder {
                WorkerOrder::CpusFirst
            }
        }
        let g = TaskGraph::independent(Instance::from_times(&[(10.0, 1.0)]));
        let plat = Platform::new(1, 1);
        let mut policy = SpoliateOnce { queue: Vec::new() };
        let res = simulate(&g, &plat, &mut policy);
        res.schedule.validate(g.instance(), &plat).unwrap();
        assert_eq!(res.spoliations, 1);
        assert!(approx_eq(res.makespan(), 1.0));
        assert_eq!(res.schedule.aborted.len(), 1);
        assert_eq!(res.schedule.aborted[0].start, 0.0);
        assert_eq!(res.schedule.aborted[0].end, 0.0);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn picking_unready_task_panics() {
        struct Evil;
        impl OnlinePolicy for Evil {
            fn on_ready(&mut self, _tasks: &[TaskId], _ctx: &SimContext<'_>) {}
            fn pick_task(&mut self, _worker: WorkerId, _ctx: &SimContext<'_>) -> Option<TaskId> {
                Some(TaskId(1)) // the chain's second task is still pending
            }
        }
        let g = chain(2, 1.0, 1.0);
        let plat = Platform::new(1, 1);
        let _ = simulate(&g, &plat, &mut Evil);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn refusing_all_work_deadlocks() {
        struct Lazy;
        impl OnlinePolicy for Lazy {
            fn on_ready(&mut self, _tasks: &[TaskId], _ctx: &SimContext<'_>) {}
            fn pick_task(&mut self, _worker: WorkerId, _ctx: &SimContext<'_>) -> Option<TaskId> {
                None
            }
        }
        let g = chain(2, 1.0, 1.0);
        let plat = Platform::new(1, 1);
        let _ = simulate(&g, &plat, &mut Lazy);
    }

    #[test]
    fn transfer_penalty_charges_cross_class_edges() {
        // chain a → b with 2 CPUs + 1 GPU... use (1,1): FIFO + GpusFirst
        // puts both tasks on the GPU → no penalty. Force a cross by a policy
        // that alternates classes.
        struct Alternate {
            queue: VecDeque<TaskId>,
            next_cpu: bool,
        }
        impl OnlinePolicy for Alternate {
            fn on_ready(&mut self, tasks: &[TaskId], _ctx: &SimContext<'_>) {
                self.queue.extend(tasks);
            }
            fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId> {
                let kind = ctx.platform.kind_of(worker);
                let want = if self.next_cpu { ResourceKind::Cpu } else { ResourceKind::Gpu };
                if kind == want {
                    let t = self.queue.pop_front()?;
                    self.next_cpu = !self.next_cpu;
                    Some(t)
                } else {
                    None
                }
            }
        }
        let g = chain(3, 2.0, 2.0);
        let plat = Platform::new(1, 1);
        let model = crate::policy::TransferModel::new(0.5);
        let mut policy = Alternate { queue: VecDeque::new(), next_cpu: false };
        let res = super::simulate_with(&g, &plat, &mut policy, &model);
        // GPU, CPU (+0.5), GPU (+0.5): 2 + 2.5 + 2.5 = 7.
        assert!(approx_eq(res.makespan(), 7.0), "{}", res.makespan());
        res.schedule
            .validate_with_overhead(g.instance(), &plat, model.cross_class_penalty)
            .unwrap();
        // Strict validation must reject the stretched durations.
        assert!(res.schedule.validate(g.instance(), &plat).is_err());
    }

    #[test]
    fn zero_penalty_model_matches_default_simulate() {
        let g = fork_join(6, 2.0, 1.0);
        let plat = Platform::new(2, 2);
        let a = simulate(&g, &plat, &mut Fifo::new()).makespan();
        let b =
            super::simulate_with(&g, &plat, &mut Fifo::new(), &crate::policy::TransferModel::NONE)
                .makespan();
        assert!(approx_eq(a, b));
    }

    #[test]
    fn effective_time_reports_penalty_to_policies() {
        // Observe ctx.effective_time from inside a policy after a pred
        // completed on the CPU.
        struct Probe {
            queue: VecDeque<TaskId>,
            observed: Vec<f64>,
        }
        impl OnlinePolicy for Probe {
            fn on_ready(&mut self, tasks: &[TaskId], ctx: &SimContext<'_>) {
                for &t in tasks {
                    self.observed.push(ctx.effective_time(t, ResourceKind::Gpu));
                }
                self.queue.extend(tasks);
            }
            fn pick_task(&mut self, worker: WorkerId, ctx: &SimContext<'_>) -> Option<TaskId> {
                // CPUs only, so successors always pay the GPU cross penalty.
                (ctx.platform.kind_of(worker) == ResourceKind::Cpu)
                    .then(|| self.queue.pop_front())
                    .flatten()
            }
        }
        let g = chain(2, 1.0, 1.0);
        let plat = Platform::new(1, 1);
        let model = crate::policy::TransferModel::new(0.25);
        let mut policy = Probe { queue: VecDeque::new(), observed: Vec::new() };
        let res = super::simulate_with(&g, &plat, &mut policy, &model);
        // First task: no preds → 1.0; second: pred ran on CPU → GPU time 1.25.
        assert_eq!(policy.observed, vec![1.0, 1.25]);
        assert!(res.makespan() > 0.0);
    }

    #[test]
    fn diamond_wave_order_matches_dependencies() {
        let mut b = DagBuilder::new();
        let a = b.add_task(heteroprio_core::Task::new(1.0, 1.0), "a");
        let c1 = b.add_task(heteroprio_core::Task::new(2.0, 2.0), "b");
        let c2 = b.add_task(heteroprio_core::Task::new(2.0, 2.0), "c");
        let d = b.add_task(heteroprio_core::Task::new(1.0, 1.0), "d");
        b.add_edge(a, c1);
        b.add_edge(a, c2);
        b.add_edge(c1, d);
        b.add_edge(c2, d);
        let g = b.build().unwrap();
        let plat = Platform::new(1, 1);
        let res = run_fifo(&g, &plat);
        // a at [0,1], b and c in parallel [1,3], d at [3,4].
        assert!(approx_eq(res.makespan(), 4.0), "{}", res.makespan());
    }
}
